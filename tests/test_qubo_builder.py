"""Unit tests for penalty QUBO construction (repro.qubo.builder)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.builder import LinearConstraints, PenaltyQUBOBuilder, slack_encode_inequality
from repro.qubo.model import QUBOModel


@pytest.fixture
def one_hot_constraints() -> LinearConstraints:
    """x0 + x1 + x2 = 1 (one-hot selection over three variables)."""
    return LinearConstraints(C=np.ones((1, 3)), d=np.array([1.0]))


class TestLinearConstraints:
    def test_violation_zero_when_satisfied(self, one_hot_constraints):
        assert one_hot_constraints.violation(np.array([0, 1, 0])) == pytest.approx(0.0)

    def test_violation_counts_squared_residual(self, one_hot_constraints):
        assert one_hot_constraints.violation(np.array([1, 1, 1])) == pytest.approx(4.0)

    def test_is_satisfied(self, one_hot_constraints):
        assert one_hot_constraints.is_satisfied(np.array([1, 0, 0]))
        assert not one_hot_constraints.is_satisfied(np.array([0, 0, 0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearConstraints(C=np.ones((2, 3)), d=np.ones(3))

    def test_penalty_qubo_equals_violation(self, one_hot_constraints):
        penalty = one_hot_constraints.penalty_qubo()
        for bits in range(8):
            x = np.array([(bits >> i) & 1 for i in range(3)], dtype=float)
            assert penalty.energy(x) == pytest.approx(one_hot_constraints.violation(x))

    def test_penalty_qubo_multiple_constraints(self):
        constraints = LinearConstraints(
            C=np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]]), d=np.array([1.0, 1.0])
        )
        penalty = constraints.penalty_qubo()
        for bits in range(8):
            x = np.array([(bits >> i) & 1 for i in range(3)], dtype=float)
            assert penalty.energy(x) == pytest.approx(constraints.violation(x))


class TestPenaltyQUBOBuilder:
    def test_build_combines_objective_and_penalty(self, one_hot_constraints):
        objective = QUBOModel(np.diag([1.0, 2.0, 3.0]))
        builder = PenaltyQUBOBuilder(objective, one_hot_constraints)
        relaxed = builder.build(5.0)
        x = np.array([1.0, 1.0, 0.0])
        expected = objective.energy(x) + 5.0 * one_hot_constraints.violation(x)
        assert relaxed.energy(x) == pytest.approx(expected)

    def test_feasible_assignment_has_zero_penalty(self, one_hot_constraints):
        objective = QUBOModel(np.diag([1.0, 2.0, 3.0]))
        builder = PenaltyQUBOBuilder(objective, one_hot_constraints)
        assert builder.is_feasible(np.array([0, 0, 1]))
        assert not builder.is_feasible(np.array([1, 1, 0]))

    def test_penalty_energy_independent_of_parameter(self, one_hot_constraints):
        objective = QUBOModel(np.zeros((3, 3)))
        builder = PenaltyQUBOBuilder(objective, one_hot_constraints)
        x = np.array([1, 1, 1])
        assert builder.penalty_energy(x) == pytest.approx(one_hot_constraints.violation(x))

    def test_accepts_prebuilt_penalty_qubo(self):
        objective = QUBOModel(np.diag([1.0, 1.0]))
        penalty = QUBOModel(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        builder = PenaltyQUBOBuilder(objective, penalty)
        relaxed = builder.build(2.0)
        x = np.array([1.0, 0.0])
        assert relaxed.energy(x) == pytest.approx(objective.energy(x) + 2.0 * penalty.energy(x))

    def test_rejects_size_mismatch(self):
        objective = QUBOModel(np.eye(2))
        constraints = LinearConstraints(C=np.ones((1, 3)), d=np.array([1.0]))
        with pytest.raises(ValueError):
            PenaltyQUBOBuilder(objective, constraints)

    def test_rejects_non_positive_parameter(self, one_hot_constraints):
        builder = PenaltyQUBOBuilder(QUBOModel(np.zeros((3, 3))), one_hot_constraints)
        with pytest.raises(ValueError):
            builder.build(0.0)
        with pytest.raises(ValueError):
            builder.build(-1.0)

    def test_larger_parameter_weights_constraints_more(self, one_hot_constraints):
        objective = QUBOModel(np.diag([-1.0, -1.0, -1.0]))
        builder = PenaltyQUBOBuilder(objective, one_hot_constraints)
        infeasible = np.array([1.0, 1.0, 1.0])
        small = builder.build(0.5).energy(infeasible)
        large = builder.build(50.0).energy(infeasible)
        assert large > small


class TestSlackEncoding:
    def test_basic_encoding(self):
        extended, bound, num_slack = slack_encode_inequality([1.0, 2.0], bound=3.0)
        assert bound == 3.0
        assert num_slack >= 1
        assert extended.shape[0] == 2 + num_slack

    def test_slack_weights_cover_bound(self):
        extended, bound, num_slack = slack_encode_inequality([1.0, 1.0, 1.0], bound=3.0)
        slack_weights = extended[3:]
        assert slack_weights.sum() >= bound - 1e-9

    def test_infeasible_constraint_raises(self):
        with pytest.raises(ValueError):
            slack_encode_inequality([1.0, 1.0], bound=-5.0)

    @pytest.mark.parametrize("bound", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 11.0, 100.0])
    def test_slack_register_maximum_is_exactly_max_slack(self, bound):
        # The top binary weight is capped: the register must reach max_slack
        # exactly, never beyond (a plain power-of-two expansion overshoots for
        # non-power-of-two max_slack and encodes infeasible slack values).
        extended, _, num_slack = slack_encode_inequality([1.0, 1.0], bound=bound)
        slack_weights = extended[2:]
        assert slack_weights.shape[0] == num_slack
        assert slack_weights.sum() == pytest.approx(bound)  # max_slack == bound here
        assert np.all(slack_weights > 0)

    @pytest.mark.parametrize("bound", [1.0, 3.0, 4.0, 5.0, 6.0, 7.0, 11.0])
    def test_slack_register_reaches_every_integer_slack(self, bound):
        extended, _, num_slack = slack_encode_inequality([1.0, 1.0], bound=bound)
        slack_weights = extended[2:]
        reachable = {0.0}
        for weight in slack_weights:
            reachable |= {value + weight for value in reachable}
        for target in range(int(bound) + 1):
            assert float(target) in reachable

    def test_negative_coefficients_extend_max_slack(self):
        extended, bound, num_slack = slack_encode_inequality([-2.0, 1.0], bound=3.0)
        # max_slack = 3 - (-2) = 5 -> weights [1, 2, 2]
        slack_weights = extended[2:]
        assert num_slack == 3
        assert slack_weights.sum() == pytest.approx(5.0)
        np.testing.assert_allclose(slack_weights, [1.0, 2.0, 2.0])

    def test_zero_max_slack_needs_no_bits(self):
        extended, _, num_slack = slack_encode_inequality([1.0, 1.0], bound=0.0)
        assert num_slack == 0
        assert extended.shape[0] == 2


class TestSparseConstraints:
    def test_sparse_and_dense_penalties_match(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        C = np.array([[1.0, 1.0, 0.0, 0.0], [0.0, 1.0, 1.0, 1.0]])
        d = np.array([1.0, 2.0])
        dense = LinearConstraints(C=C, d=d)
        sparse = LinearConstraints(C=scipy_sparse.csr_array(C), d=d)
        assert sparse.is_sparse and not dense.is_sparse
        assert dense.penalty_qubo().to_dict() == sparse.penalty_qubo().to_dict()
        for bits in range(16):
            x = np.array([(bits >> i) & 1 for i in range(4)], dtype=float)
            assert sparse.violation(x) == pytest.approx(dense.violation(x))
            assert sparse.penalty_qubo().energy(x) == pytest.approx(dense.violation(x))

    def test_sparse_shape_validation(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        with pytest.raises(ValueError):
            LinearConstraints(C=scipy_sparse.csr_array(np.ones((2, 3))), d=np.ones(3))

    def test_forced_sparse_penalty_storage(self):
        constraints = LinearConstraints(C=np.ones((1, 3)), d=np.array([1.0]))
        assert constraints.penalty_qubo(storage="sparse").storage == "sparse"
        assert constraints.penalty_qubo(storage="dense").storage == "dense"
