"""Unit tests for analog-noise and quantisation models (repro.qubo.precision)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import QUBOModel, random_qubo
from repro.qubo.precision import AnalogNoiseModel, QuantizationModel


class TestAnalogNoiseModel:
    def test_zero_noise_is_identity(self):
        model = random_qubo(5, rng=0)
        perturbed = AnalogNoiseModel(relative_error=0.0, absolute_error=0.0).perturb(model, rng=0)
        np.testing.assert_allclose(perturbed.Q, model.Q)

    def test_noise_changes_coefficients(self):
        model = random_qubo(5, rng=0)
        perturbed = AnalogNoiseModel(relative_error=0.1).perturb(model, rng=1)
        assert not np.allclose(perturbed.Q, model.Q)

    def test_perturbed_matrix_is_symmetric(self):
        model = random_qubo(6, rng=0)
        perturbed = AnalogNoiseModel(relative_error=0.1, absolute_error=0.05).perturb(model, rng=2)
        np.testing.assert_allclose(perturbed.Q, perturbed.Q.T)

    def test_offset_preserved(self):
        model = QUBOModel(np.eye(3), offset=7.0)
        perturbed = AnalogNoiseModel(relative_error=0.1).perturb(model, rng=0)
        assert perturbed.offset == pytest.approx(7.0)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            AnalogNoiseModel(relative_error=-0.1)

    def test_relative_error_scales_with_magnitude(self):
        # The absolute perturbation of a large penalty coefficient exceeds the
        # absolute perturbation of a small objective coefficient.
        Q = np.diag([1.0, 1000.0])
        model = QUBOModel(Q)
        diffs = []
        for seed in range(20):
            perturbed = AnalogNoiseModel(relative_error=0.05).perturb(model, rng=seed)
            diff = np.abs(np.diag(perturbed.Q) - np.diag(Q))
            diffs.append(diff)
        diffs = np.mean(diffs, axis=0)
        assert diffs[1] > diffs[0] * 10


class TestQuantizationModel:
    def test_quantisation_rounds_to_grid(self):
        model = QUBOModel(np.array([[1.0, 0.30001], [0.30001, -1.0]]))
        quantised = QuantizationModel(num_bits=8).quantize(model)
        levels = 2**7 - 1
        step = 1.0 / levels
        remainder = np.abs(quantised.Q / step - np.round(quantised.Q / step))
        assert np.all(remainder < 1e-9)

    def test_high_precision_changes_little(self):
        model = random_qubo(5, rng=0)
        quantised = QuantizationModel(num_bits=24).quantize(model)
        np.testing.assert_allclose(quantised.Q, model.Q, atol=1e-5)

    def test_low_precision_loses_small_coefficients(self):
        # A tiny objective coefficient next to a huge penalty coefficient
        # disappears entirely at low precision — the Appendix B mechanism.
        Q = np.diag([0.001, 1000.0])
        quantised = QuantizationModel(num_bits=4).quantize(QUBOModel(Q))
        assert quantised.Q[0, 0] == pytest.approx(0.0)

    def test_zero_matrix_passthrough(self):
        model = QUBOModel(np.zeros((3, 3)), offset=1.0)
        quantised = QuantizationModel(num_bits=8).quantize(model)
        np.testing.assert_allclose(quantised.Q, 0.0)
        assert quantised.offset == pytest.approx(1.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationModel(num_bits=1)
