"""Unit tests for the Minimum Vertex Cover substrate (instance, QUBO, heuristics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_dataset, generate_mvc_instance
from repro.problems.mvc.heuristics import (
    best_known_cover_weight,
    exact_minimum_cover,
    greedy_weighted_cover,
    prune_cover,
)
from repro.problems.mvc.instance import MVCInstance
from repro.problems.mvc.qubo import MVCProblem


def triangle_instance(weights=None) -> MVCInstance:
    adjacency = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=bool)
    return MVCInstance(adjacency=adjacency, weights=weights, name="triangle")


class TestMVCInstance:
    def test_edge_count(self):
        assert triangle_instance().num_edges == 3

    def test_cover_detection(self):
        instance = triangle_instance()
        assert instance.is_vertex_cover(np.array([1, 1, 0]))
        assert not instance.is_vertex_cover(np.array([1, 0, 0]))
        assert instance.is_vertex_cover(np.array([1, 1, 1]))

    def test_cover_weight(self):
        instance = triangle_instance(weights=np.array([1.0, 2.0, 3.0]))
        assert instance.cover_weight(np.array([1, 0, 1])) == pytest.approx(4.0)

    def test_empty_graph_always_covered(self):
        instance = MVCInstance(adjacency=np.zeros((4, 4), dtype=bool))
        assert instance.is_vertex_cover(np.zeros(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            MVCInstance(adjacency=np.array([[0, 1], [0, 0]], dtype=bool))
        with pytest.raises(ValueError):
            MVCInstance(adjacency=np.eye(3, dtype=bool))
        with pytest.raises(ValueError):
            MVCInstance(adjacency=np.zeros((3, 3), dtype=bool), weights=np.ones(2))
        with pytest.raises(ValueError):
            MVCInstance(adjacency=np.zeros((3, 3), dtype=bool), weights=np.array([-1.0, 1.0, 1.0]))

    def test_fingerprint_depends_on_weights(self):
        a = triangle_instance(weights=np.array([1.0, 1.0, 1.0]))
        b = triangle_instance(weights=np.array([1.0, 1.0, 2.0]))
        assert a.fingerprint() != b.fingerprint()

    def test_is_vertex_cover_rejects_wrong_length(self):
        instance = triangle_instance()
        with pytest.raises(ValueError, match="one entry per vertex"):
            instance.is_vertex_cover(np.array([1, 1]))
        with pytest.raises(ValueError, match="one entry per vertex"):
            instance.is_vertex_cover(np.ones(4))

    def test_is_vertex_cover_rejects_non_binary(self):
        instance = triangle_instance()
        with pytest.raises(ValueError, match="binary"):
            instance.is_vertex_cover(np.array([2, 1, 0]))
        with pytest.raises(ValueError, match="binary"):
            instance.is_vertex_cover(np.array([0.5, 1.0, 1.0]))

    def test_is_vertex_cover_accepts_bool_and_float_binary(self):
        instance = triangle_instance()
        assert instance.is_vertex_cover(np.array([True, True, False]))
        assert instance.is_vertex_cover(np.array([1.0, 1.0, 0.0]))


class TestSparseMVCInstance:
    def edge_list(self):
        return np.array([[0, 1], [0, 2], [1, 2]])

    def test_from_edges_matches_dense(self):
        sparse = MVCInstance.from_edges(3, self.edge_list(), name="triangle")
        dense = triangle_instance()
        assert sparse.is_sparse and not dense.is_sparse
        assert sparse.num_edges == dense.num_edges
        np.testing.assert_array_equal(sparse.edges(), dense.edges())
        assert sparse.fingerprint() == dense.fingerprint()

    def test_from_edges_accepts_duplicates_and_either_order(self):
        instance = MVCInstance.from_edges(3, [[1, 0], [0, 1], [2, 0]])
        assert instance.num_edges == 2
        np.testing.assert_array_equal(instance.edges(), [[0, 1], [0, 2]])

    def test_from_edges_validation(self):
        with pytest.raises(ValueError):
            MVCInstance.from_edges(3, [[0, 3]])
        with pytest.raises(ValueError):
            MVCInstance.from_edges(3, [[1, 1]])
        with pytest.raises(ValueError):
            MVCInstance.from_edges(3, [[0, 1, 2]])

    def test_sparse_cover_detection(self):
        instance = MVCInstance.from_edges(4, [[0, 1], [2, 3]])
        assert instance.is_vertex_cover(np.array([1, 0, 1, 0]))
        assert not instance.is_vertex_cover(np.array([1, 0, 0, 0]))

    def test_sparse_problem_encoding_matches_dense(self):
        dense_problem = MVCProblem(triangle_instance(weights=np.array([1.0, 2.0, 3.0])))
        sparse_problem = MVCProblem(
            MVCInstance.from_edges(
                3, self.edge_list(), weights=np.array([1.0, 2.0, 3.0]), name="triangle"
            )
        )
        assert (
            dense_problem.encode().fingerprint() == sparse_problem.encode().fingerprint()
        )

    def test_sparse_generator_rejects_bad_arguments(self):
        from repro.problems.mvc.generator import generate_sparse_mvc_instance

        with pytest.raises(ValueError):
            generate_sparse_mvc_instance(10)
        with pytest.raises(ValueError):
            generate_sparse_mvc_instance(10, num_edges=5, edge_density=0.1)
        with pytest.raises(ValueError):
            generate_sparse_mvc_instance(10, num_edges=0)
        with pytest.raises(ValueError):
            generate_sparse_mvc_instance(10, edge_density=1.5)

    def test_edges_cache_is_read_only(self):
        for instance in (triangle_instance(), MVCInstance.from_edges(3, self.edge_list())):
            edges = instance.edges()
            with pytest.raises(ValueError):
                edges[0, 0] = 2

    def test_sparse_generator_edge_density(self):
        from repro.problems.mvc.generator import generate_sparse_mvc_instance

        instance = generate_sparse_mvc_instance(20, edge_density=0.1, rng=0)
        assert instance.num_edges == round(0.1 * 20 * 19 / 2)
        assert instance.is_sparse


class TestMVCProblem:
    def test_penalty_zero_iff_cover(self):
        problem = MVCProblem(triangle_instance())
        builder = problem.builder()
        for bits in range(8):
            x = np.array([(bits >> i) & 1 for i in range(3)], dtype=float)
            penalty = builder.penalty_energy(x)
            if problem.instance.is_vertex_cover(x):
                assert penalty == pytest.approx(0.0)
            else:
                assert penalty > 0.5

    def test_objective_is_cover_weight(self):
        weights = np.array([1.0, 2.0, 3.0])
        problem = MVCProblem(triangle_instance(weights=weights))
        builder = problem.builder()
        x = np.array([1.0, 1.0, 0.0])
        assert builder.objective_energy(x) == pytest.approx(3.0)

    def test_penalty_counts_uncovered_edges(self):
        problem = MVCProblem(triangle_instance())
        builder = problem.builder()
        assert builder.penalty_energy(np.zeros(3)) == pytest.approx(3.0)
        assert builder.penalty_energy(np.array([1.0, 0.0, 0.0])) == pytest.approx(1.0)

    def test_fitness_and_feasibility(self):
        problem = MVCProblem(triangle_instance(weights=np.array([1.0, 2.0, 3.0])))
        assert problem.is_feasible(np.array([1, 1, 0]))
        assert problem.fitness(np.array([1, 1, 0])) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            problem.fitness(np.array([1, 0, 0]))

    def test_relaxation_scale_is_max_weight(self):
        problem = MVCProblem(triangle_instance(weights=np.array([0.5, 2.5, 1.0])))
        assert problem.relaxation_scale() == pytest.approx(2.5)

    def test_sufficient_penalty_makes_optimum_feasible(self):
        # With sigma > max(w) the QUBO ground state must be a minimum cover.
        weights = np.array([0.9, 0.7, 0.4])
        problem = MVCProblem(triangle_instance(weights=weights))
        model = problem.build_qubo(2.0)
        best_energy = np.inf
        best_x = None
        for bits in range(8):
            x = np.array([(bits >> i) & 1 for i in range(3)], dtype=float)
            energy = model.energy(x)
            if energy < best_energy:
                best_energy = energy
                best_x = x
        assert problem.is_feasible(best_x)
        assert problem.fitness(best_x) == pytest.approx(weights[2] + weights[1])


class TestMVCGenerator:
    def test_size_and_connectivity(self):
        instance = generate_mvc_instance(RandomMVCConfig(num_vertices=20, edge_probability=0.3), rng=0)
        assert instance.num_vertices == 20
        assert np.all(instance.adjacency.sum(axis=1) >= 1)

    def test_weighted_flag(self):
        unweighted = generate_mvc_instance(RandomMVCConfig(num_vertices=8, weighted=False), rng=0)
        np.testing.assert_allclose(unweighted.weights, 1.0)
        weighted = generate_mvc_instance(RandomMVCConfig(num_vertices=8, weighted=True), rng=0)
        assert weighted.weights.std() > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomMVCConfig(num_vertices=1)
        with pytest.raises(ValueError):
            RandomMVCConfig(edge_probability=0.0)

    def test_dataset(self):
        dataset = generate_mvc_dataset(3, rng=0)
        assert len(dataset) == 3
        assert len({instance.name for instance in dataset}) == 3
        with pytest.raises(ValueError):
            generate_mvc_dataset(0)


class TestMVCHeuristics:
    def test_greedy_produces_cover(self):
        instance = generate_mvc_instance(RandomMVCConfig(num_vertices=15, edge_probability=0.3), rng=1)
        cover = greedy_weighted_cover(instance)
        assert instance.is_vertex_cover(cover)

    def test_prune_keeps_cover_valid_and_no_heavier(self):
        instance = generate_mvc_instance(RandomMVCConfig(num_vertices=12, edge_probability=0.4), rng=2)
        cover = np.ones(12, dtype=np.int8)
        pruned = prune_cover(instance, cover)
        assert instance.is_vertex_cover(pruned)
        assert instance.cover_weight(pruned) <= instance.cover_weight(cover)

    def test_exact_on_triangle(self):
        cover = exact_minimum_cover(triangle_instance())
        assert cover.sum() == 2

    def test_exact_respects_weights(self):
        weights = np.array([10.0, 0.1, 0.1])
        cover = exact_minimum_cover(triangle_instance(weights=weights))
        assert cover[0] == 0  # the expensive vertex is avoided

    def test_exact_size_limit(self):
        instance = generate_mvc_instance(RandomMVCConfig(num_vertices=25), rng=0)
        with pytest.raises(ValueError):
            exact_minimum_cover(instance)

    def test_best_known_weight_is_achievable(self):
        instance = generate_mvc_instance(RandomMVCConfig(num_vertices=10, edge_probability=0.4), rng=3)
        weight = best_known_cover_weight(instance)
        exact = instance.cover_weight(exact_minimum_cover(instance))
        assert weight == pytest.approx(exact)
