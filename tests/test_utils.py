"""Unit tests for repro.utils (rng, validation, timing)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_square_matrix,
    check_symmetric,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**6, size=10)
        b = ensure_rng(2).integers(0, 10**6, size=10)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        streams = spawn_rngs(7, 3)
        draws = [s.integers(0, 10**9, size=4) for s in streams]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [s.integers(0, 10**9) for s in spawn_rngs(9, 3)]
        b = [s.integers(0, 10**9) for s in spawn_rngs(9, 3)]
        assert a == b


class TestValidation:
    def test_check_probability_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5.0])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_check_positive_strict(self):
        assert check_positive(2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_check_positive_non_strict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_check_square_matrix(self):
        out = check_square_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_check_square_matrix_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.ones((2, 3)))

    def test_check_symmetric(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_array_equal(check_symmetric(matrix), matrix)

    def test_check_symmetric_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            check_symmetric(np.array([[0.0, 1.0], [2.0, 0.0]]))


class TestTimer:
    def test_accumulates_time(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
