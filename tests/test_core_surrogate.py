"""Unit and behavioural tests for the solver surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import SurrogateDataset
from repro.core.features import TSPStatisticsExtractor
from repro.core.surrogate import SolverSurrogate, SurrogateConfig


class TestSurrogateConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(hidden_sizes=())
        with pytest.raises(ValueError):
            SurrogateConfig(hidden_sizes=(0,))
        with pytest.raises(ValueError):
            SurrogateConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            SurrogateConfig(validation_fraction=1.5)


class TestSurrogateLifecycle:
    def test_untrained_surrogate_refuses_prediction(self, tsp_problem):
        surrogate = SolverSurrogate(TSPStatisticsExtractor(), rng=0)
        with pytest.raises(RuntimeError):
            surrogate.predict(tsp_problem, [1.0])

    def test_untrained_surrogate_refuses_save(self, tmp_path):
        surrogate = SolverSurrogate(TSPStatisticsExtractor(), rng=0)
        with pytest.raises(RuntimeError):
            surrogate.save(tmp_path / "weights.npz")

    def test_fit_requires_enough_data(self):
        surrogate = SolverSurrogate(TSPStatisticsExtractor(), rng=0)
        with pytest.raises(ValueError):
            surrogate.fit(SurrogateDataset([]))

    def test_fit_returns_histories(self, surrogate_dataset):
        surrogate = SolverSurrogate(
            TSPStatisticsExtractor(),
            config=SurrogateConfig(hidden_sizes=(16,), num_epochs=30, patience=None),
            rng=0,
        )
        histories = surrogate.fit(surrogate_dataset, rng=0)
        assert set(histories) == {"pf", "energy"}
        assert histories["pf"].num_epochs > 0
        assert surrogate.is_trained


class TestSurrogatePredictions:
    def test_prediction_shapes_and_ranges(self, trained_surrogate, training_problems):
        problem = training_problems[0]
        parameters = np.linspace(0.1, 3.0, 16) * problem.relaxation_scale()
        prediction = trained_surrogate.predict(problem, parameters)
        assert prediction.probability_of_feasibility.shape == (16,)
        assert np.all((prediction.probability_of_feasibility >= 0) & (prediction.probability_of_feasibility <= 1))
        assert np.all(prediction.energy_std >= 0)
        assert np.all(np.isfinite(prediction.energy_mean))

    def test_rejects_non_positive_parameters(self, trained_surrogate, training_problems):
        with pytest.raises(ValueError):
            trained_surrogate.predict(training_problems[0], [0.0])

    def test_pf_increases_with_parameter(self, trained_surrogate, training_problems):
        """The learned Pf(A) must reproduce the sigmoid trend: higher A, higher Pf."""
        problem = training_problems[0]
        scale = problem.relaxation_scale()
        pf = trained_surrogate.predict_pf(problem, np.array([0.15, 3.0]) * scale)
        assert pf[1] > pf[0]

    def test_pf_plateaus_learned(self, trained_surrogate, training_problems):
        """Far left of the transition Pf should be low, far right high."""
        lows, highs = [], []
        for problem in training_problems[:4]:
            scale = problem.relaxation_scale()
            pf = trained_surrogate.predict_pf(problem, np.array([0.1, 2.5]) * scale)
            lows.append(pf[0])
            highs.append(pf[1])
        assert np.mean(lows) < 0.5
        assert np.mean(highs) > 0.5

    def test_energy_head_tracks_measured_energies(
        self, trained_surrogate, training_problems, surrogate_dataset
    ):
        """Within an instance, predicted Eavg should track the measured Eavg across A."""
        problems = {problem.name: problem for problem in training_problems}
        correlations = []
        for name, problem in problems.items():
            records = [r for r in surrogate_dataset.records if r.instance_name == name]
            if len(records) < 4:
                continue
            parameters = np.array([r.parameter for r in records])
            measured = np.array([r.energy_mean for r in records])
            predicted = trained_surrogate.predict(problem, parameters).energy_mean
            if measured.std() < 1e-9:
                continue
            correlations.append(np.corrcoef(predicted, measured)[0, 1])
        assert correlations, "expected at least one instance with enough records"
        assert np.median(correlations) > 0.5


class TestSurrogatePersistence:
    def test_save_load_roundtrip(self, trained_surrogate, training_problems, tmp_path):
        path = tmp_path / "surrogate.npz"
        trained_surrogate.save(path)
        clone = SolverSurrogate(
            TSPStatisticsExtractor(),
            config=SurrogateConfig(hidden_sizes=(32, 32), num_epochs=120, patience=30),
            rng=0,
        )
        clone.load(path)
        problem = training_problems[0]
        parameters = np.array([0.5, 1.0, 1.5]) * problem.relaxation_scale()
        original = trained_surrogate.predict(problem, parameters)
        restored = clone.predict(problem, parameters)
        np.testing.assert_allclose(
            restored.probability_of_feasibility, original.probability_of_feasibility, atol=1e-9
        )
        np.testing.assert_allclose(restored.energy_mean, original.energy_mean, atol=1e-6)
