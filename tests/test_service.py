"""Tests of the public solve-service API: registry, requests, batching service."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.experiments.datasets import make_solver as profile_make_solver
from repro.experiments.profiles import resolve_profile
from repro.experiments.runner import default_bounds, tune_instance
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import QUBOModel, random_qubo
from repro.service import (
    SolveRequest,
    SolveResult,
    SolverCallCache,
    SolverRegistry,
    SolveService,
    make_solver,
    parse_spec,
)
from repro.service.registry import parse_value
from repro.solvers.digital_annealer import DigitalAnnealerSolver
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver
from repro.tuning.random_search import RandomSearchTuner


@pytest.fixture
def model() -> QUBOModel:
    return random_qubo(12, rng=3)


@pytest.fixture
def problem() -> TSPProblem:
    return TSPProblem(generate_instance(6, rng=0, name="svc-tsp"))


# ---------------------------------------------------------------------- registry
class TestSolverRegistry:
    def test_every_backend_registered(self):
        assert SolverRegistry.names() == (
            "da",
            "portfolio",
            "pt",
            "qa",
            "qbsolv",
            "random",
            "sa",
            "tabu",
        )

    @pytest.mark.parametrize(
        "spec, expected_cls",
        [
            ("sa", SimulatedAnnealingSolver),
            ("simulated-annealing", SimulatedAnnealingSolver),
            ("da", DigitalAnnealerSolver),
            ("digital-annealer", DigitalAnnealerSolver),
            ("tabu", TabuSearchSolver),
            ("tabu-search", TabuSearchSolver),
            ("qbsolv", QbsolvSolver),
            ("qa", QuantumAnnealerSolver),
            ("quantum-annealer", QuantumAnnealerSolver),
            ("random", RandomSolver),
            ("SA", SimulatedAnnealingSolver),  # names are case-insensitive
        ],
    )
    def test_spec_resolves_backend(self, spec, expected_cls):
        assert isinstance(make_solver(spec), expected_cls)

    def test_spec_options_reach_the_config(self):
        solver = make_solver("tabu?tenure=16&num_steps=300")
        assert solver.config == TabuSearchConfig(num_steps=300, tenure=16)

    def test_keyword_options_equivalent_to_query(self):
        by_query = make_solver("sa?num_sweeps=2000")
        by_kwargs = make_solver("sa", num_sweeps=2000)
        assert by_query.config == by_kwargs.config

    def test_keyword_overrides_win_over_query(self):
        solver = make_solver("sa?num_sweeps=10", num_sweeps=77)
        assert solver.config.num_sweeps == 77

    def test_spec_round_trip_fingerprint(self):
        # Same spec parsed twice, and the hand-built config, all agree.
        fp = make_solver("tabu?tenure=16").config_fingerprint()
        assert make_solver("tabu?tenure=16").config_fingerprint() == fp
        manual = TabuSearchSolver(TabuSearchConfig(tenure=16))
        assert manual.config_fingerprint() == fp
        # Different options fingerprint differently.
        assert make_solver("tabu?tenure=4").config_fingerprint() != fp

    def test_solver_instance_passes_through(self):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=5))
        assert make_solver(solver) is solver
        with pytest.raises(ValueError, match="already-constructed"):
            make_solver(solver, num_sweeps=9)

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(ValueError, match="unknown solver backend 'sauna'"):
            make_solver("sauna")
        with pytest.raises(ValueError, match="qbsolv"):
            make_solver("sauna")

    def test_unknown_option_lists_valid_fields(self):
        with pytest.raises(ValueError, match="num_sweeps"):
            make_solver("sa?sweeps=10")

    def test_config_and_options_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SolverRegistry.create(
                "sa", config=SimulatedAnnealingConfig(num_sweeps=5), num_sweeps=9
            )

    def test_configless_backend_rejects_options(self):
        with pytest.raises(ValueError, match="takes no options"):
            make_solver("random?foo=1")

    def test_malformed_specs(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_spec("sa?num_sweeps")
        with pytest.raises(ValueError):
            parse_spec("")
        with pytest.raises(ValueError):
            parse_spec("?tenure=4")

    def test_value_parsing(self):
        assert parse_value("12") == 12 and isinstance(parse_value("12"), int)
        assert parse_value("0.5") == 0.5
        assert parse_value("1e-3") == 1e-3
        assert parse_value("true") is True
        assert parse_value("no") is False
        assert parse_value("none") is None
        assert parse_value("geometric") == "geometric"

    def test_describe_mentions_every_backend(self):
        text = SolverRegistry.describe()
        for name in SolverRegistry.names():
            assert name in text

    def test_private_registry_is_isolated(self):
        registry = SolverRegistry()
        registry.register("only", RandomSolver)
        assert "only" in registry
        assert "only" not in SolverRegistry.default()
        with pytest.raises(ValueError):
            registry.register("only", SimulatedAnnealingSolver)

    def test_alias_conflict_leaves_registry_untouched(self):
        registry = SolverRegistry()
        registry.register("taken", RandomSolver)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("fresh", SimulatedAnnealingSolver, aliases=("taken",))
        # The failed registration must not leave a half-registered backend.
        assert "fresh" not in registry
        with pytest.raises(ValueError, match="unknown solver backend"):
            registry.create("fresh")

    def test_profile_make_solver_delegates_to_registry(self):
        profile = resolve_profile("smoke")
        solver = profile_make_solver(profile, "digital-annealer")
        assert isinstance(solver, DigitalAnnealerSolver)
        assert solver.config.steps_per_variable == profile.da_steps_per_variable
        assert isinstance(profile_make_solver(profile, "tabu"), TabuSearchSolver)
        assert isinstance(profile_make_solver(profile, "random"), RandomSolver)
        with pytest.raises(ValueError, match="unknown solver backend"):
            profile_make_solver(profile, "nope")


# ---------------------------------------------------------------------- requests
class TestSolveRequest:
    def test_requires_exactly_one_of_model_or_problem(self, model, problem):
        with pytest.raises(ValueError, match="exactly one"):
            SolveRequest(solver="sa")
        with pytest.raises(ValueError, match="exactly one"):
            SolveRequest(solver="sa", model=model, problem=problem, relaxation_parameter=1.0)

    def test_problem_requires_relaxation_parameter(self, model, problem):
        with pytest.raises(ValueError, match="relaxation_parameter"):
            SolveRequest(solver="sa", problem=problem)
        with pytest.raises(ValueError, match="relaxation_parameter"):
            SolveRequest(solver="sa", model=model, relaxation_parameter=1.0)

    def test_validates_reads_and_seed(self, model):
        with pytest.raises(ValueError):
            SolveRequest(solver="sa", model=model, num_reads=0)
        with pytest.raises(ValueError, match="seed"):
            SolveRequest(solver="sa", model=model, seed="abc")

    def test_resolve_model_builds_from_problem(self, problem):
        request = SolveRequest(solver="sa", problem=problem, relaxation_parameter=2.5)
        built = request.resolve_model()
        assert built.fingerprint() == problem.build_qubo(2.5).fingerprint()

    def test_rng_is_deterministic_per_seed(self, model):
        request = SolveRequest(solver="sa", model=model, seed=11)
        assert request.rng().integers(0, 100) == np.random.default_rng(11).integers(0, 100)
        assert SolveRequest(solver="sa", model=model).rng() is None


# ----------------------------------------------------------------------- service
class TestSolveService:
    def test_seeded_submit_matches_direct_sample(self, model):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=20))
        with SolveService(max_workers=2) as service:
            result = service.submit(
                SolveRequest(solver=solver, model=model, num_reads=5, seed=123)
            ).result()
        direct = solver.sample(model, num_reads=5, rng=np.random.default_rng(123))
        np.testing.assert_array_equal(result.samples.assignments, direct.assignments)
        np.testing.assert_array_equal(result.samples.energies, direct.energies)
        assert result.solver_name == solver.name
        assert result.solver_fingerprint == solver.config_fingerprint()

    def test_duplicate_seeded_requests_hit_cache_exactly_once(self, model):
        cache = SolverCallCache()
        request = SolveRequest(solver="sa?num_sweeps=15", model=model, num_reads=4, seed=9)
        duplicate = SolveRequest(solver="sa?num_sweeps=15", model=model, num_reads=4, seed=9)
        with SolveService(max_workers=4, cache=cache) as service:
            results = service.map_requests([request, duplicate])
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.num_sample_entries == 1
        assert sorted(r.from_cache for r in results) == [False, True]
        np.testing.assert_array_equal(
            results[0].samples.assignments, results[1].samples.assignments
        )

    def test_different_seeds_do_not_dedupe(self, model):
        cache = SolverCallCache()
        with SolveService(max_workers=2, cache=cache) as service:
            results = service.map_requests([
                SolveRequest(solver="sa?num_sweeps=15", model=model, num_reads=2, seed=s)
                for s in (1, 2)
            ])
        assert cache.misses == 2 and cache.hits == 0
        assert not any(r.from_cache for r in results)

    def test_map_requests_merges_unseeded_same_group(self, model):
        with SolveService(max_workers=2) as service:
            results = service.map_requests([
                SolveRequest(solver="tabu?num_steps=40", model=model, num_reads=r)
                for r in (3, 5, 2)
            ])
        assert [r.num_samples for r in results] == [3, 5, 2]
        for result in results:
            assert result.batched_group_size == 3
            assert result.samples.info["batched_total_reads"] == 10
            # Energies are consistent with the model (the merged rows were
            # dealt back correctly).
            recomputed = model.energies(result.samples.assignments.astype(float))
            np.testing.assert_allclose(result.samples.energies, recomputed)

    def test_map_requests_does_not_merge_across_models_or_solvers(self, model):
        other = random_qubo(12, rng=8)
        with SolveService(max_workers=2) as service:
            results = service.map_requests([
                SolveRequest(solver="tabu?num_steps=40", model=model, num_reads=2),
                SolveRequest(solver="tabu?num_steps=40", model=other, num_reads=2),
                SolveRequest(solver="tabu?num_steps=80", model=model, num_reads=2),
            ])
        assert all(r.batched_group_size == 1 for r in results)

    def test_map_requests_preserves_input_order(self, model):
        with SolveService(max_workers=4) as service:
            results = service.map_requests([
                SolveRequest(solver="sa?num_sweeps=10", model=model, num_reads=1,
                             seed=i, label=f"req-{i}")
                for i in range(6)
            ])
        assert [r.request.label for r in results] == [f"req-{i}" for i in range(6)]

    def test_map_requests_seeded_results_identical_to_direct(self, model):
        solver = TabuSearchSolver(TabuSearchConfig(num_steps=30))
        requests = [
            SolveRequest(solver=solver, model=model, num_reads=3, seed=s) for s in range(4)
        ]
        with SolveService(max_workers=4) as service:
            results = service.map_requests(requests)
        for seed, result in zip(range(4), results):
            direct = solver.sample(model, num_reads=3, rng=np.random.default_rng(seed))
            np.testing.assert_array_equal(result.samples.assignments, direct.assignments)

    def test_solve_with_problem_and_options(self, problem):
        with SolveService(max_workers=1) as service:
            result = service.solve(
                problem,
                solver="sa",
                num_sweeps=25,
                relaxation_parameter=problem.relaxation_scale(),
                num_reads=4,
                seed=0,
            )
        assert isinstance(result, SolveResult)
        assert result.num_samples == 4
        assert result.request.problem is problem

    def test_solve_rejects_relaxation_parameter_with_model(self, model):
        with SolveService(max_workers=1) as service:
            with pytest.raises(ValueError, match="relaxation_parameter"):
                service.solve(model, solver="random", relaxation_parameter=2.0)

    def test_sample_store_is_lru_bounded(self, model):
        cache = SolverCallCache(max_sample_entries=2)
        with SolveService(max_workers=1, cache=cache) as service:
            for seed in range(4):
                service.solve(model, solver="random", num_reads=1, seed=seed)
        assert cache.num_sample_entries == 2
        # Evicted seeded requests simply re-run (a miss), bitwise identically.
        with SolveService(max_workers=1, cache=cache) as service:
            rerun = service.solve(model, solver="random", num_reads=1, seed=0)
        assert not rerun.from_cache
        direct = RandomSolver().sample(model, num_reads=1, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(rerun.samples.assignments, direct.assignments)

    def test_top_level_solve_is_exported(self, model):
        result = repro.solve(model, solver="random", num_reads=3, seed=1)
        direct = RandomSolver().sample(model, num_reads=3, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(result.samples.assignments, direct.assignments)

    def test_closed_service_rejects_submissions(self, model):
        service = SolveService(max_workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(SolveRequest(solver="random", model=model))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SolveService(max_workers=0)

    def test_evaluate_matches_legacy_cache_path(self, problem):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=20))
        parameter = float(problem.relaxation_scale())
        legacy = SolverCallCache().evaluate(problem, solver, parameter, 6, rng=5)
        # Byte-parity with the legacy live-RNG path is an in-process-backend
        # guarantee, so pin backend="thread" (out-of-process backends derive a
        # child seed instead — deterministic, but a different stream).
        with SolveService(max_workers=2, backend="thread") as service:
            via_service = service.evaluate(problem, solver, parameter, 6, rng=5)
        assert via_service == legacy

    def test_evaluate_respects_shared_cache(self, problem):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=20))
        cache = SolverCallCache()
        parameter = float(problem.relaxation_scale())
        with SolveService(max_workers=1, cache=cache) as service:
            first = service.evaluate(problem, solver, parameter, 4, rng=0, cache=cache)
            second = service.evaluate(problem, solver, parameter, 4, rng=0, cache=cache)
        assert first == second
        assert cache.hits == 1 and cache.misses == 1


# ----------------------------------------------------------- tuning through service
class TestTuningThroughService:
    def test_tune_instance_identical_to_legacy_loop(self, problem):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=20))
        bounds = default_bounds(problem)

        # Pin the in-process backend: the legacy replay below consumes the
        # rng stream inside the engine call, which only the thread path does.
        with SolveService(max_workers=2, backend="thread") as service:
            history = tune_instance(
                problem, solver, RandomSearchTuner(bounds, rng=0),
                num_trials=4, num_reads=6, rng=0, service=service,
            )

        # Replay the pre-service loop: tuner suggestions evaluated directly
        # through a SolverCallCache with the same seeds.
        cache = SolverCallCache()
        tuner = RandomSearchTuner(bounds, rng=0)
        rng = np.random.default_rng(0)
        from repro.tuning.base import TrialHistory, TrialResult

        legacy = TrialHistory()
        for _ in range(4):
            parameter = tuner.bounds.clip(tuner.suggest(legacy))
            outcome = cache.evaluate(problem, solver, parameter, 6, rng=rng)
            trial = TrialResult(
                parameter=parameter,
                probability_of_feasibility=outcome.probability_of_feasibility,
                best_fitness=outcome.best_fitness,
                energy_mean=outcome.energy_mean,
                energy_std=outcome.energy_std,
            )
            legacy.append(trial)
            tuner.observe(trial, legacy)

        assert [t.parameter for t in history] == [t.parameter for t in legacy]
        assert [t.energy_mean for t in history] == [t.energy_mean for t in legacy]
        assert [t.probability_of_feasibility for t in history] == [
            t.probability_of_feasibility for t in legacy
        ]


# ------------------------------------------------------------------ qbsolv reads
class TestQbsolvConcurrentReads:
    def test_multi_read_deterministic_and_reports_workers(self, model):
        solver = QbsolvSolver(QbsolvConfig(subproblem_size=6, max_rounds=2))
        first = solver.sample(model, num_reads=4, rng=11)
        second = solver.sample(model, num_reads=4, rng=11)
        np.testing.assert_array_equal(first.assignments, second.assignments)
        assert first.info["read_workers"] >= 1

    def test_serial_override_matches_pool_results(self, model, monkeypatch):
        solver = QbsolvSolver(QbsolvConfig(subproblem_size=6, max_rounds=2))
        pooled = solver.sample(model, num_reads=3, rng=7)
        monkeypatch.setenv("QROSS_READ_WORKERS", "1")
        serial = solver.sample(model, num_reads=3, rng=7)
        assert serial.info["read_workers"] == 1
        np.testing.assert_array_equal(pooled.assignments, serial.assignments)
        np.testing.assert_array_equal(pooled.energies, serial.energies)
