"""Unit tests for losses, optimisers, the Sequential container and the fit loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.graph import GraphConvEncoder
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import BCEWithLogitsLoss, HuberLoss, MSELoss
from repro.nn.network import Sequential, fit, iterate_minibatches, mlp
from repro.nn.optimizers import SGD, Adam
from repro.nn.parameter import Parameter
from repro.nn.serialization import load_parameters, load_state_dict, save_parameters, state_dict
from repro.problems.tsp.generator import generate_instance


class TestLosses:
    def test_mse_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0], [2.0]])
        target = np.array([[0.0], [0.0]])
        assert loss.value(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.gradient(pred, target), [[1.0], [2.0]])

    def test_huber_quadratic_then_linear(self):
        loss = HuberLoss(delta=1.0)
        small = loss.value(np.array([0.5]), np.array([0.0]))
        assert small == pytest.approx(0.125)
        large = loss.value(np.array([3.0]), np.array([0.0]))
        assert large == pytest.approx(1.0 * (3.0 - 0.5))

    def test_huber_gradient_clipped(self):
        loss = HuberLoss(delta=1.0)
        grad = loss.gradient(np.array([5.0, -5.0, 0.2]), np.zeros(3))
        np.testing.assert_allclose(grad, np.array([1.0, -1.0, 0.2]) / 3.0)

    def test_huber_robust_to_outliers_compared_to_mse(self):
        pred = np.array([0.0, 0.0, 100.0])
        target = np.zeros(3)
        assert HuberLoss().value(pred, target) < MSELoss().value(pred, target)

    def test_bce_matches_manual_computation(self):
        loss = BCEWithLogitsLoss()
        logits = np.array([0.0, 2.0, -2.0])
        targets = np.array([1.0, 1.0, 0.0])
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss.value(logits, targets) == pytest.approx(expected)

    def test_bce_stable_for_extreme_logits(self):
        loss = BCEWithLogitsLoss()
        value = loss.value(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradient_sign(self):
        loss = BCEWithLogitsLoss()
        grad = loss.gradient(np.array([0.0]), np.array([1.0]))
        assert grad[0] < 0  # increasing the logit decreases the loss

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros(3), np.zeros(4))

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestOptimizers:
    def _quadratic_problem(self):
        # Minimise (w - 3)^2 via a single parameter.
        param = Parameter(np.array([0.0]))
        return param

    def test_sgd_converges_on_quadratic(self):
        param = self._quadratic_problem()
        optimizer = SGD([param], learning_rate=0.1)
        for _ in range(200):
            param.zero_grad()
            param.grad[...] = 2 * (param.value - 3.0)
            optimizer.step()
        assert param.value[0] == pytest.approx(3.0, abs=1e-4)

    def test_sgd_momentum_converges(self):
        param = self._quadratic_problem()
        optimizer = SGD([param], learning_rate=0.05, momentum=0.9)
        for _ in range(200):
            param.zero_grad()
            param.grad[...] = 2 * (param.value - 3.0)
            optimizer.step()
        assert param.value[0] == pytest.approx(3.0, abs=1e-3)

    def test_adam_converges_on_quadratic(self):
        param = self._quadratic_problem()
        optimizer = Adam([param], learning_rate=0.1)
        for _ in range(300):
            param.zero_grad()
            param.grad[...] = 2 * (param.value - 3.0)
            optimizer.step()
        assert param.value[0] == pytest.approx(3.0, abs=1e-3)

    def test_adam_weight_decay_shrinks_solution(self):
        no_decay = self._quadratic_problem()
        decay = self._quadratic_problem()
        opt_a = Adam([no_decay], learning_rate=0.1)
        opt_b = Adam([decay], learning_rate=0.1, weight_decay=1.0)
        for _ in range(300):
            for param, opt in ((no_decay, opt_a), (decay, opt_b)):
                param.zero_grad()
                param.grad[...] = 2 * (param.value - 3.0)
                opt.step()
        assert abs(decay.value[0]) < abs(no_decay.value[0])

    def test_invalid_hyperparameters(self):
        param = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([param], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([param], learning_rate=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam([param], learning_rate=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam([param], learning_rate=0.1, weight_decay=-0.1)


class TestSequentialAndFit:
    def test_mlp_structure(self):
        network = mlp([4, 8, 2], rng=0)
        assert network.forward(np.zeros((3, 4))).shape == (3, 2)
        assert len(network.parameters()) == 4  # two Dense layers

    def test_mlp_output_activation(self):
        network = mlp([2, 4, 1], output_activation=Sigmoid, rng=0)
        out = network.forward(np.random.default_rng(0).normal(size=(10, 2)))
        assert np.all((out >= 0) & (out <= 1))

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            mlp([4])
        with pytest.raises(ValueError):
            Sequential()

    def test_train_eval_propagates(self):
        network = Sequential(Dense(2, 2, rng=0), ReLU())
        network.eval()
        assert all(not module.training for module in network.modules)
        network.train()
        assert all(module.training for module in network.modules)

    def test_iterate_minibatches_covers_dataset(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)[:, None].astype(float)
        seen = []
        for bx, _ in iterate_minibatches(x, y, batch_size=3, rng=np.random.default_rng(0)):
            seen.extend(bx[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_fit_learns_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w + 0.3
        network = mlp([3, 16, 1], rng=0)
        history = fit(
            network,
            x,
            y,
            optimizer=Adam(network.parameters(), learning_rate=5e-3),
            num_epochs=200,
            batch_size=32,
            rng=0,
        )
        assert history.final_train_loss < 0.02
        assert history.num_epochs <= 200

    def test_fit_learns_binary_classification(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 2))
        y = (x[:, :1] + x[:, 1:] > 0).astype(float)
        network = mlp([2, 16, 1], rng=0)
        fit(network, x, y, loss=BCEWithLogitsLoss(), num_epochs=150, batch_size=32, rng=0)
        logits = network.forward(x)
        accuracy = np.mean((logits > 0) == (y > 0.5))
        assert accuracy > 0.9

    def test_fit_early_stopping(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=(50, 1))  # pure noise: validation stops improving fast
        network = mlp([2, 8, 1], rng=0)
        history = fit(
            network,
            x,
            y,
            num_epochs=500,
            batch_size=16,
            validation_data=(x, y),
            patience=5,
            rng=0,
        )
        assert history.num_epochs < 500

    def test_fit_input_validation(self):
        network = mlp([2, 4, 1], rng=0)
        with pytest.raises(ValueError):
            fit(network, np.zeros((3, 2)), np.zeros((4, 1)))
        with pytest.raises(ValueError):
            fit(network, np.zeros((3, 2)), np.zeros((3, 1)), num_epochs=0)


class TestSerialization:
    def test_state_dict_roundtrip(self):
        network = mlp([3, 5, 2], rng=0)
        other = mlp([3, 5, 2], rng=99)
        load_state_dict(other, state_dict(network))
        x = np.random.default_rng(0).normal(size=(4, 3))
        np.testing.assert_allclose(other.forward(x), network.forward(x))

    def test_file_roundtrip(self, tmp_path):
        network = mlp([3, 5, 2], rng=0)
        path = tmp_path / "weights.npz"
        save_parameters(network, path)
        other = mlp([3, 5, 2], rng=1)
        load_parameters(other, path)
        x = np.random.default_rng(1).normal(size=(4, 3))
        np.testing.assert_allclose(other.forward(x), network.forward(x))

    def test_shape_mismatch_rejected(self):
        network = mlp([3, 5, 2], rng=0)
        wrong = mlp([3, 6, 2], rng=0)
        with pytest.raises((ValueError, KeyError)):
            load_state_dict(wrong, state_dict(network))

    def test_missing_parameters_rejected(self):
        network = mlp([3, 5, 2], rng=0)
        state = state_dict(network)
        state.pop(next(iter(state)))
        with pytest.raises((ValueError, KeyError)):
            load_state_dict(network, state)


class TestGraphConvEncoder:
    def test_embedding_is_fixed_size_across_instance_sizes(self):
        encoder = GraphConvEncoder(hidden_dim=8, rng=0)
        small = encoder.encode(generate_instance(6, rng=0).distances)
        large = encoder.encode(generate_instance(15, rng=1).distances)
        assert small.shape == large.shape == (encoder.embedding_dim,)

    def test_embedding_deterministic(self):
        encoder = GraphConvEncoder(rng=0)
        distances = generate_instance(8, rng=2).distances
        np.testing.assert_allclose(encoder.encode(distances), encoder.encode(distances))

    def test_scale_invariance(self):
        encoder = GraphConvEncoder(rng=0)
        distances = generate_instance(8, rng=3).distances
        np.testing.assert_allclose(
            encoder.encode(distances), encoder.encode(distances * 7.5), atol=1e-9
        )

    def test_different_instances_get_different_embeddings(self):
        encoder = GraphConvEncoder(rng=0)
        a = encoder.encode(generate_instance(8, rng=4).distances)
        b = encoder.encode(generate_instance(8, rng=5).distances)
        assert not np.allclose(a, b)

    def test_validation(self):
        encoder = GraphConvEncoder(rng=0)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            GraphConvEncoder(num_layers=0)
