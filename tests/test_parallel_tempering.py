"""Tests for the parallel-tempering solver, multi-flip DA and the engine
primitives they ride on (per-replica Metropolis, ladder swaps, adaptive
blocks) — including the regression pinning that block-size-1 multi-flip
mechanics are byte-identical to the single-flip path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import QUBOModel, random_qubo
from repro.service.registry import SolverRegistry, make_solver
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.engine import (
    AdaptiveBlockSizer,
    AnnealingState,
    metropolis_accept,
    propose_ladder_swaps,
)
from repro.solvers.parallel_tempering import (
    ParallelTemperingConfig,
    ParallelTemperingSolver,
)
from repro.solvers.simulated_annealing import (
    SimulatedAnnealingConfig,
    SimulatedAnnealingSolver,
)


def brute_force_minimum(model: QUBOModel) -> float:
    n = model.num_variables
    states = ((np.arange(2**n)[:, None] >> np.arange(n)) & 1).astype(np.int8)
    return float(model.energies(states).min())


# --------------------------------------------------------- engine primitives
class TestPerReplicaMetropolis:
    def test_array_temperature_matches_scalar_rows(self):
        rng = np.random.default_rng(0)
        delta = rng.normal(size=(4, 9))
        uniforms = rng.random((4, 9))
        temps = np.array([0.5, 2.0, 0.1, 7.0])
        batched = metropolis_accept(delta, temps, uniforms)
        for row, temperature in enumerate(temps):
            expected = metropolis_accept(delta[row], float(temperature), uniforms[row])
            np.testing.assert_array_equal(batched[row], expected)

    def test_zero_temperature_row_is_greedy(self):
        delta = np.array([[-1.0, 1e-12], [-1.0, 1e-12]])
        temps = np.array([0.0, 1e9])
        accept = metropolis_accept(delta, temps, np.full((2, 2), 0.5))
        np.testing.assert_array_equal(accept[0], [True, False])
        np.testing.assert_array_equal(accept[1], [True, True])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="one entry per replica"):
            metropolis_accept(np.zeros((3, 2)), np.ones(2), np.zeros((3, 2)))

    def test_scalar_path_unchanged(self):
        # The scalar form is the one every pre-PT solver consumes; pin it.
        delta = np.array([-1.0, 0.0, 2.0])
        accept = metropolis_accept(delta, 0.0, np.zeros(3))
        np.testing.assert_array_equal(accept, [True, True, False])


class TestProposeLadderSwaps:
    def test_favourable_swap_always_accepted(self):
        # Cold rung (high beta) holds the higher energy -> log ratio > 0.
        energies = np.array([[5.0, 1.0]])
        betas = np.array([10.0, 1.0])
        accept = propose_ladder_swaps(energies, betas, 0, np.array([[0.999999]]))
        assert accept.shape == (1, 1) and accept[0, 0]

    def test_unfavourable_swap_needs_luck(self):
        energies = np.array([[1.0, 5.0]])
        betas = np.array([10.0, 1.0])  # log ratio = 9 * (-4) = -36
        assert not propose_ladder_swaps(energies, betas, 0, np.array([[0.5]]))[0, 0]

    def test_offset_one_pairs_middle_rungs(self):
        # Four rungs at offset 1 -> the single pair (1, 2), with
        # log ratio (beta_1 - beta_2)(E_1 - E_2) = (2 - 3)(3 - 2) = -1:
        # accepted exactly when log(u) < -1, i.e. u < e^-1.
        energies = np.tile([[4.0, 3.0, 2.0, 1.0]], (2, 1))
        betas = np.array([1.0, 2.0, 3.0, 4.0])
        unlucky = propose_ladder_swaps(energies, betas, 1, np.full((2, 1), 0.999999))
        lucky = propose_ladder_swaps(energies, betas, 1, np.full((2, 1), 0.1))
        assert unlucky.shape == (2, 1) and not unlucky.any()
        assert lucky.all()

    def test_no_pairs_returns_empty_mask(self):
        accept = propose_ladder_swaps(np.zeros((3, 1)), np.array([1.0]), 0, np.zeros((3, 0)))
        assert accept.shape == (3, 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="uniforms"):
            propose_ladder_swaps(np.zeros((2, 4)), np.arange(1.0, 5.0), 0, np.zeros((2, 3)))


class TestAdaptiveBlockSizer:
    def test_grows_when_cold_and_shrinks_back_when_hot(self):
        sizer = AdaptiveBlockSizer(256)  # initial 32, cap 64
        assert sizer.block == 32
        assert sizer.update(0.0) == 64
        assert sizer.update(0.0) == 64  # capped
        assert sizer.update(0.9) == 32
        for _ in range(10):
            sizer.update(0.9)
        # Floored at the fixed heuristic: hot sweeps never regress below the
        # block the non-adaptive solver would have used.
        assert sizer.block == 32

    def test_explicit_min_block_allows_sequential_floor(self):
        sizer = AdaptiveBlockSizer(256, min_block=1)
        for _ in range(10):
            sizer.update(0.9)
        assert sizer.block == 1

    def test_mid_band_rate_keeps_block(self):
        sizer = AdaptiveBlockSizer(256)
        assert sizer.update(0.1) == 32

    def test_explicit_initial_and_cap(self):
        sizer = AdaptiveBlockSizer(1000, initial=10, max_block=15)
        assert sizer.update(0.0) == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBlockSizer(64, low=0.5, high=0.2)
        with pytest.raises(ValueError):
            AdaptiveBlockSizer(64, initial=0)
        with pytest.raises(ValueError):
            AdaptiveBlockSizer(64, min_block=8, max_block=4)


# ----------------------------------------------- block-size-1 regression (DA)
class TestBlockSizeOneParity:
    """A multi-flip step restricted to one flip must be byte-identical to the
    single-flip mutator — the invariant that lets the DA refactor share one
    engine without perturbing the published single-flip algorithm."""

    def test_engine_mutators_agree_on_one_flip(self):
        model = random_qubo(24, rng=3)
        x0 = np.random.default_rng(8).integers(0, 2, size=(5, 24)).astype(np.float64)
        single = AnnealingState(model, 5, initial_states=x0.copy())
        block = AnnealingState(model, 5, initial_states=x0.copy())

        rng = np.random.default_rng(11)
        for _ in range(25):
            col = int(rng.integers(0, 24))
            flip_rows = rng.random(5) < 0.7
            rows = np.nonzero(flip_rows)[0]
            deltas = single.flip_deltas(np.array([col]))[rows, 0]
            single.apply_single_flips(rows, np.full(rows.size, col), deltas)
            block.apply_block_flips(np.array([col]), flip_rows[:, None])
        single_e = single.energies_from_fields()
        block.refresh_energies()
        assert np.array_equal(single.X, block.X)
        assert np.array_equal(single.H, block.H)
        assert np.array_equal(single_e, block.current_energies)

    def test_da_default_config_still_single_flip(self):
        model = random_qubo(18, rng=9)
        legacy = DigitalAnnealerSolver(DigitalAnnealerConfig(num_steps=150))
        explicit = DigitalAnnealerSolver(
            DigitalAnnealerConfig(num_steps=150, max_parallel_flips=1)
        )
        a = legacy.sample(model, num_reads=6, rng=np.random.default_rng(4))
        b = explicit.sample(model, num_reads=6, rng=np.random.default_rng(4))
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.energies, b.energies)


# ------------------------------------------------------------- multi-flip DA
class TestMultiFlipDigitalAnnealer:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_parallel_flips"):
            DigitalAnnealerConfig(max_parallel_flips=0)

    def test_deterministic_and_reaches_optimum(self):
        model = random_qubo(10, rng=2)
        solver = DigitalAnnealerSolver(
            DigitalAnnealerConfig(num_steps=250, max_parallel_flips=4)
        )
        a = solver.sample(model, num_reads=6, rng=np.random.default_rng(0))
        b = solver.sample(model, num_reads=6, rng=np.random.default_rng(0))
        assert np.array_equal(a.assignments, b.assignments)
        assert a.best.energy == pytest.approx(brute_force_minimum(model))
        assert a.info["max_parallel_flips"] == 4

    def test_flip_cap_beyond_n_is_clamped(self):
        model = random_qubo(6, rng=1)
        solver = DigitalAnnealerSolver(
            DigitalAnnealerConfig(num_steps=100, max_parallel_flips=1000)
        )
        samples = solver.sample(model, num_reads=2, rng=np.random.default_rng(7))
        assert samples.info["max_parallel_flips"] == 6
        # An uncapped simultaneous update may oscillate (all accepted flips
        # land together), so only determinism is asserted, not optimality.
        again = solver.sample(model, num_reads=2, rng=np.random.default_rng(7))
        assert np.array_equal(samples.assignments, again.assignments)

    def test_spec_round_trip(self):
        solver = make_solver("da?max_parallel_flips=8&num_steps=60")
        spec = SolverRegistry.spec_for(solver)
        assert "max_parallel_flips=8" in spec
        assert make_solver(spec).config_fingerprint() == solver.config_fingerprint()


# ------------------------------------------------------------------ PT solver
class TestParallelTemperingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sweeps": 0},
            {"num_replicas": 0},
            {"swap_interval": 0},
            {"t_hot": -1.0},
            {"t_cold": 0.0},
            {"t_hot": 1.0, "t_cold": 2.0},
            {"block_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ParallelTemperingConfig(**kwargs)

    def test_ladder_is_geometric_between_endpoints(self):
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_replicas=5, t_hot=16.0, t_cold=1.0)
        )
        ladder = solver._ladder(random_qubo(8, rng=0))
        np.testing.assert_allclose(ladder, [16.0, 8.0, 4.0, 2.0, 1.0])

    def test_single_rung_ladder_runs_cold(self):
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_replicas=1, t_hot=16.0, t_cold=1.0)
        )
        np.testing.assert_allclose(solver._ladder(random_qubo(8, rng=0)), [1.0])

    def test_mixed_explicit_auto_inversion_raises(self):
        # Explicit t_cold above the model's auto-derived t_hot must raise,
        # exactly like the all-explicit inverted pair does at config time.
        solver = ParallelTemperingSolver(ParallelTemperingConfig(t_cold=1e9))
        with pytest.raises(ValueError, match="inverted"):
            solver.sample(random_qubo(8, rng=0), num_reads=1, rng=np.random.default_rng(0))

    def test_auto_ladder_from_model_scale(self):
        model = random_qubo(12, rng=5)
        ladder = ParallelTemperingSolver()._ladder(model)
        assert ladder.shape == (8,)
        assert ladder[0] > ladder[-1] > 0


class TestParallelTemperingSolver:
    def test_seeded_runs_byte_identical(self):
        model = random_qubo(20, rng=6)
        solver = make_solver("pt?num_sweeps=15&num_replicas=4&swap_interval=3")
        a = solver.sample(model, num_reads=3, rng=np.random.default_rng(42))
        b = solver.sample(model, num_reads=3, rng=np.random.default_rng(42))
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.energies, b.energies)

    def test_reaches_brute_force_optimum(self):
        model = random_qubo(10, rng=13)
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=60, num_replicas=6, swap_interval=2)
        )
        samples = solver.sample(model, num_reads=2, rng=np.random.default_rng(1))
        assert samples.best.energy == pytest.approx(brute_force_minimum(model))

    def test_swaps_are_proposed_and_recorded(self):
        model = random_qubo(16, rng=4)
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=20, num_replicas=4, swap_interval=2)
        )
        samples = solver.sample(model, num_reads=2, rng=np.random.default_rng(3))
        # 10 swap rounds; alternating parity over 4 rungs gives 2 or 1 pairs.
        assert samples.info["swaps_proposed"] == 2 * (5 * 2 + 5 * 1)
        assert 0 <= samples.info["swaps_accepted"] <= samples.info["swaps_proposed"]

    def test_single_replica_never_swaps(self):
        model = random_qubo(12, rng=1)
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=10, num_replicas=1)
        )
        samples = solver.sample(model, num_reads=2, rng=np.random.default_rng(5))
        assert samples.info["swaps_proposed"] == 0
        assert samples.num_samples == 2

    def test_trajectory_is_monotone_and_sweep_long(self):
        model = random_qubo(14, rng=2)
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=25, num_replicas=3, track_trajectory=True)
        )
        samples = solver.sample(model, num_reads=1, rng=np.random.default_rng(0))
        traj = samples.info["best_energy_trajectory"]
        assert len(traj) == 25
        assert all(a >= b for a, b in zip(traj, traj[1:]))
        assert traj[-1] == pytest.approx(samples.best.energy)

    def test_trajectory_does_not_perturb_stream(self):
        model = random_qubo(14, rng=2)
        plain = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=12, num_replicas=3)
        )
        tracked = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=12, num_replicas=3, track_trajectory=True)
        )
        a = plain.sample(model, num_reads=2, rng=np.random.default_rng(9))
        b = tracked.sample(model, num_reads=2, rng=np.random.default_rng(9))
        assert np.array_equal(a.assignments, b.assignments)

    def test_registry_aliases_and_spec(self):
        registry = SolverRegistry.default()
        assert registry.canonical_name("parallel-tempering") == "pt"
        assert registry.canonical_name("replica-exchange") == "pt"
        solver = make_solver("pt", num_replicas=12)
        assert isinstance(solver, ParallelTemperingSolver)
        assert "num_replicas=12" in SolverRegistry.spec_for(solver)

    def test_beats_or_matches_sa_on_frustrated_model(self):
        # Same sweep budget, same number of propagated chains: PT's exchange
        # moves must not *hurt* — its best energy is <= SA's on this
        # moderately hard instance (both are deterministic under the seeds).
        model = random_qubo(40, density=0.6, rng=77)
        replicas = 6
        pt = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=40, num_replicas=replicas, swap_interval=2)
        )
        sa = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=40))
        pt_best = pt.sample(model, num_reads=2, rng=np.random.default_rng(0)).best.energy
        sa_best = sa.sample(
            model, num_reads=2 * replicas, rng=np.random.default_rng(0)
        ).best.energy
        assert pt_best <= sa_best + 1e-9


# -------------------------------------------------------------- adaptive SA
class TestAdaptiveSimulatedAnnealing:
    def test_adaptive_is_default_and_reported(self):
        model = random_qubo(64, rng=3)
        samples = SimulatedAnnealingSolver(
            SimulatedAnnealingConfig(num_sweeps=30)
        ).sample(model, num_reads=4, rng=np.random.default_rng(2))
        assert samples.info["block_size"] == "adaptive"
        assert samples.info["final_block_size"] >= 1

    def test_fixed_block_still_available(self):
        model = random_qubo(20, rng=3)
        samples = SimulatedAnnealingSolver(
            SimulatedAnnealingConfig(num_sweeps=10, block_size=5)
        ).sample(model, num_reads=2, rng=np.random.default_rng(2))
        assert samples.info["block_size"] == 5
        assert samples.info["final_block_size"] == 5

    def test_adaptive_and_fixed_consume_identical_streams(self):
        # The sizer reads acceptance counts only: per-sweep draws are the
        # shuffled order plus one uniform matrix, independent of block size.
        model = random_qubo(24, rng=6)
        rng_a = np.random.default_rng(31)
        rng_b = np.random.default_rng(31)
        SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=8)).sample(
            model, num_reads=2, rng=rng_a
        )
        SimulatedAnnealingSolver(
            SimulatedAnnealingConfig(num_sweeps=8, block_size=3)
        ).sample(model, num_reads=2, rng=rng_b)
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_sa_trajectory_tracking(self):
        model = random_qubo(16, rng=8)
        samples = SimulatedAnnealingSolver(
            SimulatedAnnealingConfig(num_sweeps=12, track_trajectory=True)
        ).sample(model, num_reads=2, rng=np.random.default_rng(0))
        traj = samples.info["best_energy_trajectory"]
        assert len(traj) == 12
        assert all(a >= b for a, b in zip(traj, traj[1:]))
