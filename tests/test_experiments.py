"""Unit tests for the experiment harness: metrics, profiles, cache and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import SolverCallCache
from repro.experiments.metrics import (
    INFEASIBLE_GAP,
    GapSummary,
    gap_curve,
    gap_table_rows,
    optimality_gap,
    summarise_gap_curves,
)
from repro.experiments.profiles import PAPER, SMALL, SMOKE, resolve_profile
from repro.experiments.reporting import format_gap_summaries, format_table, sparkline
from repro.experiments.runner import default_bounds
from repro.solvers.random_solver import RandomSolver
from repro.tuning.base import TrialHistory, TrialResult


def history_from(entries) -> TrialHistory:
    history = TrialHistory()
    for parameter, pf, fitness in entries:
        history.append(TrialResult(parameter=parameter, probability_of_feasibility=pf, best_fitness=fitness))
    return history


class TestOptimalityGap:
    def test_zero_when_optimal(self):
        assert optimality_gap(10.0, 10.0) == 0.0

    def test_relative_gap(self):
        assert optimality_gap(11.0, 10.0) == pytest.approx(0.1)

    def test_infeasible_charged_full_gap(self):
        assert optimality_gap(None, 10.0) == INFEASIBLE_GAP

    def test_better_than_reference_clamped_to_zero(self):
        assert optimality_gap(9.0, 10.0) == 0.0

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            optimality_gap(1.0, 0.0)


class TestGapCurve:
    def test_curve_improves_with_better_trials(self):
        history = history_from([(1.0, 0.0, None), (2.0, 1.0, 12.0), (3.0, 1.0, 11.0)])
        curve = gap_curve(history, reference_fitness=10.0, num_trials=3)
        np.testing.assert_allclose(curve, [1.0, 0.2, 0.1])

    def test_curve_padded_with_last_value(self):
        history = history_from([(1.0, 1.0, 10.0)])
        curve = gap_curve(history, reference_fitness=10.0, num_trials=4)
        np.testing.assert_allclose(curve, [0.0, 0.0, 0.0, 0.0])

    def test_curve_is_non_increasing(self):
        history = history_from([(1.0, 1.0, 15.0), (2.0, 1.0, 20.0), (3.0, 1.0, 11.0)])
        curve = gap_curve(history, reference_fitness=10.0, num_trials=3)
        assert all(np.diff(curve) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            gap_curve(TrialHistory(), 10.0, 0)


class TestGapSummary:
    def test_mean_and_confidence_band(self):
        curves = [np.array([0.4, 0.2]), np.array([0.2, 0.0]), np.array([0.3, 0.1])]
        summary = summarise_gap_curves("m", curves)
        np.testing.assert_allclose(summary.mean, [0.3, 0.1])
        assert np.all(summary.lower <= summary.mean)
        assert np.all(summary.upper >= summary.mean)
        assert summary.num_instances == 3

    def test_at_trial_clamps(self):
        summary = summarise_gap_curves("m", [np.array([0.5, 0.25])])
        assert summary.at_trial(1) == 0.5
        assert summary.at_trial(2) == 0.25
        assert summary.at_trial(20) == 0.25
        with pytest.raises(ValueError):
            summary.at_trial(0)

    def test_single_curve_has_zero_band(self):
        summary = summarise_gap_curves("m", [np.array([0.5, 0.25])])
        np.testing.assert_allclose(summary.lower, summary.mean)
        np.testing.assert_allclose(summary.upper, summary.mean)

    def test_requires_curves(self):
        with pytest.raises(ValueError):
            summarise_gap_curves("m", [])

    def test_gap_table_rows(self):
        summaries = {"QROSS": summarise_gap_curves("QROSS", [np.linspace(0.5, 0.0, 20)])}
        rows = gap_table_rows(summaries, trial_numbers=(3, 20))
        assert rows[0]["method"] == "QROSS"
        assert rows[0]["gap@3"] >= rows[0]["gap@20"]


class TestProfiles:
    def test_presets_resolvable(self):
        assert resolve_profile("smoke") is SMOKE
        assert resolve_profile("small") is SMALL
        assert resolve_profile("paper") is PAPER

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("QROSS_PROFILE", raising=False)
        assert resolve_profile() is SMOKE
        monkeypatch.setenv("QROSS_PROFILE", "small")
        assert resolve_profile() is SMALL

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            resolve_profile("gigantic")

    def test_paper_profile_matches_paper_settings(self):
        assert PAPER.num_train_instances == 270
        assert PAPER.num_test_instances == 30
        assert PAPER.min_cities == 20
        assert PAPER.max_cities == 30
        assert PAPER.num_reads == 128
        assert PAPER.num_trials == 20

    def test_scaled_override(self):
        custom = SMOKE.scaled(num_trials=5)
        assert custom.num_trials == 5
        assert custom.num_reads == SMOKE.num_reads

    def test_solver_config_factories(self):
        assert SMOKE.digital_annealer_config().steps_per_variable == SMOKE.da_steps_per_variable
        assert SMOKE.simulated_annealing_config().num_sweeps == SMOKE.sa_num_sweeps
        assert SMOKE.qbsolv_config().subproblem_size == SMOKE.qbsolv_subproblem_size


class TestSolverCallCache:
    def test_caches_repeated_evaluations(self, tsp_problem):
        cache = SolverCallCache()
        solver = RandomSolver()
        parameter = tsp_problem.relaxation_scale()
        first = cache.evaluate(tsp_problem, solver, parameter, num_reads=8, rng=0)
        second = cache.evaluate(tsp_problem, solver, parameter, num_reads=8, rng=1)
        assert cache.hits == 1
        assert cache.misses == 1
        assert first == second

    def test_different_parameters_are_separate_entries(self, tsp_problem):
        cache = SolverCallCache()
        solver = RandomSolver()
        cache.evaluate(tsp_problem, solver, 1.0, num_reads=4, rng=0)
        cache.evaluate(tsp_problem, solver, 2.0, num_reads=4, rng=0)
        assert len(cache) == 2

    def test_same_backend_different_configs_do_not_collide(self, tsp_problem):
        # Regression: the key used to contain only `solver.name`, so two SA
        # solvers with different sweep budgets shared one entry and the second
        # silently returned the first one's statistics.
        from repro.solvers.simulated_annealing import (
            SimulatedAnnealingConfig,
            SimulatedAnnealingSolver,
        )

        cache = SolverCallCache()
        short = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=5))
        long = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=50))
        parameter = tsp_problem.relaxation_scale()
        cache.evaluate(tsp_problem, short, parameter, num_reads=4, rng=0)
        cache.evaluate(tsp_problem, long, parameter, num_reads=4, rng=0)
        assert len(cache) == 2
        assert cache.misses == 2 and cache.hits == 0
        # Identically-configured solver instances still share an entry.
        cache.evaluate(
            tsp_problem,
            SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=5)),
            parameter,
            num_reads=4,
            rng=1,
        )
        assert cache.hits == 1 and len(cache) == 2

    def test_persistence_roundtrip(self, tsp_problem, tmp_path):
        cache = SolverCallCache()
        solver = RandomSolver()
        cache.evaluate(tsp_problem, solver, 1.5, num_reads=4, rng=0)
        path = tmp_path / "cache.json"
        cache.save(path)
        restored = SolverCallCache.load(path)
        assert len(restored) == 1
        value = restored.evaluate(tsp_problem, solver, 1.5, num_reads=4, rng=0)
        assert restored.hits == 1
        assert 0.0 <= value.probability_of_feasibility <= 1.0


class TestDefaultBounds:
    def test_bounds_scale_with_instance(self, tsp_problem):
        bounds = default_bounds(tsp_problem)
        scale = tsp_problem.relaxation_scale()
        assert bounds.low == pytest.approx(0.05 * scale)
        assert bounds.high == pytest.approx(4.0 * scale)

    def test_custom_multipliers(self, tsp_problem):
        bounds = default_bounds(tsp_problem, low_multiplier=0.5, high_multiplier=2.0)
        assert bounds.high / bounds.low == pytest.approx(4.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_gap_summaries_contains_methods(self):
        summaries = {
            "QROSS": summarise_gap_curves("QROSS", [np.linspace(0.3, 0.0, 8)]),
            "TPE": summarise_gap_curves("TPE", [np.linspace(0.4, 0.1, 8)]),
        }
        text = format_gap_summaries(summaries, checkpoints=(1, 3, 8))
        assert "QROSS" in text and "TPE" in text
        assert "gap@3" in text

    def test_sparkline_length_and_monotonicity(self):
        line = sparkline([1.0, 0.5, 0.0])
        assert len(line) == 3
        assert line[0] != line[-1]

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_sparkline_downsamples(self):
        assert len(sparkline(np.linspace(0, 1, 200), width=40)) == 40
