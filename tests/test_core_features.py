"""Unit tests for instance feature extraction (repro.core.features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    MODEL_FEATURE_DIM,
    CompositeExtractor,
    GraphEncoderExtractor,
    MemoisedExtractor,
    QuboStatisticsExtractor,
    TSPStatisticsExtractor,
    default_extractor_for,
    model_feature_cache_clear,
    model_feature_cache_info,
    model_feature_vector,
)
from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem


@pytest.fixture
def tsp_problems():
    return [TSPProblem(generate_instance(n, rng=n)) for n in (6, 9, 12)]


class TestTSPStatisticsExtractor:
    def test_fixed_size_across_instance_sizes(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        features = [extractor.extract(problem) for problem in tsp_problems]
        assert all(f.shape == (extractor.dim,) for f in features)

    def test_feature_names_match_dim(self):
        extractor = TSPStatisticsExtractor()
        assert len(extractor.feature_names) == extractor.dim

    def test_features_are_finite(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        for problem in tsp_problems:
            assert np.all(np.isfinite(extractor.extract(problem)))

    def test_scale_invariance_except_size(self):
        extractor = TSPStatisticsExtractor()
        instance = generate_instance(8, rng=0)
        base = extractor.extract(TSPProblem(instance))
        scaled = extractor.extract(TSPProblem(instance.scaled(13.0)))
        np.testing.assert_allclose(base, scaled, atol=1e-9)

    def test_num_cities_feature(self):
        extractor = TSPStatisticsExtractor()
        features = extractor.extract(TSPProblem(generate_instance(10, rng=1)))
        assert features[0] == 10.0

    def test_different_instances_have_different_features(self):
        extractor = TSPStatisticsExtractor()
        a = extractor.extract(TSPProblem(generate_instance(10, distribution="uniform", rng=0)))
        b = extractor.extract(TSPProblem(generate_instance(10, distribution="clustered", rng=1)))
        assert not np.allclose(a, b)

    def test_rejects_non_tsp_problem(self, tsp_problems):
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=8), rng=0))
        with pytest.raises(TypeError):
            TSPStatisticsExtractor().extract(mvc)

    def test_extract_batch_stacks(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        matrix = extractor.extract_batch(tsp_problems)
        assert matrix.shape == (3, extractor.dim)


class TestOtherExtractors:
    def test_graph_encoder_extractor(self, tsp_problems):
        extractor = GraphEncoderExtractor(hidden_dim=8, rng=0)
        features = extractor.extract(tsp_problems[0])
        assert features.shape == (extractor.dim,)

    def test_qubo_statistics_extractor_works_for_mvc(self):
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=8), rng=0))
        extractor = QuboStatisticsExtractor()
        features = extractor.extract(mvc)
        assert features.shape == (extractor.dim,)
        assert np.all(np.isfinite(features))

    def test_qubo_statistics_extractor_works_for_tsp(self, tsp_problems):
        extractor = QuboStatisticsExtractor()
        assert extractor.extract(tsp_problems[0]).shape == (extractor.dim,)

    def test_composite_concatenates(self, tsp_problems):
        stats = TSPStatisticsExtractor()
        gcn = GraphEncoderExtractor(hidden_dim=4, rng=0)
        composite = CompositeExtractor(stats, gcn)
        assert composite.dim == stats.dim + gcn.dim
        features = composite.extract(tsp_problems[0])
        assert features.shape == (composite.dim,)

    def test_composite_requires_extractors(self):
        with pytest.raises(ValueError):
            CompositeExtractor()

    def test_default_extractor_dispatch(self, tsp_problems):
        assert isinstance(default_extractor_for(tsp_problems[0]), TSPStatisticsExtractor)
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=6), rng=0))
        assert isinstance(default_extractor_for(mvc), QuboStatisticsExtractor)


class CountingExtractor(QuboStatisticsExtractor):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def extract(self, problem):
        self.calls += 1
        return super().extract(problem)


class TestMemoisedExtractor:
    def test_repeat_extraction_hits_the_cache(self, tsp_problems):
        inner = CountingExtractor()
        memo = MemoisedExtractor(inner)
        first = memo.extract(tsp_problems[0])
        second = memo.extract(tsp_problems[0])
        np.testing.assert_array_equal(first, second)
        assert inner.calls == 1
        info = memo.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_distinct_instances_miss_independently(self, tsp_problems):
        inner = CountingExtractor()
        memo = MemoisedExtractor(inner)
        for problem in tsp_problems:
            memo.extract(problem)
        assert inner.calls == len(tsp_problems)
        assert memo.cache_info().currsize == len(tsp_problems)

    def test_cached_result_is_a_private_copy(self, tsp_problems):
        memo = MemoisedExtractor(CountingExtractor())
        first = memo.extract(tsp_problems[0])
        first[:] = -1.0
        assert not np.array_equal(memo.extract(tsp_problems[0]), first)

    def test_eviction_honours_maxsize(self, tsp_problems):
        memo = MemoisedExtractor(CountingExtractor(), maxsize=2)
        for problem in tsp_problems:  # three distinct instances, capacity two
            memo.extract(problem)
        assert memo.cache_info().currsize == 2

    def test_dim_passthrough(self, tsp_problems):
        inner = CountingExtractor()
        assert MemoisedExtractor(inner).dim == inner.dim

    def test_cache_clear_resets_counters(self, tsp_problems):
        memo = MemoisedExtractor(CountingExtractor())
        memo.extract(tsp_problems[0])
        memo.cache_clear()
        info = memo.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)


class TestModelFeatureVector:
    def test_shape_and_finiteness(self):
        from repro.qubo.model import random_qubo

        features = model_feature_vector(random_qubo(12, rng=3))
        assert features.shape == (MODEL_FEATURE_DIM,)
        assert np.all(np.isfinite(features))

    def test_repeat_lookup_is_a_cache_hit(self):
        from repro.qubo.model import random_qubo

        model = random_qubo(10, rng=7)
        model_feature_cache_clear()
        first = model_feature_vector(model)
        before = model_feature_cache_info()
        second = model_feature_vector(model)
        after = model_feature_cache_info()
        np.testing.assert_array_equal(first, second)
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
