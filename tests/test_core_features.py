"""Unit tests for instance feature extraction (repro.core.features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    CompositeExtractor,
    GraphEncoderExtractor,
    QuboStatisticsExtractor,
    TSPStatisticsExtractor,
    default_extractor_for,
)
from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem


@pytest.fixture
def tsp_problems():
    return [TSPProblem(generate_instance(n, rng=n)) for n in (6, 9, 12)]


class TestTSPStatisticsExtractor:
    def test_fixed_size_across_instance_sizes(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        features = [extractor.extract(problem) for problem in tsp_problems]
        assert all(f.shape == (extractor.dim,) for f in features)

    def test_feature_names_match_dim(self):
        extractor = TSPStatisticsExtractor()
        assert len(extractor.feature_names) == extractor.dim

    def test_features_are_finite(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        for problem in tsp_problems:
            assert np.all(np.isfinite(extractor.extract(problem)))

    def test_scale_invariance_except_size(self):
        extractor = TSPStatisticsExtractor()
        instance = generate_instance(8, rng=0)
        base = extractor.extract(TSPProblem(instance))
        scaled = extractor.extract(TSPProblem(instance.scaled(13.0)))
        np.testing.assert_allclose(base, scaled, atol=1e-9)

    def test_num_cities_feature(self):
        extractor = TSPStatisticsExtractor()
        features = extractor.extract(TSPProblem(generate_instance(10, rng=1)))
        assert features[0] == 10.0

    def test_different_instances_have_different_features(self):
        extractor = TSPStatisticsExtractor()
        a = extractor.extract(TSPProblem(generate_instance(10, distribution="uniform", rng=0)))
        b = extractor.extract(TSPProblem(generate_instance(10, distribution="clustered", rng=1)))
        assert not np.allclose(a, b)

    def test_rejects_non_tsp_problem(self, tsp_problems):
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=8), rng=0))
        with pytest.raises(TypeError):
            TSPStatisticsExtractor().extract(mvc)

    def test_extract_batch_stacks(self, tsp_problems):
        extractor = TSPStatisticsExtractor()
        matrix = extractor.extract_batch(tsp_problems)
        assert matrix.shape == (3, extractor.dim)


class TestOtherExtractors:
    def test_graph_encoder_extractor(self, tsp_problems):
        extractor = GraphEncoderExtractor(hidden_dim=8, rng=0)
        features = extractor.extract(tsp_problems[0])
        assert features.shape == (extractor.dim,)

    def test_qubo_statistics_extractor_works_for_mvc(self):
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=8), rng=0))
        extractor = QuboStatisticsExtractor()
        features = extractor.extract(mvc)
        assert features.shape == (extractor.dim,)
        assert np.all(np.isfinite(features))

    def test_qubo_statistics_extractor_works_for_tsp(self, tsp_problems):
        extractor = QuboStatisticsExtractor()
        assert extractor.extract(tsp_problems[0]).shape == (extractor.dim,)

    def test_composite_concatenates(self, tsp_problems):
        stats = TSPStatisticsExtractor()
        gcn = GraphEncoderExtractor(hidden_dim=4, rng=0)
        composite = CompositeExtractor(stats, gcn)
        assert composite.dim == stats.dim + gcn.dim
        features = composite.extract(tsp_problems[0])
        assert features.shape == (composite.dim,)

    def test_composite_requires_extractors(self):
        with pytest.raises(ValueError):
            CompositeExtractor()

    def test_default_extractor_dispatch(self, tsp_problems):
        assert isinstance(default_extractor_for(tsp_problems[0]), TSPStatisticsExtractor)
        mvc = MVCProblem(generate_mvc_instance(RandomMVCConfig(num_vertices=6), rng=0))
        assert isinstance(default_extractor_for(mvc), QuboStatisticsExtractor)
