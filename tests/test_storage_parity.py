"""Dense-vs-sparse storage parity suite and sparse-encode acceptance tests.

The same mathematical model must behave identically whether its coefficients
are held dense or as CSR: identical energies, ``to_dict``, ``to_ising``,
fingerprints, and *byte-identical* seeded ``repro.solve`` results.  Test
instances use dyadic-rational coefficients so every float operation is exact
and "identical" genuinely means bit-for-bit.

The acceptance tests at the bottom pin the headline property of the sparse
encoding path: a large sparse MVC instance encodes and solves end to end
without ever allocating a dense ``n x n`` array.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.problems.mvc.generator import generate_sparse_mvc_instance
from repro.problems.mvc.instance import MVCInstance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.expression import RelaxedEncoding
from repro.qubo.model import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_VARIABLES,
    QUBOModel,
)
from repro.service.requests import SolveRequest
from repro.service.service import SolveService


def dyadic_mvc_problem(
    num_vertices: int, edge_probability: float, storage: str, seed: int = 0
) -> MVCProblem:
    """Random MVC instance with dyadic weights (all encoding arithmetic exact)."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((num_vertices, num_vertices)) < edge_probability, k=1)
    adjacency = upper | upper.T
    weights = rng.integers(1, 16, size=num_vertices) / 8.0
    instance = MVCInstance(
        adjacency=adjacency, weights=weights, name=f"parity-mvc-{edge_probability}"
    )
    return MVCProblem(instance, storage=storage)


def integer_tsp_problem(num_cities: int, storage: str, seed: int = 0) -> TSPProblem:
    """Random TSP instance with integer distances (exact arithmetic)."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.integers(1, 100, size=(num_cities, num_cities)), k=1)
    distances = (upper + upper.T).astype(np.float64)
    instance = TSPInstance(distances=distances, name="parity-tsp")
    return TSPProblem(instance, storage=storage)


# Edge probabilities straddling the CSR auto-backend threshold (0.10), at the
# minimum sparse-regime size.  The relaxed model's density tracks the graph
# density closely, so these cover sparse-regime, boundary and dense-regime.
MVC_DENSITIES = [0.02, 0.08, 0.10, 0.30]


def both_encodings(problem_factory):
    dense = problem_factory("dense").encode()
    sparse = problem_factory("sparse").encode()
    return dense, sparse


class TestEncodingParity:
    @pytest.mark.parametrize("density", MVC_DENSITIES)
    def test_mvc_storage_matches_request(self, density):
        dense, sparse = both_encodings(
            lambda storage: dyadic_mvc_problem(SPARSE_MIN_VARIABLES, density, storage)
        )
        assert dense.objective.storage == dense.penalty.storage == "dense"
        assert sparse.objective.storage == sparse.penalty.storage == "sparse"

    @pytest.mark.parametrize("density", MVC_DENSITIES)
    def test_mvc_models_identical(self, density):
        dense, sparse = both_encodings(
            lambda storage: dyadic_mvc_problem(SPARSE_MIN_VARIABLES, density, storage)
        )
        for d, s in ((dense.objective, sparse.objective), (dense.penalty, sparse.penalty)):
            assert d.fingerprint() == s.fingerprint()
            assert d.offset == s.offset
            assert d.density() == s.density()
            assert np.array_equal(np.asarray(d.Q), s.dense_Q() if s.in_sparse_regime() else np.asarray(s.Q))

    @pytest.mark.parametrize("density", [0.02, 0.30])
    def test_mvc_energies_identical(self, density):
        dense, sparse = both_encodings(
            lambda storage: dyadic_mvc_problem(SPARSE_MIN_VARIABLES, density, storage)
        )
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(8, SPARSE_MIN_VARIABLES)).astype(np.float64)
        for d, s in ((dense.objective, sparse.objective), (dense.penalty, sparse.penalty)):
            assert np.array_equal(d.energies(X), s.energies(X))
            assert np.array_equal(d.local_fields(X), s.local_fields(X))
            assert d.energy(X[0]) == s.energy(X[0])

    @pytest.mark.parametrize("density", [0.02, 0.30])
    def test_mvc_relaxed_dict_and_ising_identical(self, density):
        dense, sparse = both_encodings(
            lambda storage: dyadic_mvc_problem(SPARSE_MIN_VARIABLES, density, storage)
        )
        A = 2.5
        d_model, s_model = dense.relax(A), sparse.relax(A)
        assert d_model.fingerprint() == s_model.fingerprint()
        assert d_model.to_dict() == s_model.to_dict()
        d_ising, s_ising = d_model.to_ising(), s_model.to_ising()
        assert np.array_equal(d_ising.h, s_ising.h)
        assert d_ising.offset == s_ising.offset
        s_J = s_ising.J.toarray() if hasattr(s_ising.J, "toarray") else np.asarray(s_ising.J)
        assert np.array_equal(np.asarray(d_ising.h), np.asarray(s_ising.h))
        assert np.array_equal(np.asarray(d_ising.J), s_J)

    def test_tsp_models_identical(self):
        dense, sparse = both_encodings(lambda storage: integer_tsp_problem(6, storage))
        for d, s in ((dense.objective, sparse.objective), (dense.penalty, sparse.penalty)):
            assert d.fingerprint() == s.fingerprint()
            assert d.to_dict() == s.to_dict()
        A = 128.0
        d_model, s_model = dense.relax(A), sparse.relax(A)
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(6, 36)).astype(np.float64)
        assert np.array_equal(d_model.energies(X), s_model.energies(X))
        d_ising, s_ising = d_model.to_ising(), s_model.to_ising()
        s_J = s_ising.J.toarray() if hasattr(s_ising.J, "toarray") else np.asarray(s_ising.J)
        assert np.array_equal(np.asarray(d_ising.h), np.asarray(s_ising.h))
        assert np.array_equal(np.asarray(d_ising.J), s_J)
        assert d_ising.offset == s_ising.offset

    def test_tsp_auto_storage_matches_seed_path_for_small_instances(self):
        # Small instances (below SPARSE_MIN_VARIABLES) auto-densify, keeping
        # the historical dense numerics bit for bit.
        problem = integer_tsp_problem(6, "auto")
        encoding = problem.encode()
        assert encoding.objective.storage == "dense"
        assert encoding.penalty.storage == "dense"


class TestSolveParity:
    @pytest.mark.parametrize("density", MVC_DENSITIES)
    @pytest.mark.parametrize("solver", ["sa?num_sweeps=6", "tabu?num_steps=12"])
    def test_mvc_seeded_solve_byte_identical(self, density, solver):
        results = {}
        for storage in ("dense", "sparse"):
            problem = dyadic_mvc_problem(SPARSE_MIN_VARIABLES, density, storage)
            with SolveService(seed=0) as service:
                results[storage] = service.solve(
                    problem=problem,
                    relaxation_parameter=2.0,
                    solver=solver,
                    num_reads=3,
                    seed=123,
                )
        dense, sparse = results["dense"], results["sparse"]
        assert np.array_equal(dense.samples.assignments, sparse.samples.assignments)
        assert np.array_equal(dense.samples.energies, sparse.samples.energies)

    def test_qbsolv_seeded_solve_byte_identical_across_storage(self):
        # qbsolv branches on the auto-selected operator kind (a function of
        # size/density, not storage), so both storages of an in-regime model
        # follow the same trajectory — required for the storage-invariant
        # fingerprint to be a sound cache/grouping key.
        results = {}
        for storage in ("dense", "sparse"):
            problem = dyadic_mvc_problem(SPARSE_MIN_VARIABLES, 0.02, storage)
            with SolveService(seed=0) as service:
                results[storage] = service.solve(
                    problem=problem,
                    relaxation_parameter=2.0,
                    solver="qbsolv?subproblem_size=32&max_rounds=1",
                    num_reads=1,
                    seed=9,
                )
        assert np.array_equal(
            results["dense"].samples.assignments, results["sparse"].samples.assignments
        )
        assert np.array_equal(
            results["dense"].samples.energies, results["sparse"].samples.energies
        )

    def test_qbsolv_runs_on_sparse_regime_models(self):
        # qbsolv steers through the sparse operator instead of densifying; the
        # returned energies are still re-scored against the exact model.
        problem = dyadic_mvc_problem(SPARSE_MIN_VARIABLES, 0.02, "sparse")
        model = problem.build_qubo(2.0)
        assert model.in_sparse_regime()
        with SolveService(seed=0) as service:
            result = service.solve(
                problem=problem,
                relaxation_parameter=2.0,
                solver="qbsolv?subproblem_size=32&max_rounds=1",
                num_reads=1,
                seed=3,
            )
        assert result.samples.assignments.shape == (1, SPARSE_MIN_VARIABLES)
        assert np.array_equal(
            result.samples.energies, model.energies(result.samples.assignments)
        )

    def test_tsp_seeded_solve_byte_identical(self):
        results = {}
        for storage in ("dense", "sparse"):
            problem = integer_tsp_problem(5, storage)
            with SolveService(seed=0) as service:
                results[storage] = service.solve(
                    problem=problem,
                    relaxation_parameter=256.0,
                    solver="sa?num_sweeps=8",
                    num_reads=4,
                    seed=11,
                )
        dense, sparse = results["dense"], results["sparse"]
        assert np.array_equal(dense.samples.assignments, sparse.samples.assignments)
        assert np.array_equal(dense.samples.energies, sparse.samples.energies)


class TestLazyServiceEncoding:
    def test_model_key_does_not_materialise(self, monkeypatch):
        problem = dyadic_mvc_problem(32, 0.3, "auto")
        calls = []
        original = RelaxedEncoding.relax
        monkeypatch.setattr(
            RelaxedEncoding, "relax", lambda self, A: calls.append(A) or original(self, A)
        )
        request = SolveRequest(problem=problem, relaxation_parameter=2.0, solver="sa")
        key = request.model_key()
        assert calls == []
        assert f"A={float(2.0).hex()}" in key
        assert key == request.model_key()

    def test_model_key_distinguishes_nearby_parameters(self):
        problem = dyadic_mvc_problem(16, 0.4, "auto")
        a = SolveRequest(problem=problem, relaxation_parameter=2.0, solver="sa")
        b = SolveRequest(
            problem=problem, relaxation_parameter=2.0 + 1e-10, solver="sa"
        )
        assert a.model_key() != b.model_key()

    def test_map_requests_materialises_once_per_group(self, monkeypatch):
        problem = dyadic_mvc_problem(24, 0.3, "auto")
        calls = []
        original = RelaxedEncoding.relax
        monkeypatch.setattr(
            RelaxedEncoding, "relax", lambda self, A: calls.append(A) or original(self, A)
        )
        requests = [
            SolveRequest(
                problem=problem,
                relaxation_parameter=2.0,
                solver="sa?num_sweeps=4",
                num_reads=2,
            )
            for _ in range(3)
        ]
        with SolveService(seed=0) as service:
            results = service.map_requests(requests)
        assert len(results) == 3
        assert all(result.batched_group_size == 3 for result in results)
        assert calls == [2.0]

    def test_problem_requests_group_with_model_requests_is_separate(self):
        problem = dyadic_mvc_problem(16, 0.4, "auto")
        model = problem.build_qubo(2.0)
        problem_request = SolveRequest(
            problem=problem, relaxation_parameter=2.0, solver="sa?num_sweeps=4"
        )
        model_request = SolveRequest(model=model, solver="sa?num_sweeps=4")
        # Keys differ in namespace (encoding+A vs model fingerprint) — both are
        # stable identities; solving either yields a valid result.
        assert problem_request.model_key() != model_request.model_key()

    def test_solve_keyword_forms(self):
        problem = dyadic_mvc_problem(16, 0.4, "auto")
        with SolveService(seed=0) as service:
            by_keyword = service.solve(
                problem=problem,
                relaxation_parameter=2.0,
                solver="sa?num_sweeps=4",
                num_reads=2,
                seed=5,
            )
        with SolveService(seed=0) as service:
            positional = service.solve(
                problem,
                relaxation_parameter=2.0,
                solver="sa?num_sweeps=4",
                num_reads=2,
                seed=5,
            )
        assert np.array_equal(
            by_keyword.samples.assignments, positional.samples.assignments
        )
        model = problem.build_qubo(2.0)
        with SolveService(seed=0) as service:
            by_model = service.solve(model=model, solver="sa?num_sweeps=4", seed=5, num_reads=2)
        assert np.array_equal(by_model.samples.assignments, by_keyword.samples.assignments)

    def test_solve_argument_validation(self):
        problem = dyadic_mvc_problem(16, 0.4, "auto")
        with SolveService(seed=0) as service:
            with pytest.raises(ValueError):
                service.solve()
            with pytest.raises(ValueError):
                service.solve(problem, problem=problem, relaxation_parameter=1.0)
            with pytest.raises(ValueError):
                service.solve(model=problem.build_qubo(1.0), relaxation_parameter=1.0)


class _DenseAllocationGuard:
    """Patches numpy allocators to reject any ``>= n*n``-element allocation."""

    def __init__(self, monkeypatch, limit_elements: int) -> None:
        self.limit = limit_elements
        for name in ("zeros", "ones", "empty", "full"):
            original = getattr(np, name)
            monkeypatch.setattr(np, name, self._wrap(name, original))

    def _wrap(self, name, original):
        def guarded(shape, *args, **kwargs):
            size = int(np.prod(np.atleast_1d(np.asarray(shape, dtype=np.int64))))
            if size >= self.limit:
                raise AssertionError(
                    f"np.{name}({shape!r}) allocates {size} elements — the sparse "
                    "encode/solve path must never allocate a dense n x n array"
                )
            return original(shape, *args, **kwargs)

        return guarded


class TestSparseEndToEndAcceptance:
    """ISSUE acceptance: n >= 5000, density <= 0.01, no dense n x n allocation."""

    N = 5000
    NUM_EDGES = 60_000  # graph density ~0.005

    def test_large_sparse_mvc_encodes_and_solves_without_densifying(self, monkeypatch):
        instance = generate_sparse_mvc_instance(self.N, num_edges=self.NUM_EDGES, rng=0)
        problem = MVCProblem(instance)

        # From here on, any dense n x n construction is an error: numpy
        # allocators are guarded and the QUBOModel densification choke point
        # is disabled.
        _DenseAllocationGuard(monkeypatch, limit_elements=self.N * self.N)

        def forbidden_densify(model):
            raise AssertionError("QUBOModel densified on the sparse encode/solve path")

        monkeypatch.setattr(QUBOModel, "_dense", forbidden_densify)

        result = repro.solve(
            problem=problem,
            relaxation_parameter=1.5 * problem.relaxation_scale(),
            solver="sa?num_sweeps=2",
            num_reads=2,
            seed=0,
        )
        assert result.samples.assignments.shape == (2, self.N)
        assert np.all(np.isfinite(result.samples.energies))

        encoding = problem.encode()
        assert encoding.objective.storage == "sparse"
        assert encoding.penalty.storage == "sparse"
        relaxed = encoding.relax(1.5 * problem.relaxation_scale())
        assert relaxed.storage == "sparse"
        assert relaxed.in_sparse_regime()
        assert relaxed.density() <= 0.01

    def test_sparse_instance_generator_stays_sparse(self):
        instance = generate_sparse_mvc_instance(self.N, num_edges=self.NUM_EDGES, rng=1)
        assert instance.is_sparse
        assert instance.num_vertices == self.N
        assert instance.num_edges == self.NUM_EDGES
        edges = instance.edges()
        assert edges.shape == (self.NUM_EDGES, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
