"""Integration tests: full QROSS pipeline end-to-end on tiny instances.

These are slower than unit tests (seconds each) but stay well within CI budget
because every component is configured at its smallest useful size.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # end-to-end pipeline runs, seconds per test

from repro.core.strategies.composed import ComposedStrategyConfig
from repro.core.tuner import QROSSTuner
from repro.experiments.cache import SolverCallCache
from repro.experiments.datasets import build_problems, make_solver, train_surrogate_for_solver
from repro.experiments.figures import figure1_landscape, figure6_mvc_penalty
from repro.experiments.profiles import SMOKE
from repro.experiments.reporting import format_comparison_figure, format_figure1, format_figure6, format_table1
from repro.experiments.runner import (
    baseline_tuner_factories,
    default_bounds,
    qross_tuner_factory,
    run_comparison,
    tune_instance,
)
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.tuning.random_search import RandomSearchTuner

TINY = SMOKE.scaled(
    num_train_instances=6,
    num_test_instances=2,
    min_cities=5,
    max_cities=6,
    tsplib_max_cities=8,
    num_reads=10,
    num_trials=7,
    surrogate_epochs=120,
    da_steps_per_variable=8,
    coarse_multipliers=(0.2, 0.5, 0.8, 1.1, 1.6),
    num_refinement_points=2,
)


class TestLandscapeShapes:
    def test_pf_sigmoid_shape_on_da(self, fast_da_solver):
        """Pf must go from ~0 at tiny A to ~1 at large A (the Fig. 1 sigmoid)."""
        problem = TSPProblem(generate_instance(6, rng=21, name="sigmoid-check"))
        scale = problem.relaxation_scale()
        pf_values = []
        for multiplier in (0.05, 0.5, 1.5, 3.0):
            samples = fast_da_solver.sample(
                problem.build_qubo(multiplier * scale), num_reads=16, rng=0
            )
            pf_values.append(samples.probability_of_feasibility(problem.is_feasible))
        assert pf_values[0] < 0.5
        assert pf_values[-1] > 0.5
        assert pf_values == sorted(pf_values) or pf_values[-1] >= pf_values[0]

    def test_figure1_series_structure(self):
        result = figure1_landscape(TINY, multipliers=(0.3, 0.8, 1.2, 2.0), rng=0)
        assert set(result.series) == {"Digital Annealer", "Simulated Annealing on CPU"}
        for series in result.series.values():
            assert series.parameters.shape == (4,)
            assert np.all((series.probability_of_feasibility >= 0) & (series.probability_of_feasibility <= 1))
        text = format_figure1(result)
        assert "Figure 1" in text


class TestTuningPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        datasets = build_problems(TINY)
        surrogate, solver, dataset = train_surrogate_for_solver(TINY, "da", datasets.train_problems)
        return datasets, surrogate, solver, dataset

    def test_surrogate_dataset_covers_slope_and_plateaus(self, pipeline):
        _, _, _, dataset = pipeline
        summary = dataset.summary()
        assert summary["num_instances"] == TINY.num_train_instances
        assert summary["fraction_on_slope"] > 0.0
        assert summary["fraction_plateau_one"] > 0.0

    def test_tune_instance_with_qross(self, pipeline):
        datasets, surrogate, solver, _ = pipeline
        problem = datasets.test_problems[0]
        bounds = default_bounds(problem)
        tuner = QROSSTuner(
            surrogate, problem, bounds, config=ComposedStrategyConfig(batch_size=TINY.num_reads), rng=0
        )
        history = tune_instance(
            problem, solver, tuner, num_trials=TINY.num_trials, num_reads=TINY.num_reads, rng=0
        )
        assert len(history) == TINY.num_trials
        # QROSS finds a feasible tour within the budget: either an offline
        # proposal lands on the slope or the online strategy's bound search
        # escalates the parameter until it does.
        assert history.best_fitness() is not None

    def test_comparison_includes_all_methods_and_instances(self, pipeline):
        datasets, surrogate, solver, _ = pipeline
        factories = {
            "QROSS": qross_tuner_factory(surrogate, ComposedStrategyConfig(batch_size=TINY.num_reads)),
            **baseline_tuner_factories(),
        }
        cache = SolverCallCache()
        result = run_comparison(
            datasets.test_problems,
            solver,
            factories,
            num_trials=TINY.num_trials,
            num_reads=TINY.num_reads,
            rng=0,
            cache=cache,
        )
        assert sorted(result.methods) == sorted(["QROSS", "TPE", "BO", "Random"])
        assert len(result.runs) == len(datasets.test_problems) * 4
        summaries = result.summaries()
        for summary in summaries.values():
            assert np.all(np.diff(summary.mean) <= 1e-12)  # running best never worsens
        # QROSS must find feasible solutions by the end of the budget.
        assert summaries["QROSS"].mean[-1] < 1.0

    def test_comparison_is_reproducible(self, pipeline):
        datasets, surrogate, solver, _ = pipeline
        factories = {"QROSS": qross_tuner_factory(surrogate, ComposedStrategyConfig(batch_size=TINY.num_reads))}
        first = run_comparison(
            datasets.test_problems, solver, factories, num_trials=3, num_reads=TINY.num_reads, rng=11
        )
        second = run_comparison(
            datasets.test_problems, solver, factories, num_trials=3, num_reads=TINY.num_reads, rng=11
        )
        np.testing.assert_allclose(first.summary("QROSS").mean, second.summary("QROSS").mean)

    def test_report_renders(self, pipeline):
        datasets, surrogate, solver, _ = pipeline
        factories = {"QROSS": qross_tuner_factory(surrogate), "Random": baseline_tuner_factories()["Random"]}
        result = run_comparison(
            datasets.test_problems, solver, factories, num_trials=3, num_reads=TINY.num_reads, rng=0
        )
        from repro.experiments.figures import ComparisonFigure

        text = format_comparison_figure(
            ComparisonFigure(title="t", solver_backend="da", dataset_name="synthetic", result=result),
            checkpoints=(1, 3),
        )
        assert "QROSS" in text and "Random" in text


class TestRandomBaselineOnly:
    def test_random_tuner_eventually_feasible(self):
        problem = TSPProblem(generate_instance(6, rng=33, name="random-check"))
        solver = DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=10))
        bounds = default_bounds(problem)
        history = tune_instance(
            problem, solver, RandomSearchTuner(bounds, rng=0), num_trials=8, num_reads=12, rng=0
        )
        assert history.best_fitness() is not None


class TestMVCFigure:
    def test_figure6_shows_degradation_with_large_penalty(self):
        result = figure6_mvc_penalty(
            TINY.scaled(num_reads=8, sa_num_sweeps=30),
            penalty_weights=(2.0, 20.0, 200.0, 2000.0),
            num_vertices=20,
            num_runs=2,
            rng=0,
        )
        assert set(result.normalized_energy) == {"sa", "qa"}
        for values in result.normalized_energy.values():
            assert values.shape == (4,)
            assert np.all(values >= 1.0 - 1e-9)
        # The noisy QA solver should degrade at the largest penalty weight
        # relative to its own best operating point.
        qa = result.normalized_energy["qa"]
        assert qa[-1] >= qa.min()
        text = format_figure6(result)
        assert "penalty weight" in text
