"""Tests for the algorithm-portfolio subsystem (repro.portfolio).

Covers the member/spec plumbing, the outcome log, the scheduling strategies
on synthetic outcomes (UCB picks the dominant arm, the sequence exhausts its
schedule, the modeling strategy replans away from a bad first action), the
``portfolio`` registry backend end to end, and the composite-spec grammar
round-trips the registry satellite added.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.portfolio import (
    FixedStrategy,
    ModelingStrategy,
    OutcomeLog,
    OutcomeRecord,
    PortfolioConfig,
    PortfolioModel,
    PortfolioSolver,
    SequenceStrategy,
    SliceOutcome,
    budget_field,
    harvest_outcomes,
    join_member_list,
    slice_solver,
    split_member_list,
    time_to_target,
)
from repro.problems.mvc import MVCProblem, generate_sparse_mvc_instance
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import random_qubo
from repro.qubo.sampleset import SampleSet
from repro.service import SolverRegistry, make_solver
from repro.service.registry import SpecSerializationError, parse_spec, parse_value

MEMBERS = "sa?num_sweeps=8,tabu?num_steps=40"
LIGHT_SPEC = (
    "portfolio?members=sa%3Fnum_sweeps%3D8,tabu%3Fnum_steps%3D40"
    "&strategy=ucb&sweep_budget=24&round_sweeps=8"
)


@pytest.fixture(scope="module")
def model():
    return random_qubo(12, rng=5)


def mvc_pool(count, n=24, density=0.12, seed0=0):
    return [
        MVCProblem(
            generate_sparse_mvc_instance(
                n, edge_density=density, rng=np.random.default_rng(seed), name=f"pool-{seed}"
            )
        )
        for seed in range(seed0, seed0 + count)
    ]


# ------------------------------------------------------------------- members
class TestMembers:
    def test_split_accepts_string_and_sequence(self):
        assert split_member_list("sa, tabu") == ("sa", "tabu")
        assert split_member_list(["sa", "tabu?num_steps=9"]) == ("sa", "tabu?num_steps=9")
        assert join_member_list(" sa ,tabu ") == "sa,tabu"

    def test_split_rejects_empty_and_nested_portfolios(self):
        with pytest.raises(ValueError, match="at least one member"):
            split_member_list(" , ")
        with pytest.raises(ValueError, match="do not nest"):
            split_member_list("sa,portfolio?members=tabu")
        with pytest.raises(ValueError, match="do not nest"):
            split_member_list(["algorithm-portfolio"])

    def test_budget_field_probes_config(self):
        assert budget_field(make_solver("sa")) == "num_sweeps"
        assert budget_field(make_solver("tabu")) == "num_steps"
        assert budget_field(make_solver("da")) == "num_steps"
        with pytest.raises(ValueError, match="budget knob"):
            budget_field(make_solver("random"))

    def test_slice_solver_sets_budget_and_trajectory(self):
        sliced = slice_solver(make_solver("sa?num_sweeps=500"), 7)
        assert sliced.config.num_sweeps == 7
        assert sliced.config.track_trajectory is True
        with pytest.raises(ValueError, match="positive"):
            slice_solver(make_solver("sa"), 0)


# -------------------------------------------------------------- spec grammar
class TestCompositeSpecGrammar:
    def test_parse_value_unquotes_percent_escapes(self):
        assert parse_value("sa%3Fnum_sweeps%3D8") == "sa?num_sweeps=8"
        assert parse_value("plain") == "plain"
        assert parse_value("8") == 8

    def test_parse_spec_carries_member_list(self):
        name, options = parse_spec(LIGHT_SPEC)
        assert name == "portfolio"
        assert options["members"] == MEMBERS
        assert options["sweep_budget"] == 24

    def test_spec_for_roundtrip_with_nested_member_specs(self):
        registry = SolverRegistry.default()
        solver = make_solver(LIGHT_SPEC)
        spec = registry.spec_for(solver)
        rebuilt = make_solver(spec)
        assert rebuilt.config == solver.config
        assert rebuilt.config_fingerprint() == solver.config_fingerprint()

    @pytest.mark.parametrize(
        "members",
        [
            "sa,tabu",
            "sa?num_sweeps=16,pt?num_replicas=4&swap_interval=2",
            "da?num_steps=60&max_parallel_flips=2,tabu",
            "qbsolv?max_rounds=2&subsolver_config.num_steps=30,sa",
        ],
    )
    def test_roundtrip_property_over_member_lists(self, members):
        registry = SolverRegistry.default()
        solver = PortfolioSolver(PortfolioConfig(members=members, sweep_budget=50))
        spec = registry.spec_for(solver)
        rebuilt = registry.from_spec(spec)
        assert rebuilt.config == solver.config
        assert rebuilt.config_fingerprint() == solver.config_fingerprint()
        # ... and each member spec individually survives the escape layer.
        for member in split_member_list(members):
            inner = make_solver(member)
            assert make_solver(member).config == inner.config

    def test_plain_solver_specs_are_untouched_by_the_escape_layer(self):
        registry = SolverRegistry.default()
        solver = make_solver("tabu?num_steps=123&tenure=9")
        assert "%" not in registry.spec_for(solver)

    def test_unrepresentable_string_still_raises(self):
        from repro.service.registry import _format_option_value

        # "true" parses back as a bool whichever way it is written.
        with pytest.raises(SpecSerializationError):
            _format_option_value("members", "true")


# -------------------------------------------------------------- outcome log
def _record(instance="i0", spec="sa", best=-1.0, ttt=None, features=(1.0, 2.0), **kw):
    return OutcomeRecord(
        instance=instance,
        features=tuple(features),
        solver_spec=spec,
        budget=100.0,
        best_energy=best,
        time_to_target=ttt,
        **kw,
    )


class TestOutcomeLog:
    def test_record_json_roundtrip(self):
        record = _record(seed=7, relaxation_parameter=2.5, kind="harvest")
        again = OutcomeRecord.from_json(record.to_json())
        assert again == record

    def test_from_json_tolerates_unknown_fields(self):
        line = _record().to_json()[:-1] + ',"future_field":42}'
        assert OutcomeRecord.from_json(line) == _record()

    def test_append_persists_and_reloads(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = OutcomeLog(path)
        log.append(_record(instance="a"))
        log.append(_record(instance="b", spec="tabu"))
        reloaded = OutcomeLog.load(path)
        assert len(reloaded) == 2
        assert reloaded.records == log.records
        assert reloaded.instances() == ("a", "b")

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = OutcomeLog(path)

        def writer(tag):
            for i in range(25):
                log.append(_record(instance=f"{tag}-{i}"))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reloaded = OutcomeLog.load(path)
        assert len(reloaded) == 200  # every line parsed — no torn writes

    def test_merge_and_for_specs(self):
        a = OutcomeLog()
        a.append(_record(instance="x", spec="sa"))
        b = OutcomeLog()
        b.append(_record(instance="y", spec="tabu"))
        merged = OutcomeLog.merge(a, b)
        assert len(merged) == 2
        assert [r.solver_spec for r in merged.for_specs(["tabu"])] == ["tabu"]

    def test_train_test_split_groups_by_instance(self):
        log = OutcomeLog()
        for name in ("a", "b", "c", "d"):
            for spec in ("sa", "tabu"):
                log.append(_record(instance=name, spec=spec))
        train, test = log.train_test_split(test_fraction=0.25, seed=3)
        assert len(train) + len(test) == 8
        assert not set(train.instances()) & set(test.instances())
        assert all(len(l) % 2 == 0 for l in (train, test))  # pairs stay together
        again = log.train_test_split(test_fraction=0.25, seed=3)
        assert again[1].instances() == test.instances()

    def test_malformed_line_is_a_loud_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(_record().to_json() + "\n{not json\n")
        with pytest.raises(ValueError, match="malformed outcome record"):
            OutcomeLog.load(path)


class TestTimeToTarget:
    def _samples(self, energies, info=None):
        n = len(energies)
        return SampleSet(
            np.zeros((n, 3), dtype=np.int8), np.asarray(energies, float), info=info or {}
        )

    def test_miss_is_none(self):
        assert time_to_target(self._samples([5.0]), target=0.0, budget=30) is None

    def test_hit_without_trajectory_charges_full_budget(self):
        assert time_to_target(self._samples([-1.0]), target=0.0, budget=30) == 30.0

    def test_trajectory_refines_the_crossing_point(self):
        samples = self._samples(
            [-2.0], info={"best_energy_trajectory": [5.0, 1.0, -1.0, -2.0]}
        )
        assert time_to_target(samples, target=-1.0, budget=30) == 3.0


class TestHarvestOutcomes:
    def test_harvest_on_a_small_pool(self):
        problems = mvc_pool(3)
        log = harvest_outcomes(problems, MEMBERS, budget=16, num_reads=2, seed=4)
        assert len(log) == 6
        by_instance = {}
        for record in log:
            assert record.kind == "harvest"
            assert len(record.features) == 8
            assert record.budget == 16.0
            by_instance.setdefault(record.instance, []).append(record)
        for records in by_instance.values():
            # The self-relative target means at least the per-instance winner
            # registers a finite time-to-target.
            assert any(r.time_to_target is not None for r in records)

    def test_harvest_is_seed_deterministic(self):
        from dataclasses import replace

        problems = mvc_pool(2)
        a = harvest_outcomes(problems, MEMBERS, budget=12, seed=9)
        b = harvest_outcomes(problems, MEMBERS, budget=12, seed=9)
        # Wall-clock time is the one legitimately nondeterministic field.
        mask = lambda log: [replace(r, wall_time_s=None) for r in log]
        assert mask(a) == mask(b)


# --------------------------------------------------------------- strategies
def drive(strategy, members, budget, energy_fn, width_hint=None):
    """Run a strategy loop against a synthetic per-member energy process.

    ``energy_fn(spec, count)`` is the best energy the ``count``-th slice of
    ``spec`` reaches.  Returns (allocated-budget per member, action log).
    """
    strategy.begin(tuple(members), float(budget))
    rng = np.random.default_rng(0)
    allocated = {m: 0.0 for m in members}
    calls = {m: 0 for m in members}
    actions_log = []
    incumbent = float("inf")
    spent = 0.0
    round_index = 0
    while spent < budget:
        actions = strategy.allocate(budget - spent, rng)
        if not actions:
            break
        actions_log.append([spec for spec, _ in actions])
        outcomes = []
        for spec, slice_budget in actions:
            slice_budget = min(slice_budget, budget - spent)
            spent += slice_budget
            allocated[spec] += slice_budget
            energy = energy_fn(spec, calls[spec])
            calls[spec] += 1
            improved = energy < incumbent
            incumbent = min(incumbent, energy)
            outcomes.append(
                SliceOutcome(
                    spec=spec,
                    budget=slice_budget,
                    best_energy=energy,
                    improved=improved,
                    round_index=round_index,
                    cumulative_budget=spent,
                )
            )
        strategy.observe_round(outcomes)
        round_index += 1
    return allocated, actions_log


class TestFixedStrategy:
    def test_whole_budget_in_one_slice(self):
        strategy = FixedStrategy()
        strategy.begin(("a", "b"), 100.0)
        rng = np.random.default_rng(0)
        assert strategy.allocate(100.0, rng) == [("a", 100.0)]
        assert strategy.allocate(0.0, rng) == []

    def test_explicit_spec_must_be_a_member(self):
        strategy = FixedStrategy("c")
        with pytest.raises(ValueError, match="not a member"):
            strategy.begin(("a", "b"), 10.0)


class TestSequenceStrategy:
    def test_exhausts_its_schedule_then_stops(self):
        schedule = [("a", 5.0), ("b", 7.0), ("a", 3.0)]
        strategy = SequenceStrategy(schedule)
        strategy.begin(("a", "b"), 15.0)
        rng = np.random.default_rng(0)
        seen = []
        remaining = 15.0
        while True:
            actions = strategy.allocate(remaining, rng)
            if not actions:
                break
            seen.extend(actions)
            remaining -= sum(b for _, b in actions)
        assert seen == schedule
        assert strategy.allocate(remaining, rng) == []

    def test_default_schedule_splits_evenly(self):
        strategy = SequenceStrategy()
        allocated, _ = drive(strategy, ("a", "b"), 20.0, lambda s, k: 0.0)
        assert allocated == {"a": 10.0, "b": 10.0}

    def test_rejects_non_member_schedule(self):
        strategy = SequenceStrategy([("z", 5.0)])
        with pytest.raises(ValueError, match="not a member"):
            strategy.begin(("a", "b"), 10.0)


class TestModelingStrategy:
    def test_ucb_picks_the_dominant_arm(self):
        # "good" keeps improving, "bad" is flat at 0: after the probe round
        # UCB should route the clear majority of the budget to "good".
        strategy = ModelingStrategy(mode="ucb", round_budget=10.0, width=1)
        allocated, _ = drive(
            strategy,
            ("good", "bad"),
            200.0,
            lambda spec, k: -float(k + 1) if spec == "good" else 0.0,
        )
        assert allocated["good"] > 2 * allocated["bad"]

    def test_epsilon_greedy_also_finds_the_dominant_arm(self):
        strategy = ModelingStrategy(mode="epsilon", round_budget=10.0, width=1, epsilon=0.1)
        allocated, _ = drive(
            strategy,
            ("good", "bad"),
            200.0,
            lambda spec, k: -float(k + 1) if spec == "good" else 0.0,
        )
        assert allocated["good"] > allocated["bad"]

    def test_replanning_reacts_to_a_bad_first_action(self):
        # The model's prior (fit from history) strongly favours "was-good",
        # so round 0 exploits it — but at solve time it has gone bad while
        # "underdog" delivers.  The bandit must shift budget mid-run.
        log = OutcomeLog()
        for i in range(4):
            features = (float(i), 1.0)
            log.append(
                _record(
                    instance=f"h{i}", spec="was-good", best=-10.0, ttt=20.0,
                    features=features, target_energy=-10.0,
                )
            )
            log.append(
                _record(
                    instance=f"h{i}", spec="underdog", best=0.0, ttt=None,
                    features=features, target_energy=-10.0,
                )
            )
        model = PortfolioModel(knn=3).fit(log, ("was-good", "underdog"))
        strategy = ModelingStrategy(mode="ucb", model=model, round_budget=10.0, width=1)
        strategy.begin(("was-good", "underdog"), 200.0, features=(1.0, 1.0))

        rng = np.random.default_rng(0)
        first = strategy.allocate(200.0, rng)
        assert [spec for spec, _ in first] == ["was-good"]  # confident exploit

        allocated, actions_log = drive(
            strategy,
            ("was-good", "underdog"),
            200.0,
            lambda spec, k: -float(k + 1) if spec == "underdog" else 0.0,
        )
        # drive() re-begins the strategy, so round 0 is the confident exploit
        # of "was-good" again; the later rounds must swing to the underdog.
        assert actions_log[0] == ["was-good"]
        late = [specs for specs in actions_log[2:]]
        underdog_rounds = sum(1 for specs in late if specs == ["underdog"])
        assert underdog_rounds > len(late) / 2
        assert allocated["underdog"] > 0

    def test_hopeless_member_is_cancelled(self):
        strategy = ModelingStrategy(
            mode="ucb", round_budget=10.0, width=2, cancel_margin=0.1,
            min_observations=2, exploration=0.05,
        )
        drive(
            strategy,
            ("good", "bad"),
            400.0,
            lambda spec, k: -float(k + 1) if spec == "good" else 0.0,
        )
        assert "bad" in strategy.cancelled

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="ucb"):
            ModelingStrategy(mode="thompson")


class TestPortfolioModel:
    def test_feature_conditioned_priors(self):
        log = OutcomeLog()
        for i in range(5):  # cluster A at feature ~0: "sa" wins
            log.append(_record(instance=f"a{i}", spec="sa", best=-5.0, ttt=10.0,
                               features=(0.0 + i * 0.01, 0.0), target_energy=-5.0))
            log.append(_record(instance=f"a{i}", spec="tabu", best=0.0, ttt=None,
                               features=(0.0 + i * 0.01, 0.0), target_energy=-5.0))
        for i in range(5):  # cluster B at feature ~10: "tabu" wins
            log.append(_record(instance=f"b{i}", spec="tabu", best=-5.0, ttt=10.0,
                               features=(10.0 + i * 0.01, 0.0), target_energy=-5.0))
            log.append(_record(instance=f"b{i}", spec="sa", best=0.0, ttt=None,
                               features=(10.0 + i * 0.01, 0.0), target_energy=-5.0))
        model = PortfolioModel(knn=3).fit(log, ("sa", "tabu"))
        assert model.fitted
        near_a = model.predict((0.0, 0.0))
        near_b = model.predict((10.0, 0.0))
        assert near_a["sa"][0] > near_a["tabu"][0]
        assert near_b["tabu"][0] > near_b["sa"][0]
        assert near_a["sa"][1] == 10.0  # expected cost from successful runs

    def test_unfitted_model_is_neutral(self):
        model = PortfolioModel()
        assert model.predict((1.0,)) == {}
        model.members = ("sa",)
        assert model.predict((1.0,)) == {"sa": (0.5, None)}


# ---------------------------------------------------------- portfolio solver
class TestPortfolioSolver:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="strategy"):
            PortfolioConfig(strategy="greedy")
        with pytest.raises(ValueError, match="sweep_budget"):
            PortfolioConfig(sweep_budget=0)
        with pytest.raises(ValueError, match="do not nest"):
            PortfolioConfig(members="portfolio")

    def test_registered_backend(self):
        registry = SolverRegistry.default()
        assert "portfolio" in registry.names()
        assert isinstance(make_solver("algorithm-portfolio"), PortfolioSolver)

    def test_budgetless_member_fails_fast(self, model):
        solver = PortfolioSolver(PortfolioConfig(members="random,sa", sweep_budget=10))
        with pytest.raises(ValueError, match="budget knob"):
            solver.sample(model, 2, rng=np.random.default_rng(0))

    def test_seeded_solve_is_deterministic(self, model):
        solver = make_solver(LIGHT_SPEC)
        first = solver.sample(model, 4, rng=np.random.default_rng(11))
        again = solver.sample(model, 4, rng=np.random.default_rng(11))
        assert np.array_equal(first.assignments, again.assignments)
        assert np.array_equal(first.energies, again.energies)

    def test_budget_accounting_and_info(self, model):
        solver = make_solver(LIGHT_SPEC + "&track_trajectory=true")
        samples = solver.sample(model, 4, rng=np.random.default_rng(1))
        info = samples.info
        assert info["portfolio_budget_spent"] <= info["portfolio_budget"] == 24.0
        assert sum(info["portfolio_member_budget"].values()) == info["portfolio_budget_spent"]
        assert info["portfolio_slices"] >= len(info["portfolio_members"])
        assert info["portfolio_best_energy"] == pytest.approx(float(samples.energies.min()))
        trajectory = info["portfolio_trajectory"]
        budgets = [b for b, _ in trajectory]
        energies = [e for _, e in trajectory]
        assert budgets == sorted(budgets)
        assert energies == sorted(energies, reverse=True)
        assert budgets[-1] <= info["portfolio_budget_spent"]

    def test_num_reads_contract_with_small_member_reads(self, model):
        solver = make_solver(LIGHT_SPEC + "&member_reads=1")
        samples = solver.sample(model, 6, rng=np.random.default_rng(2))
        assert samples.num_samples == 6

    @pytest.mark.parametrize("strategy", ["fixed", "sequence", "epsilon"])
    def test_every_strategy_solves_and_is_deterministic(self, model, strategy):
        spec = (
            "portfolio?members=sa%3Fnum_sweeps%3D8,tabu%3Fnum_steps%3D40"
            f"&strategy={strategy}&sweep_budget=24&round_sweeps=8"
        )
        solver = make_solver(spec)
        first = solver.sample(model, 2, rng=np.random.default_rng(3))
        again = solver.sample(model, 2, rng=np.random.default_rng(3))
        assert np.array_equal(first.assignments, again.assignments)

    def test_outcome_log_feeds_the_model(self, model, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        harvest_outcomes(
            mvc_pool(2), MEMBERS, budget=12, seed=1, log=OutcomeLog(path)
        )
        spec = LIGHT_SPEC + f"&outcome_log={path}"
        solver = make_solver(spec)
        samples = solver.sample(model, 2, rng=np.random.default_rng(5))
        assert samples.num_samples == 2
        assert solver._portfolio_model().fitted


# ------------------------------------------------------- runner integration
class TestRunnerIntegration:
    def _problems(self):
        return [
            TSPProblem(generate_instance(5, rng=seed, name=f"pf-tsp{seed}"))
            for seed in (0, 1)
        ]

    def test_run_comparison_accepts_portfolio_spec_and_emits_log(self):
        from repro.experiments.runner import baseline_tuner_factories, run_comparison

        log = OutcomeLog()
        result = run_comparison(
            self._problems(),
            LIGHT_SPEC,
            {"Random": baseline_tuner_factories()["Random"]},
            num_trials=2,
            num_reads=4,
            rng=7,
            outcome_log=log,
        )
        assert len(result.runs) == 2
        assert len(log) == 4  # 2 instances × 1 method × 2 trials
        for record in log:
            assert record.kind == "tuning_trial"
            assert record.solver_spec.startswith("portfolio?")
            assert record.budget == 24.0
            assert len(record.features) == 8

    def test_solver_none_resolves_environment_default(self, monkeypatch):
        from repro.experiments.runner import (
            COMPARISON_SOLVER_ENV,
            baseline_tuner_factories,
            default_comparison_solver,
            run_comparison,
        )

        monkeypatch.delenv(COMPARISON_SOLVER_ENV, raising=False)
        assert default_comparison_solver() == "da"
        monkeypatch.setenv(COMPARISON_SOLVER_ENV, "sa?num_sweeps=8")
        assert default_comparison_solver() == "sa?num_sweeps=8"
        result = run_comparison(
            self._problems()[:1],
            None,
            {"Random": baseline_tuner_factories()["Random"]},
            num_trials=2,
            num_reads=4,
            rng=3,
        )
        assert len(result.runs) == 1

    def test_solver_none_runs_under_the_ambient_default(self):
        # Deliberately no env manipulation: locally this resolves to "da",
        # while CI's portfolio-canary leg sets QROSS_COMPARISON_SOLVER to a
        # composite portfolio spec — this test is what makes that leg
        # actually route a comparison through the configured default.
        from repro.experiments.runner import baseline_tuner_factories, run_comparison

        result = run_comparison(
            self._problems()[:1],
            None,
            {"Random": baseline_tuner_factories()["Random"]},
            num_trials=2,
            num_reads=4,
            rng=5,
        )
        assert len(result.runs) == 1
        assert result.runs[0].history.best_fitness() is not None

    def test_profile_builds_portfolio_config(self):
        from repro.experiments.datasets import make_solver as profile_solver
        from repro.experiments.profiles import SMOKE

        solver = profile_solver(SMOKE, "portfolio")
        assert isinstance(solver, PortfolioSolver)
        assert solver.config.sweep_budget == SMOKE.portfolio_sweep_budget
