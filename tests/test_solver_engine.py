"""Unit tests for the shared annealing engine and the Q operator backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compute import resolve_array_backend
from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_VARIABLES,
    DenseOperator,
    QUBOModel,
    SparseOperator,
    random_qubo,
)
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.engine import AnnealingState, default_block_size, metropolis_accept
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


class TestOperatorSelection:
    def test_small_models_stay_dense(self):
        model = random_qubo(16, density=0.05, rng=0)
        assert model.operator().kind == "dense"

    def test_large_sparse_models_get_csr(self):
        model = random_qubo(SPARSE_MIN_VARIABLES, density=0.05, rng=0)
        assert model.operator().kind == "sparse"

    def test_large_dense_models_stay_dense(self):
        model = random_qubo(SPARSE_MIN_VARIABLES, density=1.0, rng=0)
        assert model.density() > SPARSE_DENSITY_THRESHOLD
        assert model.operator().kind == "dense"

    def test_explicit_backend_override_and_cache(self):
        model = random_qubo(12, rng=0)
        sparse = model.operator("sparse")
        assert isinstance(sparse, SparseOperator)
        assert model.operator("sparse") is sparse
        assert isinstance(model.operator("dense"), DenseOperator)
        with pytest.raises(ValueError):
            model.operator("gpu")

    def test_sparse_and_dense_agree(self):
        model = random_qubo(40, density=0.15, rng=5)
        dense = model.operator("dense")
        sparse = model.operator("sparse")
        X = np.random.default_rng(0).integers(0, 2, size=(6, 40)).astype(np.float64)
        np.testing.assert_allclose(
            sparse.right_multiply(X), dense.right_multiply(X), rtol=1e-5, atol=1e-5
        )
        idx = np.array([3, 17, 3, 39])
        np.testing.assert_allclose(sparse.rows(idx), dense.rows(idx), rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(sparse.diag, dense.diag, rtol=1e-6)
        block = np.array([1, 8, 21])
        dX = np.random.default_rng(1).normal(size=(6, 3))
        np.testing.assert_allclose(
            sparse.block_product(dX, block), dense.block_product(dX, block), rtol=1e-5, atol=1e-5
        )


def _state_tols() -> dict:
    """Exactness tolerances for engine-state invariants under the ambient
    engine dtype: float64 states track the model to round-off; under the
    ``QROSS_ENGINE_DTYPE=float32`` CI canary the same invariants hold at
    single precision."""
    if resolve_array_backend().dtype_name == "float32":
        return {"rtol": 1e-4, "atol": 1e-3}
    return {"rtol": 1e-9, "atol": 1e-9}


class TestAnnealingState:
    def test_initial_energies_match_model(self):
        model = random_qubo(20, rng=1)
        state = AnnealingState(model, 5, rng=np.random.default_rng(0))
        np.testing.assert_allclose(
            state.current_energies, model.energies(state.X), **_state_tols()
        )

    def test_flip_deltas_match_local_fields(self):
        model = random_qubo(15, rng=2)
        state = AnnealingState(model, 4, rng=np.random.default_rng(3))
        np.testing.assert_allclose(
            state.flip_deltas(), model.local_fields(state.X), **_state_tols()
        )
        cols = np.array([0, 7, 14])
        np.testing.assert_allclose(
            state.flip_deltas(cols), model.local_fields(state.X)[:, cols], **_state_tols()
        )

    def test_single_flips_keep_state_exact(self):
        model = random_qubo(12, rng=4)
        rng = np.random.default_rng(9)
        state = AnnealingState(model, 3, rng=rng)
        for _ in range(50):
            cols = rng.integers(0, 12, size=3)
            rows = np.arange(3)
            delta = state.flip_deltas()[rows, cols]
            state.apply_single_flips(rows, cols, delta)
        np.testing.assert_allclose(state.H, state.X @ np.asarray(model.Q), **_state_tols())
        np.testing.assert_allclose(
            state.current_energies, model.energies(state.X), **_state_tols()
        )

    def test_block_flips_keep_fields_exact(self):
        model = random_qubo(18, rng=6)
        rng = np.random.default_rng(2)
        state = AnnealingState(model, 4, rng=rng)
        block = np.array([2, 5, 11, 16])
        accept = rng.random((4, 4)) < 0.5
        state.apply_block_flips(block, accept)
        state.refresh_energies()
        np.testing.assert_allclose(state.H, state.X @ np.asarray(model.Q), **_state_tols())
        np.testing.assert_allclose(
            state.current_energies, model.energies(state.X), **_state_tols()
        )

    def test_sparse_backend_matches_dense_trajectory(self):
        model = random_qubo(30, density=0.2, rng=8)
        x0 = np.random.default_rng(1).integers(0, 2, size=(2, 30)).astype(np.float64)
        dense = AnnealingState(model, 2, initial_states=x0, operator=model.operator("dense"))
        sparse = AnnealingState(model, 2, initial_states=x0, operator=model.operator("sparse"))
        np.testing.assert_allclose(sparse.current_energies, dense.current_energies, rtol=1e-5)
        np.testing.assert_allclose(sparse.flip_deltas(), dense.flip_deltas(), rtol=1e-4, atol=1e-4)

    def test_reset_replicas_restores_consistency(self):
        model = random_qubo(10, rng=3)
        state = AnnealingState(model, 4, rng=np.random.default_rng(0))
        mask = np.array([True, False, True, False])
        new_states = np.random.default_rng(5).integers(0, 2, size=(2, 10)).astype(np.float64)
        state.reset_replicas(mask, new_states)
        np.testing.assert_allclose(
            state.current_energies, model.energies(state.X), **_state_tols()
        )

    def test_update_best_tracks_minimum(self):
        model = QUBOModel(np.diag([-1.0, 2.0]))
        state = AnnealingState(model, 1, initial_states=np.array([[0.0, 0.0]]))
        assert state.best_energies[0] == pytest.approx(0.0)
        delta = state.flip_deltas()[np.array([0]), np.array([0])]
        state.apply_single_flips(np.array([0]), np.array([0]), delta)
        assert state.update_best()[0]
        assert state.best_energies[0] == pytest.approx(-1.0)
        # Flip variable 1 (uphill): best must stay at -1.
        delta = state.flip_deltas()[np.array([0]), np.array([1])]
        state.apply_single_flips(np.array([0]), np.array([1]), delta)
        assert not state.update_best()[0]
        assert state.best_energies[0] == pytest.approx(-1.0)
        np.testing.assert_array_equal(state.best_X[0], [1.0, 0.0])

    def test_initial_states_validated(self):
        model = random_qubo(5, rng=0)
        with pytest.raises(ValueError):
            AnnealingState(model, 2, initial_states=np.zeros((3, 5)))


class TestMetropolisAccept:
    def test_downhill_always_accepted(self):
        delta = np.array([-1.0, 0.0, 2.0])
        accept = metropolis_accept(delta, 0.0, np.zeros(3))
        np.testing.assert_array_equal(accept, [True, True, False])

    def test_uphill_accepted_by_boltzmann(self):
        delta = np.array([1.0])
        p = np.exp(-1.0 / 2.0)
        assert metropolis_accept(delta, 2.0, np.array([p * 0.99]))[0]
        assert not metropolis_accept(delta, 2.0, np.array([p * 1.01]))[0]

    def test_default_block_size_bounds(self):
        assert default_block_size(4) == 1
        assert default_block_size(256) == 32
        assert default_block_size(10_000) == 64


class TestSeedParity:
    """The engine-based solvers must match or beat the pre-refactor (serial)
    implementations' best energies on small instances with the same seeds.

    The reference numbers were recorded by running the seed implementations
    (commit 1137920) with ``num_reads=8, rng=42`` and the configs below; all
    three seed solvers reached the same best energy on each instance.
    """

    SEED_BEST = {
        "tsp6": 242.61617134676135,
        "mvc12": 3.234025120468292,
        "rand30": -111.50412331446037,
        "sparse60": -45.45162045683809,
    }

    @staticmethod
    def _models():
        tsp = TSPProblem(generate_instance(6, rng=7, name="parity-tsp6"))
        mvc = MVCProblem(
            generate_mvc_instance(RandomMVCConfig(num_vertices=12, edge_probability=0.3), rng=11)
        )
        return {
            "tsp6": tsp.build_qubo(tsp.relaxation_scale()),
            "mvc12": mvc.build_qubo(mvc.relaxation_scale()),
            "rand30": random_qubo(30, rng=7),
            "sparse60": random_qubo(60, density=0.1, rng=21),
        }

    @pytest.mark.parametrize(
        "make_solver",
        [
            lambda: SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=100)),
            lambda: DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=20)),
            lambda: TabuSearchSolver(TabuSearchConfig(num_steps=300)),
        ],
        ids=["sa", "da", "tabu"],
    )
    def test_matches_or_beats_seed_best_energy(self, make_solver):
        solver = make_solver()
        for key, model in self._models().items():
            best = solver.sample(model, num_reads=8, rng=42).best.energy
            assert best <= self.SEED_BEST[key] + 1e-9, (
                f"{solver.name} on {key}: {best} worse than seed {self.SEED_BEST[key]}"
            )
