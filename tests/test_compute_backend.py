"""Unit tests for the ``repro.compute`` array-backend layer.

Four concerns:

* the backend registry / resolution precedence (config > env knobs > numpy
  reference) and the lazy unavailable-backend contract;
* the numpy reference backend's no-copy byte-identity guarantees;
* the backend-resident operators (dense + CSR gather parity against the host
  operators, in both engine dtypes);
* a lint-style AST test pinning the engine kernel sections free of bare
  ``np.`` calls — the single-kernel-source property the compute layer exists
  to provide.
"""

from __future__ import annotations

import ast
import inspect

import numpy as np
import pytest

import repro.solvers.engine as engine_module
from repro.compute import (
    BACKEND_ENV,
    DTYPE_ENV,
    ArrayBackend,
    ArrayBackendUnavailable,
    NumpyArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
    resolve_array_backend,
    validate_engine_dtype,
)
from repro.compute.operators import BackendDenseOperator, BackendSparseOperator
from repro.qubo.model import QUBOModel, random_qubo
from repro.solvers.engine import AnnealingState


class TestRegistryAndResolution:
    def test_builtin_backends_are_registered(self):
        names = registered_array_backends()
        assert {"numpy", "torch", "cupy"} <= set(names)

    def test_numpy_is_always_available(self):
        assert "numpy" in available_array_backends()

    def test_get_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_array_backend("not-a-backend")

    def test_instances_are_cached_per_dtype(self):
        assert get_array_backend("numpy", "float64") is get_array_backend("numpy", "float64")
        assert get_array_backend("numpy", "float64") is not get_array_backend(
            "numpy", "float32"
        )

    def test_validate_engine_dtype(self):
        assert validate_engine_dtype(None) is None
        assert validate_engine_dtype("float32") == "float32"
        with pytest.raises(ValueError, match="float16"):
            validate_engine_dtype("float16")

    def test_resolution_defaults_to_the_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(DTYPE_ENV, raising=False)
        ab = resolve_array_backend()
        assert ab.is_reference
        assert ab.kind == "numpy" and ab.dtype_name == "float64"

    def test_resolution_reads_the_env_knobs(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        monkeypatch.setenv(DTYPE_ENV, "float32")
        ab = resolve_array_backend()
        assert ab.dtype_name == "float32"
        assert not ab.is_reference

    def test_explicit_arguments_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv(DTYPE_ENV, "float32")
        assert resolve_array_backend(dtype="float64").dtype_name == "float64"

    def test_backend_instance_passes_through(self):
        ab = get_array_backend("numpy", "float32")
        assert resolve_array_backend(ab) is ab
        # Passing a dtype re-fetches the same kind at that dtype.
        assert resolve_array_backend(ab, "float64").dtype_name == "float64"

    def test_custom_backend_registration(self):
        class _Probe(NumpyArrayBackend):
            kind = "probe-backend"

        register_array_backend("probe-backend", _Probe, replace=True)
        try:
            assert "probe-backend" in registered_array_backends()
            assert get_array_backend("probe-backend").kind == "probe-backend"
            with pytest.raises(ValueError, match="already registered"):
                register_array_backend("probe-backend", _Probe)
        finally:
            register_array_backend("probe-backend", _unregister_ok, replace=True)

    def test_unavailable_backend_raises_lazily(self):
        def _factory(dtype):
            raise ArrayBackendUnavailable("no device here")

        register_array_backend("never-there", _factory, replace=True)
        assert "never-there" in registered_array_backends()
        assert "never-there" not in available_array_backends()
        with pytest.raises(ArrayBackendUnavailable):
            get_array_backend("never-there")


def _unregister_ok(dtype):
    raise ArrayBackendUnavailable("test backend retired")


class TestNumpyReferenceBackend:
    def test_from_numpy_is_no_copy_on_the_reference(self):
        ab = get_array_backend("numpy", "float64")
        host = np.ones((3, 4))
        assert ab.from_numpy(host) is host
        assert ab.to_numpy(host) is host

    def test_float32_backend_casts(self):
        ab = get_array_backend("numpy", "float32")
        device = ab.from_numpy(np.ones((2, 2)))
        assert device.dtype == np.float32

    def test_xp_is_the_numpy_module(self):
        assert get_array_backend("numpy").xp is np

    def test_adapt_operator_is_identity_on_the_reference(self):
        model = random_qubo(8, rng=0)
        op = model.operator()
        assert get_array_backend("numpy", "float64").adapt_operator(op) is op

    def test_adapt_operator_wraps_on_non_reference(self):
        model = random_qubo(8, rng=0)
        ab = get_array_backend("numpy", "float32")
        adapted = ab.adapt_operator(model.operator())
        assert isinstance(adapted, BackendDenseOperator)
        # Memoised per backend identity.
        assert ab.adapt_operator(model.operator()) is adapted

    def test_adapt_operator_requires_the_hook(self):
        class HookFree:
            pass

        with pytest.raises(TypeError, match="to_backend"):
            get_array_backend("numpy", "float32").adapt_operator(HookFree())

    def test_log_guarded_silences_log_zero(self):
        ab = get_array_backend("numpy")
        out = ab.log_guarded(np.array([0.0, 1.0]))
        assert out[0] == -np.inf and out[1] == 0.0


class TestBackendOperators:
    @pytest.fixture()
    def sparse_model(self):
        return random_qubo(600, density=0.02, rng=3, storage="sparse")

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_dense_operator_matches_host(self, dtype):
        model = random_qubo(10, rng=1)
        host_op = model.operator("dense")
        ab = get_array_backend("numpy", dtype)
        dev_op = BackendDenseOperator(model.dense_Q(), host_op.diag, ab)
        X = np.random.default_rng(0).integers(0, 2, size=(3, 10)).astype(np.float64)
        rtol = 1e-12 if dtype == "float64" else 1e-5
        np.testing.assert_allclose(
            dev_op.right_multiply(ab.from_numpy(X)), host_op.right_multiply(X), rtol=rtol
        )
        idx = np.array([1, 4, 7])
        np.testing.assert_allclose(dev_op.rows(idx), host_op.rows(idx), rtol=rtol)
        np.testing.assert_allclose(dev_op.row(2), host_op.row(2), rtol=rtol)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_sparse_operator_matches_host(self, sparse_model, dtype):
        host_op = sparse_model.operator("sparse")
        ab = get_array_backend("numpy", dtype)
        dev_op = host_op.to_backend(ab)
        assert isinstance(dev_op, BackendSparseOperator)
        X = np.random.default_rng(1).integers(0, 2, size=(2, 600)).astype(np.float64)
        rtol = 1e-10 if dtype == "float64" else 1e-4
        np.testing.assert_allclose(
            dev_op.right_multiply(ab.from_numpy(X)),
            host_op.right_multiply(X),
            rtol=rtol,
            atol=1e-5,
        )
        idx = np.array([0, 17, 599])
        np.testing.assert_allclose(
            dev_op.rows(idx), host_op.rows(idx), rtol=rtol, atol=1e-6
        )
        np.testing.assert_allclose(
            dev_op.row(42), host_op.row(42), rtol=rtol, atol=1e-6
        )
        dX = np.random.default_rng(2).normal(size=(2, 3))
        np.testing.assert_allclose(
            dev_op.block_product(ab.from_numpy(dX), idx),
            host_op.block_product(dX, idx),
            rtol=rtol,
            atol=1e-5,
        )

    def test_annealing_state_on_float32(self):
        model = random_qubo(16, rng=4)
        ab = get_array_backend("numpy", "float32")
        state = AnnealingState(model, 3, rng=np.random.default_rng(0), array_backend=ab)
        assert state.X.dtype == np.float32
        assert state.H.dtype == np.float32
        # Energies agree with the exact model within float32 tolerance.
        exact = model.energies(state.X.astype(np.float64))
        np.testing.assert_allclose(state.current_energies, exact, rtol=1e-5, atol=1e-4)


class TestSparseRandomQubo:
    def test_sparse_generator_never_densifies(self):
        model = random_qubo(700, density=0.01, rng=9, storage="sparse")
        assert model.storage == "sparse"
        assert model.in_sparse_regime()

    def test_density_is_close_to_target(self):
        model = random_qubo(1000, density=0.05, rng=2, storage="sparse")
        # Duplicate draws coalesce, so realised density is slightly below the
        # target; it must land in the right neighbourhood.
        assert 0.03 <= model.density() <= 0.055

    def test_sparse_generator_is_seeded(self):
        a = random_qubo(300, density=0.05, rng=7, storage="sparse")
        b = random_qubo(300, density=0.05, rng=7, storage="sparse")
        assert a.fingerprint() == b.fingerprint()

    def test_dense_path_is_unchanged_by_the_new_parameter(self):
        a = random_qubo(20, density=0.5, rng=11)
        b = random_qubo(20, density=0.5, rng=11, storage="dense")
        assert a.fingerprint() == b.fingerprint()

    def test_rejects_unknown_storage(self):
        with pytest.raises(ValueError, match="unknown storage"):
            random_qubo(10, storage="coo")

    def test_sparse_model_solves(self):
        from repro.service import make_solver

        model = random_qubo(520, density=0.03, rng=1, storage="sparse")
        result = make_solver("sa?num_sweeps=3").sample(
            model, num_reads=2, rng=np.random.default_rng(0)
        )
        assert result.assignments.shape == (2, 520)


# --------------------------------------------------------------------------
# Kernel lint: the engine's kernel sections must route every array operation
# through the backend handle, never through the numpy module directly.  Host
# setup code (``__init__``, the block-size heuristics) legitimately stays
# numpy; everything else in the engine is backend-polymorphic.
# --------------------------------------------------------------------------

#: Engine code allowed to touch ``np.`` — host-side setup and heuristics.
_HOST_SIDE = {
    ("AnnealingState", "__init__"),
    (None, "default_block_size"),
    ("AdaptiveBlockSizer", "__init__"),
    ("AdaptiveBlockSizer", "update"),
}


def _np_uses(func: ast.FunctionDef) -> list:
    """Line numbers of ``np.<attr>`` attribute reads inside a function body."""
    uses = []
    for stmt in func.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "np"
            ):
                uses.append(node.lineno)
    return uses


def test_engine_kernels_have_no_bare_numpy_calls():
    tree = ast.parse(inspect.getsource(engine_module))
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and (node.name, item.name) not in _HOST_SIDE:
                offenders += [
                    f"{node.name}.{item.name}:{line}" for line in _np_uses(item)
                ]
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and (None, node.name) not in _HOST_SIDE:
            offenders += [f"{node.name}:{line}" for line in _np_uses(node)]
    assert offenders == [], (
        "engine kernel sections must use the backend namespace (state.xp / "
        f"ab.xp), found bare np. uses at: {offenders}"
    )


# --------------------------------------------------------------------------
# Float32 parity: the full solver stack runs green in single precision, and
# reported energies stay exact (re-scored against the float64 model).
# --------------------------------------------------------------------------


class TestFloat32Path:
    def test_sa_float32_energies_are_exact_rescored(self):
        model = random_qubo(14, rng=6)
        from repro.service import make_solver

        result = make_solver("sa?num_sweeps=8&dtype=float32").sample(
            model, num_reads=4, rng=np.random.default_rng(3)
        )
        np.testing.assert_array_equal(
            result.energies, model.energies(result.assignments.astype(np.float64))
        )

    def test_env_knob_selects_float32(self, monkeypatch):
        monkeypatch.setenv(DTYPE_ENV, "float32")
        model = random_qubo(10, rng=8)
        state = AnnealingState(model, 2, rng=np.random.default_rng(0))
        assert state.X.dtype == np.float32

    def test_config_beats_env_knob(self, monkeypatch):
        monkeypatch.setenv(DTYPE_ENV, "float32")
        ab = resolve_array_backend(None, "float64")
        assert ab.dtype_name == "float64"
