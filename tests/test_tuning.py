"""Unit tests for the tuner framework and the generic baselines (Random, TPE, BO, GP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory, TrialResult
from repro.tuning.bayesian_optimisation import BayesianOptimisationConfig, BayesianOptimisationTuner
from repro.tuning.gaussian_process import GaussianProcessRegressor, RBFKernel
from repro.tuning.grid_search import GridSearchTuner
from repro.tuning.random_search import RandomSearchTuner
from repro.tuning.tpe import TPEConfig, TPETuner


def make_history(entries) -> TrialHistory:
    """entries: list of (parameter, pf, best_fitness)."""
    history = TrialHistory()
    for parameter, pf, fitness in entries:
        history.append(
            TrialResult(parameter=parameter, probability_of_feasibility=pf, best_fitness=fitness)
        )
    return history


class TestParameterBounds:
    def test_clip(self):
        bounds = ParameterBounds(low=1.0, high=10.0)
        assert bounds.clip(0.5) == 1.0
        assert bounds.clip(50.0) == 10.0
        assert bounds.clip(5.0) == 5.0

    def test_uniform_within_bounds(self):
        bounds = ParameterBounds(low=2.0, high=3.0)
        samples = bounds.uniform(np.random.default_rng(0), size=100)
        assert np.all((samples >= 2.0) & (samples <= 3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterBounds(low=0.0, high=1.0)
        with pytest.raises(ValueError):
            ParameterBounds(low=2.0, high=1.0)


class TestTrialHistory:
    def test_best_fitness_ignores_infeasible(self):
        history = make_history([(1.0, 0.0, None), (2.0, 0.5, 10.0), (3.0, 0.9, 7.0)])
        assert history.best_fitness() == 7.0

    def test_best_fitness_none_when_all_infeasible(self):
        history = make_history([(1.0, 0.0, None), (2.0, 0.0, None)])
        assert history.best_fitness() is None

    def test_best_fitness_curve_monotone(self):
        history = make_history([(1.0, 0.0, None), (2.0, 1.0, 9.0), (3.0, 1.0, 12.0), (4.0, 1.0, 5.0)])
        curve = history.best_fitness_curve()
        assert curve == [None, 9.0, 9.0, 5.0]

    def test_scores_penalise_infeasible(self):
        history = make_history([(1.0, 0.0, None), (2.0, 1.0, 10.0)])
        scores = history.scores()
        assert scores[0] > scores[1]

    def test_scores_rank_almost_feasible_better(self):
        history = make_history([(1.0, 0.0, None), (2.0, 0.9, None), (3.0, 1.0, 10.0)])
        scores = history.scores()
        assert scores[1] < scores[0]

    def test_parameters_and_len(self):
        history = make_history([(1.0, 0.5, 2.0), (4.0, 0.5, 2.0)])
        np.testing.assert_allclose(history.parameters, [1.0, 4.0])
        assert len(history) == 2


class TestRandomAndGrid:
    def test_random_search_within_bounds(self):
        bounds = ParameterBounds(low=1.0, high=2.0)
        tuner = RandomSearchTuner(bounds, rng=0)
        for _ in range(50):
            assert 1.0 <= tuner.suggest(TrialHistory()) <= 2.0

    def test_random_search_reproducible(self):
        bounds = ParameterBounds(low=1.0, high=2.0)
        a = [RandomSearchTuner(bounds, rng=7).suggest(TrialHistory()) for _ in range(1)]
        b = [RandomSearchTuner(bounds, rng=7).suggest(TrialHistory()) for _ in range(1)]
        assert a == b

    def test_grid_search_progresses_through_grid(self):
        bounds = ParameterBounds(low=0.0 + 1e-9, high=10.0)
        tuner = GridSearchTuner(bounds, num_points=5, rng=0)
        history = TrialHistory()
        suggestions = []
        for _ in range(5):
            suggestion = tuner.suggest(history)
            suggestions.append(suggestion)
            history.append(TrialResult(parameter=suggestion, probability_of_feasibility=1.0, best_fitness=1.0))
        assert suggestions == sorted(suggestions)

    def test_grid_search_validation(self):
        with pytest.raises(ValueError):
            GridSearchTuner(ParameterBounds(1.0, 2.0), num_points=1)


class TestTPE:
    def test_startup_phase_is_random_within_bounds(self):
        bounds = ParameterBounds(low=5.0, high=6.0)
        tuner = TPETuner(bounds, rng=0)
        assert 5.0 <= tuner.suggest(TrialHistory()) <= 6.0

    def test_exploits_good_region(self):
        bounds = ParameterBounds(low=1.0, high=100.0)
        tuner = TPETuner(bounds, config=TPEConfig(num_startup_trials=4, num_candidates=64), rng=0)
        # Synthetic objective: best fitness is lowest near parameter 30.
        history = make_history(
            [(a, 1.0, abs(a - 30.0) + 1.0) for a in (5.0, 20.0, 28.0, 32.0, 50.0, 70.0, 90.0)]
        )
        suggestions = [tuner.suggest(history) for _ in range(20)]
        assert np.median(np.abs(np.array(suggestions) - 30.0)) < 25.0

    def test_handles_all_infeasible_history(self):
        bounds = ParameterBounds(low=1.0, high=10.0)
        tuner = TPETuner(bounds, config=TPEConfig(num_startup_trials=2), rng=0)
        history = make_history([(1.0, 0.0, None), (2.0, 0.0, None), (3.0, 0.0, None)])
        assert 1.0 <= tuner.suggest(history) <= 10.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TPEConfig(num_startup_trials=0)
        with pytest.raises(ValueError):
            TPEConfig(gamma=1.5)
        with pytest.raises(ValueError):
            TPEConfig(num_candidates=0)
        with pytest.raises(ValueError):
            TPEConfig(bandwidth_factor=0.0)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.sin(x)
        gp = GaussianProcessRegressor(RBFKernel(length_scale=1.0), noise=1e-6).fit(x, y)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        gp = GaussianProcessRegressor(RBFKernel(length_scale=0.5), noise=1e-6).fit(x, y)
        _, std_near = gp.predict(np.array([0.5]))
        _, std_far = gp.predict(np.array([5.0]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.array([1.0]))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0.0)
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)

    def test_length_scale_optimisation_improves_likelihood(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 30)
        y = np.sin(x) + rng.normal(0, 0.05, x.size)
        gp = GaussianProcessRegressor(RBFKernel(length_scale=5.0), noise=1e-3)
        before = gp.log_marginal_likelihood(x, y)
        gp.optimise_length_scale(x, y, candidates=np.array([0.5, 1.0, 2.0, 5.0]))
        after = gp.log_marginal_likelihood(x, y)
        assert after >= before - 1e-9


class TestBayesianOptimisation:
    def test_startup_then_model_based(self):
        bounds = ParameterBounds(low=1.0, high=100.0)
        tuner = BayesianOptimisationTuner(
            bounds, config=BayesianOptimisationConfig(num_startup_trials=3), rng=0
        )
        short_history = make_history([(10.0, 1.0, 5.0)])
        assert 1.0 <= tuner.suggest(short_history) <= 100.0

    def test_concentrates_near_minimum(self):
        bounds = ParameterBounds(low=1.0, high=100.0)
        tuner = BayesianOptimisationTuner(
            bounds, config=BayesianOptimisationConfig(num_startup_trials=3), rng=1
        )
        history = make_history(
            [(a, 1.0, (a - 40.0) ** 2 / 100.0 + 1.0) for a in (5.0, 20.0, 35.0, 45.0, 60.0, 90.0)]
        )
        suggestion = tuner.suggest(history)
        assert 10.0 <= suggestion <= 80.0

    def test_handles_infeasible_trials(self):
        bounds = ParameterBounds(low=1.0, high=10.0)
        tuner = BayesianOptimisationTuner(
            bounds, config=BayesianOptimisationConfig(num_startup_trials=2), rng=0
        )
        history = make_history([(1.0, 0.0, None), (5.0, 1.0, 3.0), (9.0, 1.0, 4.0)])
        assert 1.0 <= tuner.suggest(history) <= 10.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimisationConfig(num_startup_trials=0)
        with pytest.raises(ValueError):
            BayesianOptimisationConfig(num_candidates=4)
        with pytest.raises(ValueError):
            BayesianOptimisationConfig(exploration=-1.0)
        with pytest.raises(ValueError):
            BayesianOptimisationConfig(noise=0.0)


class TestTunerInterface:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda bounds: RandomSearchTuner(bounds, rng=0),
            lambda bounds: GridSearchTuner(bounds, rng=0),
            lambda bounds: TPETuner(bounds, rng=0),
            lambda bounds: BayesianOptimisationTuner(bounds, rng=0),
        ],
        ids=["random", "grid", "tpe", "bo"],
    )
    def test_twenty_trials_stay_in_bounds(self, factory):
        bounds = ParameterBounds(low=2.0, high=20.0)
        tuner: ParameterTuner = factory(bounds)
        history = TrialHistory()
        rng = np.random.default_rng(0)
        for _ in range(20):
            suggestion = tuner.suggest(history)
            assert bounds.low <= suggestion <= bounds.high
            fitness = float(abs(suggestion - 11.0) + rng.normal(0, 0.1) + 1.0)
            trial = TrialResult(parameter=suggestion, probability_of_feasibility=1.0, best_fitness=fitness)
            history.append(trial)
            tuner.observe(trial, history)
