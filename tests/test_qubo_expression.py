"""Unit tests for repro.qubo.expression (QUBOAccumulator, RelaxedEncoding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.expression import QUBOAccumulator, RelaxedEncoding
from repro.qubo.model import QUBOModel, random_qubo


def enumerate_assignments(n: int):
    for bits in range(2**n):
        yield np.array([(bits >> i) & 1 for i in range(n)], dtype=float)


class TestAccumulatorTerms:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            QUBOAccumulator(0)

    def test_add_linear(self):
        model = QUBOAccumulator(3).add_linear([0, 2], [1.5, -2.0]).build()
        for x in enumerate_assignments(3):
            assert model.energy(x) == pytest.approx(1.5 * x[0] - 2.0 * x[2])

    def test_add_linear_broadcasts_scalar(self):
        model = QUBOAccumulator(4).add_linear(np.arange(4), 2.0).build()
        assert model.energy(np.ones(4)) == pytest.approx(8.0)

    def test_add_quadratic(self):
        model = QUBOAccumulator(3).add_quadratic([0, 1], [1, 2], [2.0, -1.0]).build()
        for x in enumerate_assignments(3):
            assert model.energy(x) == pytest.approx(2.0 * x[0] * x[1] - x[1] * x[2])

    def test_add_quadratic_diagonal_is_linear(self):
        model = QUBOAccumulator(2).add_quadratic([1], [1], [3.0]).build()
        assert model.energy(np.array([0.0, 1.0])) == pytest.approx(3.0)

    def test_add_constant(self):
        model = QUBOAccumulator(2).add_constant(2.0).add_constant(-0.5).build(offset=1.0)
        assert model.energy(np.zeros(2)) == pytest.approx(2.5)

    def test_duplicate_coordinates_coalesce(self):
        accumulator = QUBOAccumulator(2)
        accumulator.add_quadratic([0, 0], [1, 1], [1.0, 2.0])
        accumulator.add_quadratic([0], [1], [0.5])
        model = accumulator.build()
        assert model.energy(np.ones(2)) == pytest.approx(3.5)
        assert model.to_dict() == {(0, 1): pytest.approx(3.5)}

    def test_squared_linear_penalty(self):
        accumulator = QUBOAccumulator(4).add_squared_linear_penalty(
            [0, 1, 3], [1.0, 2.0, -1.0], constant=1.0
        )
        model = accumulator.build()
        for x in enumerate_assignments(4):
            expected = (x[0] + 2.0 * x[1] - x[3] - 1.0) ** 2
            assert model.energy(x) == pytest.approx(expected)

    def test_squared_linear_penalty_empty_support(self):
        model = QUBOAccumulator(2).add_squared_linear_penalty([], [], constant=3.0).build()
        assert model.energy(np.zeros(2)) == pytest.approx(9.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QUBOAccumulator(3).add_linear([3], [1.0])
        with pytest.raises(ValueError):
            QUBOAccumulator(3).add_quadratic([0], [-1], [1.0])

    def test_mismatched_rows_cols_rejected(self):
        with pytest.raises(ValueError):
            QUBOAccumulator(3).add_quadratic([0, 1], [1], [1.0])

    def test_appended_terms_do_not_alias_caller_buffers(self):
        indices = np.array([0, 1], dtype=np.int64)
        values = np.array([1.0, 2.0])
        accumulator = QUBOAccumulator(3).add_linear(indices, values)
        indices[:] = 2
        values[:] = -5.0
        model = accumulator.build()
        assert model.to_dict() == {(0, 0): 1.0, (1, 1): 2.0}

    def test_num_terms_counts_triplets(self):
        accumulator = QUBOAccumulator(3).add_linear([0, 1], 1.0).add_quadratic([0], [2], 1.0)
        assert accumulator.num_terms == 3


class TestAccumulatorStorage:
    def test_small_model_auto_densifies(self):
        model = QUBOAccumulator(4).add_linear([0], [1.0]).build()
        assert model.storage == "dense"

    def test_large_sparse_model_stays_sparse(self):
        n = 600
        model = QUBOAccumulator(n).add_quadratic(np.arange(n - 1), np.arange(1, n), 1.0).build()
        assert model.storage == "sparse"

    def test_forced_storage(self):
        accumulator = QUBOAccumulator(4).add_linear([0], [1.0])
        assert accumulator.build(storage="sparse").storage == "sparse"
        assert accumulator.build(storage="dense").storage == "dense"
        with pytest.raises(ValueError):
            accumulator.build(storage="banana")

    def test_empty_accumulator_builds_zero_model(self):
        model = QUBOAccumulator(3).build(offset=1.5)
        assert model.num_variables == 3
        assert model.energy(np.ones(3)) == pytest.approx(1.5)


class TestRelaxedEncoding:
    def _encoding(self, n=4, seed=0, **kwargs) -> RelaxedEncoding:
        rng = np.random.default_rng(seed)
        objective = random_qubo(n, rng=rng, name="obj")
        penalty = random_qubo(n, rng=rng, name="pen")
        return RelaxedEncoding(objective=objective, penalty=penalty, **kwargs)

    def test_relax_composes_objective_and_penalty(self):
        encoding = self._encoding()
        x = np.array([1.0, 0.0, 1.0, 1.0])
        relaxed = encoding.relax(2.5)
        expected = encoding.objective_energy(x) + 2.5 * encoding.penalty_energy(x)
        assert relaxed.energy(x) == pytest.approx(expected)

    def test_relax_requires_positive_parameter(self):
        encoding = self._encoding()
        with pytest.raises(ValueError):
            encoding.relax(0.0)
        with pytest.raises(ValueError):
            encoding.relax(-1.0)

    def test_relax_is_cached_per_parameter(self):
        encoding = self._encoding()
        assert encoding.relax(1.5) is encoding.relax(1.5)
        assert encoding.relax(1.5) is not encoding.relax(2.0)

    def test_relax_cache_is_bounded(self):
        encoding = self._encoding(max_cached_relaxations=2)
        first = encoding.relax(1.0)
        encoding.relax(2.0)
        encoding.relax(3.0)  # evicts 1.0
        assert encoding.relax(1.0) is not first

    def test_sparse_encoding_composes_sparse(self):
        n = 600
        objective = (
            QUBOAccumulator(n).add_linear(np.arange(n), 1.0).build(storage="sparse")
        )
        penalty = (
            QUBOAccumulator(n)
            .add_quadratic(np.arange(n - 1), np.arange(1, n), 1.0)
            .build(storage="sparse")
        )
        encoding = RelaxedEncoding(objective=objective, penalty=penalty)
        assert encoding.relax(2.0).storage == "sparse"

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RelaxedEncoding(objective=random_qubo(3, rng=0), penalty=random_qubo(4, rng=0))

    def test_fingerprint_tracks_contents(self):
        a = self._encoding(seed=0)
        b = self._encoding(seed=0)
        c = self._encoding(seed=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_name_propagates_to_relaxed_model(self):
        encoding = self._encoding(name="my-instance")
        assert encoding.relax(1.0).name == "my-instance"

    def test_is_feasible_uses_penalty(self):
        objective = QUBOModel(np.diag([1.0, 1.0]))
        penalty = QUBOModel(np.diag([0.0, 5.0]))
        encoding = RelaxedEncoding(objective=objective, penalty=penalty)
        assert encoding.is_feasible(np.array([1.0, 0.0]))
        assert not encoding.is_feasible(np.array([0.0, 1.0]))
