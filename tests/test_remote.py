"""Remote solve farm: transport framing, worker server, client backend, admission.

The robustness suite the subsystem is specified by: every failure mode —
mid-frame connection drops, truncated and garbage frames, protocol version
mismatches, worker death mid-solve, deadline expiry, fleet saturation — must
surface as a *typed* error (or a successful retry on a surviving worker),
never as a hang and never as a bare ``OSError`` leaking through the backend
seam.  Byte-parity of seeded solves across thread/process/remote lives in
``test_determinism_matrix.py``; this file owns everything else.
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import random_qubo
from repro.service import (
    AdmissionGate,
    ServiceOverloaded,
    SolveRequest,
    SolveService,
    ThreadExecutionBackend,
    make_solver,
    shared_backend,
)
from repro.service.admission import MAX_PENDING_ENV, max_pending_from_env
from repro.service.distributed import wire
from repro.service.distributed.backends import EngineCallRunner
from repro.service.remote import (
    DeadlineExceeded,
    RemoteBackend,
    RemoteProtocolError,
    RemoteTransportError,
    RemoteWorkerError,
    WorkerServer,
    parse_worker_list,
    recv_message,
    send_message,
)
from repro.service.remote.backend import parse_address
from repro.service.remote.worker import parse_bind
from repro.solvers.simulated_annealing import (
    SimulatedAnnealingConfig,
    SimulatedAnnealingSolver,
)
from repro.solvers.base import QUBOSolver


class UnserialisableSolver(QUBOSolver):
    """Unregistered SA wrapper: no registry spec can express it, so the
    remote client must fall back to in-process execution."""

    name = "unserialisable-sa"

    def __init__(self) -> None:
        self.config = SimulatedAnnealingConfig(num_sweeps=10)
        self._inner = SimulatedAnnealingSolver(self.config)
        self.calls = 0

    def _sample(self, model, num_reads, rng):
        self.calls += 1
        return self._inner._sample(model, num_reads, rng)

SPEC = "sa?num_sweeps=8"
FAST = dict(connect_timeout=2.0, request_timeout=20.0, backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(scope="module")
def model():
    return random_qubo(10, rng=3)


@pytest.fixture()
def worker():
    with WorkerServer() as server:
        yield server


def reference(model, num_reads, seed):
    return ThreadExecutionBackend().run(model, make_solver(SPEC), num_reads, seed)


# ------------------------------------------------------------------- transport
class TestMessageFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, b"hello frame")
            assert recv_message(b) == b"hello frame"
        finally:
            a.close()
            b.close()

    def test_clean_eof_at_boundary_returns_none(self):
        a, b = socket.socketpair()
        try:
            a.close()
            assert recv_message(b) is None
        finally:
            b.close()

    def test_mid_frame_drop_is_a_transport_error(self):
        a, b = socket.socketpair()
        try:
            # A length prefix promising 100 bytes, then only 10, then EOF.
            a.sendall(b"\x64\x00\x00\x00" + b"x" * 10)
            a.close()
            with pytest.raises(RemoteTransportError, match="mid-message"):
                recv_message(b)
        finally:
            b.close()

    def test_eof_inside_length_prefix_is_a_transport_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x01\x02")  # half a length prefix
            a.close()
            with pytest.raises(RemoteTransportError, match="mid-message"):
                recv_message(b)
        finally:
            b.close()

    def test_absurd_length_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")  # ~4 GiB claimed
            with pytest.raises(RemoteTransportError, match="exceeds"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        from repro.service.remote.protocol import MAX_MESSAGE_BYTES

        class FakeLen(bytes):
            """Claims an absurd size without allocating it."""

            def __len__(self):
                return MAX_MESSAGE_BYTES + 1

        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError, match="transport bound"):
                send_message(a, FakeLen(b""))
        finally:
            a.close()
            b.close()


class TestControlPlaneFrames:
    def test_hello_roundtrip_and_negotiation(self):
        kind, header, _ = wire.decode_frame(wire.encode_hello())
        assert kind == "hello"
        assert wire.negotiate_protocol(header["protocol_versions"]) == wire.PROTOCOL_VERSION
        assert wire.negotiate_protocol([999]) is None
        assert wire.negotiate_protocol([]) is None

    def test_hello_ack_carries_version_and_info(self):
        kind, header, _ = wire.decode_frame(wire.encode_hello_ack(1, info={"pid": 42}))
        assert kind == "hello_ack"
        assert header["protocol_version"] == 1
        assert header["info"]["pid"] == 42

    def test_heartbeat_ack_carries_stats(self):
        kind, header, _ = wire.decode_frame(wire.encode_heartbeat_ack({"served": 7}))
        assert kind == "heartbeat_ack"
        assert header["stats"]["served"] == 7

    def test_stats_frames_roundtrip(self):
        kind, header, _ = wire.decode_frame(wire.encode_stats_request({"who": "ci"}))
        assert kind == "stats"
        assert header["info"] == {"who": "ci"}
        kind, header, _ = wire.decode_frame(
            wire.encode_stats_ack({"served": 3, "shed": 1})
        )
        assert kind == "stats_ack"
        assert header["stats"] == {"served": 3, "shed": 1}

    def test_error_frame_roundtrip(self):
        kind, header, _ = wire.decode_frame(
            wire.encode_error("overloaded", "full", retryable=True)
        )
        assert kind == "error"
        assert wire.decode_error(header) == ("overloaded", "full", True)


# ---------------------------------------------------------------- worker server
def _connect(server: WorkerServer) -> socket.socket:
    conn = socket.create_connection(server.address, timeout=5.0)
    conn.settimeout(5.0)
    return conn


def _ask(conn: socket.socket, payload: bytes) -> tuple:
    send_message(conn, payload)
    reply = recv_message(conn)
    assert reply is not None
    return wire.decode_frame(reply)


class TestWorkerServer:
    def test_hello_negotiates_and_reports_stats(self, worker):
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, wire.encode_hello())
        assert kind == "hello_ack"
        assert header["protocol_version"] == wire.PROTOCOL_VERSION
        assert header["info"]["pid"] == os.getpid()

    def test_stats_request_answered_with_counters(self, worker):
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, wire.encode_stats_request())
        assert kind == "stats_ack"
        stats = header["stats"]
        for key in (
            "served",
            "shed",
            "solve_errors",
            "inflight",
            "max_concurrency",
            "max_pending",
        ):
            assert key in stats

    def test_version_mismatch_is_a_typed_error(self, worker):
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, wire.encode_hello(protocol_versions=[999]))
        assert kind == "error"
        code, _, retryable = wire.decode_error(header)
        assert code == "version_mismatch"
        assert retryable is False

    def test_garbage_frame_answered_and_connection_survives(self, worker):
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, b"this is not a wire frame")
            assert kind == "error"
            assert wire.decode_error(header)[0] == "wire_format"
            # The length prefix kept the stream in sync: the same connection
            # still serves well-formed traffic.
            kind, header, _ = _ask(conn, wire.encode_heartbeat())
            assert kind == "heartbeat_ack"
            assert header["stats"]["solve_errors"] == 0

    def test_engine_call_matches_thread_backend(self, worker, model):
        payload = wire.encode_engine_call(model, SPEC, 3, 77)
        with _connect(worker) as conn:
            kind, header, buffers = _ask(conn, payload)
        assert kind == "sample_set"
        from repro.qubo.sampleset import SampleSet

        samples = SampleSet.from_wire(header, buffers)
        expected = reference(model, 3, 77)
        assert np.array_equal(samples.assignments, expected.assignments)
        assert np.array_equal(samples.energies, expected.energies)

    def test_model_miss_for_unknown_reference(self, worker, model):
        payload = wire.encode_engine_call_ref(model.fingerprint(), SPEC, 2, 1)
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, payload)
        assert kind == "model_miss"
        assert header["model_ref"] == model.fingerprint()

    def test_bad_solver_spec_is_a_solve_error_not_a_crash(self, worker, model):
        payload = wire.encode_engine_call(model, "no-such-solver", 2, 1)
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, payload)
            assert kind == "error"
            code, _, retryable = wire.decode_error(header)
            assert code == "solve_error"
            assert retryable is False
            # The worker survived the bad call.
            kind, _, _ = _ask(conn, wire.encode_heartbeat())
            assert kind == "heartbeat_ack"

    def test_unsupported_frame_kind(self, worker, model):
        with _connect(worker) as conn:
            kind, header, _ = _ask(conn, wire.encode_model(model))
        assert kind == "error"
        assert wire.decode_error(header)[0] == "unsupported"

    def test_cli_bind_parsing(self):
        assert parse_bind("0.0.0.0:7070") == ("0.0.0.0", 7070)
        with pytest.raises(ValueError):
            parse_bind("7070")
        with pytest.raises(ValueError):
            parse_bind("host:notaport")


class _BlockingRunner(EngineCallRunner):
    """Holds every engine call until released — saturation on demand."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def execute(self, payload):
        self.started.set()
        assert self.release.wait(30), "test forgot to release the runner"
        return super().execute(payload)


class TestWorkerAdmission:
    def test_saturated_worker_sheds_with_retryable_error(self, model):
        runner = _BlockingRunner()
        with WorkerServer(max_concurrency=1, max_pending=0, runner=runner) as server:
            first = RemoteBackend(workers=[server.address], retries=0, **FAST)
            results = {}

            def occupy():
                results["first"] = first.run(model, make_solver(SPEC), 2, 5)

            thread = threading.Thread(target=occupy)
            thread.start()
            assert runner.started.wait(10)

            # Fleet-wide saturation: the retry budget drains on sheds and the
            # client surfaces the typed overload error.
            second = RemoteBackend(workers=[server.address], retries=1, **FAST)
            with pytest.raises(ServiceOverloaded, match="shed"):
                second.run(model, make_solver(SPEC), 2, 6)
            assert server.stats()["shed"] >= 2  # one per drained attempt

            runner.release.set()
            thread.join(timeout=30)
            assert np.array_equal(
                results["first"].assignments, reference(model, 2, 5).assignments
            )
            first.close()
            second.close()


# ---------------------------------------------------------------- client backend
class TestRemoteBackendClient:
    def test_round_robin_spreads_over_the_fleet(self, model):
        with WorkerServer() as w1, WorkerServer() as w2:
            backend = RemoteBackend(workers=[w1.address, w2.address], **FAST)
            solver = make_solver(SPEC)
            for seed in range(6):
                backend.run(model, solver, 2, seed)
            assert w1.stats()["served"] == 3
            assert w2.stats()["served"] == 3
            # Ref-frames after the first full ship per worker: the model
            # travelled once per fleet member, not once per call.
            stats = backend.stats()
            assert stats["served"] == 6
            assert stats["dials"] == 2
            backend.close()

    def test_worker_death_mid_solve_retries_on_survivor(self, model):
        class DyingRunner(EngineCallRunner):
            """Simulates a crash: kills its server upon receiving a call."""

            def __init__(self):
                super().__init__()
                self.server = None

            def execute(self, payload):
                self.server.kill()
                raise RuntimeError("worker process died")

        runner = DyingRunner()
        dying = WorkerServer(runner=runner)
        runner.server = dying
        with dying, WorkerServer() as survivor:
            backend = RemoteBackend(
                workers=[dying.address, survivor.address], retries=2, **FAST
            )
            result = backend.run(model, make_solver(SPEC), 3, 11)
            assert np.array_equal(
                result.assignments, reference(model, 3, 11).assignments
            )
            stats = backend.stats()
            assert stats["transport_retries"] >= 1
            assert stats["workers"][f"{dying.address[0]}:{dying.address[1]}"][
                "consecutive_failures"
            ] >= 1
            backend.close()

    def test_dead_worker_at_connect_retries_on_live_one(self, model):
        # A port that nothing listens on: bind, learn the address, close.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()
        with WorkerServer() as live:
            backend = RemoteBackend(
                workers=[dead_address, live.address], retries=2, **FAST
            )
            result = backend.run(model, make_solver(SPEC), 2, 9)
            assert np.array_equal(
                result.assignments, reference(model, 2, 9).assignments
            )
            # Once marked down, the dead worker is skipped without burning
            # retries: a second call goes straight to the live one.
            backend.run(model, make_solver(SPEC), 2, 10)
            assert live.stats()["served"] == 2
            backend.close()

    def test_deadline_expiry_is_typed_and_prompt(self, model):
        # A listener that accepts and then never answers anything.
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            backend = RemoteBackend(
                workers=[silent.getsockname()[:2]],
                connect_timeout=5.0,
                request_timeout=0.4,
                retries=3,
            )
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                backend.run(model, make_solver(SPEC), 2, 1)
            assert time.monotonic() - start < 5.0
            backend.close()
        finally:
            silent.close()

    def test_solve_error_surfaces_as_worker_error_without_retry(self, model):
        class FailingRunner(EngineCallRunner):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def execute(self, payload):
                self.calls += 1
                raise ValueError("boom")

        runner = FailingRunner()
        with WorkerServer(runner=runner) as server:
            backend = RemoteBackend(workers=[server.address], retries=3, **FAST)
            with pytest.raises(RemoteWorkerError, match="boom"):
                backend.run(model, make_solver(SPEC), 2, 1)
            assert runner.calls == 1  # deterministic failure: no retries
            backend.close()

    def test_version_mismatch_from_server_is_protocol_error(self, model):
        def serve_mismatch(listener):
            conn, _ = listener.accept()
            with conn:
                recv_message(conn)
                send_message(
                    conn, wire.encode_error("version_mismatch", "too old", False)
                )

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        thread = threading.Thread(target=serve_mismatch, args=(listener,), daemon=True)
        thread.start()
        try:
            backend = RemoteBackend(
                workers=[listener.getsockname()[:2]], retries=2, **FAST
            )
            with pytest.raises(RemoteProtocolError, match="version_mismatch"):
                backend.run(model, make_solver(SPEC), 2, 1)
            backend.close()
        finally:
            listener.close()
            thread.join(timeout=5)

    def test_garbage_reply_is_protocol_error(self, model):
        def serve_garbage(listener):
            conn, _ = listener.accept()
            with conn:
                recv_message(conn)  # hello
                send_message(conn, b"utter nonsense")

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        thread = threading.Thread(target=serve_garbage, args=(listener,), daemon=True)
        thread.start()
        try:
            backend = RemoteBackend(
                workers=[listener.getsockname()[:2]], retries=1, **FAST
            )
            with pytest.raises(RemoteProtocolError, match="undecodable"):
                backend.run(model, make_solver(SPEC), 2, 1)
            backend.close()
        finally:
            listener.close()
            thread.join(timeout=5)

    def test_unserialisable_solver_falls_back_in_process(self, model):
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address], **FAST)
            solver = UnserialisableSolver()
            result = backend.run(model, solver, 2, 13)
            assert solver.calls == 1  # ran here, not on the worker
            assert server.stats()["served"] == 0
            assert backend.stats()["fallback_in_process"] == 1
            direct = solver._inner.sample(model, 2, rng=np.random.default_rng(13))
            assert np.array_equal(result.assignments, direct.assignments)
            backend.close()

    def test_check_workers_reports_and_marks_health(self, model):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()
        with WorkerServer() as live:
            backend = RemoteBackend(
                workers=[live.address, dead_address], retries=0, **FAST
            )
            health = backend.check_workers(timeout=1.0)
            live_label = f"{live.address[0]}:{live.address[1]}"
            dead_label = f"{dead_address[0]}:{dead_address[1]}"
            assert health[live_label]["max_concurrency"] == live.max_concurrency
            assert health[dead_label] is None
            assert backend.stats()["workers"][dead_label]["healthy"] is False
            backend.close()

    def test_check_workers_surfaces_served_and_shed_counters(self, model):
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address], **FAST)
            before = backend.check_workers(timeout=2.0)
            label = f"{server.address[0]}:{server.address[1]}"
            assert before[label]["served"] == 0
            backend.run(model, make_solver(SPEC), 2, 1)
            after = backend.check_workers(timeout=2.0)
            assert after[label]["served"] == 1
            assert after[label]["shed"] == 0
            assert after[label]["solve_errors"] == 0
            backend.close()

    def test_worker_list_parsing(self, monkeypatch):
        assert parse_worker_list("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_worker_list("a:1; b:2,") == [("a", 1), ("b", 2)]
        assert parse_worker_list([("h", 9), "i:10"]) == [("h", 9), ("i", 10)]
        with pytest.raises(ValueError, match="host:port"):
            parse_worker_list("just-a-host")
        with pytest.raises(ValueError, match="empty"):
            parse_worker_list(",")
        monkeypatch.delenv("QROSS_REMOTE_WORKERS", raising=False)
        with pytest.raises(ValueError, match="worker fleet"):
            parse_worker_list(None)  # no argument and no environment fleet
        assert parse_address("10.0.0.1:7070") == ("10.0.0.1", 7070)

    def test_env_configures_the_fleet(self, monkeypatch, model):
        with WorkerServer() as server:
            monkeypatch.setenv(
                "QROSS_REMOTE_WORKERS", f"{server.address[0]}:{server.address[1]}"
            )
            backend = RemoteBackend(**FAST)
            backend.run(model, make_solver(SPEC), 2, 4)
            assert server.stats()["served"] == 1
            backend.close()

    def test_spec_resolution_and_option_validation(self, model):
        with WorkerServer() as server:
            spec = f"remote?workers={server.address[0]}:{server.address[1]}&retries=1"
            backend = shared_backend(spec)
            assert backend.name == "remote"
            assert backend.retries == 1
            backend.run(model, make_solver(SPEC), 2, 8)
            assert server.stats()["served"] == 1
            backend.close()  # the fleet address dies with the test
        with pytest.raises(ValueError, match="unknown remote-backend option"):
            shared_backend("remote?bogus=1")


# ------------------------------------------------------------ service admission
class _BlockingBackend(ThreadExecutionBackend):
    """An in-process backend that parks engine calls until released."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()

    def run(self, model, solver, num_reads, seed):
        assert self.release.wait(30), "test forgot to release the backend"
        return super().run(model, solver, num_reads, seed)


class TestServiceAdmission:
    def test_gate_counts_and_sheds(self):
        gate = AdmissionGate(max_pending=2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        with pytest.raises(ServiceOverloaded, match="max_pending=2"):
            gate.acquire()
        gate.release()
        assert gate.try_acquire()
        stats = gate.stats()
        expected = {
            "max_pending": 2,
            "admitted": 3,
            "completed": 1,
            "pending": 2,
            "peak_pending": 2,
            "shed": 2,
        }
        for key, value in expected.items():
            assert stats[key] == value
        # Unified schema: canonical *_total aliases ride along (qross.stats/1).
        assert stats["schema"] == "qross.stats/1"
        assert stats["admitted_total"] == 3
        assert stats["completed_total"] == 1
        assert stats["shed_total"] == 2

    def test_gate_rejects_unmatched_release_and_bad_bounds(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_pending=0)
        gate = AdmissionGate()
        with pytest.raises(RuntimeError, match="without a matching"):
            gate.release()

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(MAX_PENDING_ENV, raising=False)
        assert max_pending_from_env() is None
        monkeypatch.setenv(MAX_PENDING_ENV, "12")
        assert max_pending_from_env() == 12
        monkeypatch.setenv(MAX_PENDING_ENV, "zero")
        with pytest.raises(ValueError, match="integer"):
            max_pending_from_env()
        monkeypatch.setenv(MAX_PENDING_ENV, "-3")
        with pytest.raises(ValueError, match="positive"):
            max_pending_from_env()

    def test_service_sheds_beyond_max_pending(self, model):
        backend = _BlockingBackend()
        with SolveService(max_workers=2, backend=backend, max_pending=2) as service:
            f1 = service.submit(SolveRequest(solver=SPEC, model=model, seed=1))
            f2 = service.submit(SolveRequest(solver=SPEC, model=model, seed=2))
            with pytest.raises(ServiceOverloaded, match="shed, not queued"):
                service.submit(SolveRequest(solver=SPEC, model=model, seed=3))
            backend.release.set()
            assert f1.result(timeout=30).samples is not None
            assert f2.result(timeout=30).samples is not None
            # The slots freed: the shed request now fits.
            result = service.submit(
                SolveRequest(solver=SPEC, model=model, seed=3)
            ).result(timeout=30)
            assert result.samples is not None
            stats = service.stats()
            assert stats["shed"] == 1
            assert stats["served"] == 3
            assert stats["failed"] == 0
            assert stats["pending"] == 0
            assert stats["backend"]["name"] == "thread"

    def test_service_reads_env_bound(self, monkeypatch):
        monkeypatch.setenv(MAX_PENDING_ENV, "5")
        with SolveService(max_workers=1) as service:
            assert service._gate.max_pending == 5
        with SolveService(max_workers=1, max_pending=None) as service:
            assert service._gate.max_pending is None

    def test_failed_tasks_release_their_slot(self, model):
        class ExplodingBackend(ThreadExecutionBackend):
            def run(self, model, solver, num_reads, seed):
                raise RuntimeError("engine exploded")

        with SolveService(
            max_workers=1, backend=ExplodingBackend(), max_pending=1
        ) as service:
            future = service.submit(SolveRequest(solver=SPEC, model=model, seed=1))
            with pytest.raises(RuntimeError, match="exploded"):
                future.result(timeout=30)
            stats = service.stats()
            assert stats["failed"] == 1
            assert stats["pending"] == 0  # the slot came back


# --------------------------------------------------------------- RNG gap closed
class TestSampleAndEvaluateRouting:
    def test_sample_thread_path_pinned_byte_identical(self, model):
        """The historical contract: service.sample == a direct solver call."""
        solver = make_solver(SPEC)
        with SolveService(max_workers=2, backend="thread") as service:
            routed = service.sample(model, SPEC, 4, rng=np.random.default_rng(21))
        direct = solver.sample(model, num_reads=4, rng=np.random.default_rng(21))
        assert np.array_equal(routed.assignments, direct.assignments)
        assert np.array_equal(routed.energies, direct.energies)

    def test_sample_advances_caller_stream_like_the_old_path(self, model):
        rng_service = np.random.default_rng(8)
        rng_direct = np.random.default_rng(8)
        with SolveService(max_workers=2, backend="thread") as service:
            service.sample(model, SPEC, 3, rng=rng_service)
        make_solver(SPEC).sample(model, num_reads=3, rng=rng_direct)
        assert rng_service.integers(0, 2**31) == rng_direct.integers(0, 2**31)

    def test_sample_routes_through_remote_backend(self, model):
        """The ROADMAP-flagged gap: sample() must not bypass the backend."""
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address], **FAST)
            with SolveService(max_workers=2, backend=backend) as service:
                routed = service.sample(model, SPEC, 3, rng=np.random.default_rng(17))
            assert server.stats()["served"] == 1  # it ran on the fleet
            backend.close()
        # Out-of-process contract: one child seed is drawn from the stream.
        seed = int(np.random.default_rng(17).integers(0, 2**63 - 1))
        expected = reference(model, 3, seed)
        assert np.array_equal(routed.assignments, expected.assignments)

    def test_evaluate_routes_through_remote_backend(self):
        problem = TSPProblem(generate_instance(5, rng=0, name="remote-tsp"))
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address], **FAST)
            with SolveService(max_workers=2, backend=backend) as service:
                first = service.evaluate(
                    problem, SPEC, 9.0, 6, rng=np.random.default_rng(3)
                )
                second = service.evaluate(
                    problem, SPEC, 9.0, 6, rng=np.random.default_rng(3)
                )
            assert server.stats()["served"] == 2  # both ran on the fleet
            assert first == second  # seeded: deterministic across calls
            backend.close()


# ------------------------------------------------------------------ CLI worker
class TestWorkerCli:
    def test_standalone_worker_subprocess_serves_the_backend(self, model):
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.remote.worker", "--bind", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert match, f"unexpected worker banner: {line!r}"
            address = (match.group(1), int(match.group(2)))
            backend = RemoteBackend(workers=[address], **FAST)
            result = backend.run(model, make_solver(SPEC), 3, 42)
            expected = reference(model, 3, 42)
            assert np.array_equal(result.assignments, expected.assignments)
            assert np.array_equal(result.energies, expected.energies)
            backend.close()
        finally:
            proc.terminate()
            proc.wait(timeout=15)
