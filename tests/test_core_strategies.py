"""Tests for the QROSS strategies: MFS, PBS, OFS, the composed schedule and the tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies.base import dense_parameter_grid
from repro.core.strategies.composed import ComposedStrategyConfig, offline_proposals
from repro.core.strategies.minimum_fitness import MinimumFitnessStrategy
from repro.core.strategies.online_fitting import (
    OnlineFittingStrategy,
    fit_sigmoid,
    sigmoid_ansatz,
)
from repro.core.strategies.pf_based import PfBasedStrategy, propose_probability_ladder
from repro.core.tuner import QROSSTuner
from repro.tuning.base import ParameterBounds, TrialHistory, TrialResult


@pytest.fixture
def problem_and_bounds(training_problems):
    problem = training_problems[0]
    scale = problem.relaxation_scale()
    return problem, ParameterBounds(low=0.05 * scale, high=4.0 * scale)


class TestDenseGrid:
    def test_grid_spans_bounds(self):
        bounds = ParameterBounds(low=1.0, high=5.0)
        grid = dense_parameter_grid(bounds, 16)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_parameter_grid(ParameterBounds(1.0, 2.0), 4)


class TestMinimumFitnessStrategy:
    def test_proposes_single_parameter_within_bounds(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        strategy = MinimumFitnessStrategy(batch_size=16, use_shgo=False)
        proposals = strategy.propose(trained_surrogate, problem, bounds)
        assert len(proposals) == 1
        assert bounds.low <= proposals[0] <= bounds.high

    def test_proposal_lands_on_predicted_slope_or_right(self, trained_surrogate, problem_and_bounds):
        """MFS must not propose a parameter the surrogate believes is infeasible."""
        problem, bounds = problem_and_bounds
        strategy = MinimumFitnessStrategy(batch_size=16, use_shgo=False, min_probability=0.05)
        proposal = strategy.propose(trained_surrogate, problem, bounds)[0]
        pf = trained_surrogate.predict_pf(problem, [proposal])[0]
        assert pf >= 0.05 - 1e-9

    def test_shgo_refinement_does_not_worsen(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        grid_only = MinimumFitnessStrategy(batch_size=16, use_shgo=False)
        refined = MinimumFitnessStrategy(batch_size=16, use_shgo=True)
        value_grid = grid_only.expected_fitness(
            trained_surrogate, problem, np.array(grid_only.propose(trained_surrogate, problem, bounds))
        )[0]
        value_refined = refined.expected_fitness(
            trained_surrogate, problem, np.array(refined.propose(trained_surrogate, problem, bounds))
        )[0]
        assert value_refined <= value_grid + 1e-6


class TestPfBasedStrategy:
    def test_proposals_match_targets(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        strategy = PfBasedStrategy(targets=(0.8, 0.2))
        proposals = strategy.propose(trained_surrogate, problem, bounds)
        assert len(proposals) == 2
        pf = trained_surrogate.predict_pf(problem, proposals)
        # The achieved Pf should be ordered like the requested targets.
        assert pf[0] >= pf[1]

    def test_higher_target_means_larger_parameter(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        strategy = PfBasedStrategy(targets=(0.9, 0.1))
        high, low = strategy.propose(trained_surrogate, problem, bounds)
        assert high >= low

    def test_target_validation(self):
        with pytest.raises(ValueError):
            PfBasedStrategy(targets=())
        with pytest.raises(ValueError):
            PfBasedStrategy(targets=(1.5,))

    def test_probability_ladder(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        proposals = propose_probability_ladder(trained_surrogate, problem, bounds, num_trials=5)
        assert len(proposals) == 5
        with pytest.raises(ValueError):
            propose_probability_ladder(trained_surrogate, problem, bounds, num_trials=0)


class TestSigmoidFitting:
    def test_recovers_known_parameters(self):
        rng = np.random.default_rng(0)
        theta_scale, theta_offset = 0.9, 18.0
        parameters = np.linspace(10.0, 35.0, 25)
        probabilities = sigmoid_ansatz(parameters, theta_scale, theta_offset)
        probabilities = np.clip(probabilities + rng.normal(0, 0.02, parameters.size), 0, 1)
        fit = fit_sigmoid(parameters, probabilities)
        midpoint_true = theta_offset / theta_scale
        midpoint_fit = fit.theta_offset / fit.theta_scale
        assert midpoint_fit == pytest.approx(midpoint_true, rel=0.1)

    def test_slope_region_brackets_midpoint(self):
        fit = fit_sigmoid(np.linspace(0, 40, 20), sigmoid_ansatz(np.linspace(0, 40, 20), 0.5, 10.0))
        low, high = fit.slope_region()
        assert low < 20.0 / 1.0 < high or low < high  # midpoint = 20

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_sigmoid([1.0], [0.5])

    def test_degenerate_observations_fall_back(self):
        fit = fit_sigmoid([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
        assert np.isfinite(fit.theta_scale)
        assert fit.theta_scale > 0


class TestOnlineFittingStrategy:
    def test_candidates_stay_in_bounds(self):
        bounds = ParameterBounds(low=1.0, high=50.0)
        strategy = OnlineFittingStrategy(bounds, rng=0)
        strategy.observe(5.0, 0.0)
        strategy.observe(30.0, 1.0)
        strategy.observe(15.0, 0.4)
        for _ in range(20):
            candidate = strategy.next_candidate()
            assert bounds.low <= candidate <= bounds.high

    def test_candidates_concentrate_on_slope(self):
        bounds = ParameterBounds(low=1.0, high=100.0)
        strategy = OnlineFittingStrategy(bounds, rng=0)
        # Ground truth sigmoid centred at 20 with a narrow transition.
        for a in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 60.0]:
            strategy.observe(a, float(sigmoid_ansatz(np.array([a]), 1.0, 20.0)[0]))
        candidates = [strategy.next_candidate() for _ in range(30)]
        assert np.mean([5.0 <= c <= 40.0 for c in candidates]) > 0.9

    def test_bound_search_expands_when_all_feasible(self):
        bounds = ParameterBounds(low=0.5, high=100.0)
        strategy = OnlineFittingStrategy(bounds, rng=0)
        strategy.observe(40.0, 1.0)
        candidate = strategy.next_candidate()
        assert candidate < 40.0  # halve towards the infeasible plateau

    def test_bound_search_expands_when_all_infeasible(self):
        bounds = ParameterBounds(low=0.5, high=100.0)
        strategy = OnlineFittingStrategy(bounds, rng=0)
        strategy.observe(2.0, 0.0)
        candidate = strategy.next_candidate()
        assert candidate > 2.0

    def test_observe_history(self):
        bounds = ParameterBounds(low=1.0, high=10.0)
        strategy = OnlineFittingStrategy(bounds, rng=0)
        history = TrialHistory()
        history.append(TrialResult(parameter=2.0, probability_of_feasibility=0.0, best_fitness=None))
        history.append(TrialResult(parameter=8.0, probability_of_feasibility=1.0, best_fitness=5.0))
        strategy.observe_history(history)
        assert len(strategy.observations) == 2

    def test_validation(self):
        bounds = ParameterBounds(low=1.0, high=10.0)
        with pytest.raises(ValueError):
            OnlineFittingStrategy(bounds, slope_range=(0.5, 0.4))
        with pytest.raises(ValueError):
            OnlineFittingStrategy(bounds, bisection_growth=1.0)


class TestComposedStrategyAndTuner:
    def test_offline_proposals_order(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        proposals = offline_proposals(trained_surrogate, problem, bounds)
        assert len(proposals) == 3  # MFS + two PBS targets
        assert all(bounds.low <= p <= bounds.high for p in proposals)

    def test_composed_config_validation(self):
        with pytest.raises(ValueError):
            ComposedStrategyConfig(use_minimum_fitness=False, pf_targets=())

    def test_tuner_requires_trained_surrogate(self, problem_and_bounds):
        from repro.core.features import TSPStatisticsExtractor
        from repro.core.surrogate import SolverSurrogate

        problem, bounds = problem_and_bounds
        with pytest.raises(ValueError):
            QROSSTuner(SolverSurrogate(TSPStatisticsExtractor(), rng=0), problem, bounds)

    def test_tuner_first_trials_are_offline(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        tuner = QROSSTuner(trained_surrogate, problem, bounds, rng=0)
        history = TrialHistory()
        offline = tuner.offline_candidates()
        for expected in offline:
            suggestion = tuner.suggest(history)
            assert suggestion == pytest.approx(bounds.clip(expected))
            history.append(
                TrialResult(parameter=suggestion, probability_of_feasibility=0.5, best_fitness=10.0)
            )
        # Next suggestion comes from OFS and stays inside the bounds.
        online = tuner.suggest(history)
        assert bounds.low <= online <= bounds.high

    def test_tuner_reset_clears_state(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        tuner = QROSSTuner(trained_surrogate, problem, bounds, rng=0)
        history = TrialHistory()
        first = tuner.suggest(history)
        history.append(TrialResult(parameter=first, probability_of_feasibility=1.0, best_fitness=1.0))
        tuner.reset()
        assert tuner.suggest(TrialHistory()) == pytest.approx(first)

    def test_predicted_landscape_shape(self, trained_surrogate, problem_and_bounds):
        problem, bounds = problem_and_bounds
        tuner = QROSSTuner(trained_surrogate, problem, bounds, rng=0)
        prediction = tuner.predicted_landscape(num_points=32)
        assert prediction.parameters.shape == (32,)
        assert prediction.probability_of_feasibility.shape == (32,)
