"""Cross-solver × cross-backend determinism matrix.

One parameterized sweep over *every* registry-listed solver backend, run on
the thread, process and remote (localhost two-worker TCP fleet) execution
backends with two seeds each, asserting the resulting :class:`SampleSet`s are
byte-identical per ``(spec, seed)``.  The
spec list is built from ``SolverRegistry.names()`` at collection time, so a
newly registered solver (parallel tempering and multi-flip DA landed this
way) is covered the moment it registers — a backend that cannot keep the
seeded thread/process byte-parity contract fails here before anything else.

The process pool is module-scoped (spawn-starting a pool per test would
dominate the suite) — pool reuse cannot mask failures because every
assertion is a pure input/output comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compute import available_array_backends
from repro.qubo.model import random_qubo
from repro.service import (
    ProcessPoolBackend,
    SolverRegistry,
    ThreadExecutionBackend,
    make_solver,
)
from repro.service.remote import RemoteBackend, WorkerServer

#: Budget-shrinking options per known backend, so the matrix stays fast on a
#: 12-variable model.  Backends missing from this table (e.g. ones added by a
#: future PR) run their default configs — slower, but still covered.
LIGHT_OPTIONS = {
    "sa": "num_sweeps=8",
    "da": "num_steps=60",
    "pt": "num_sweeps=8&num_replicas=4&swap_interval=2",
    "tabu": "num_steps=40",
    "qbsolv": "max_rounds=2&subsolver_config.num_steps=30",
    "qa": "base_config.num_sweeps=8",
    "random": None,
    # Composite backend: members are URL-escaped nested specs
    # (sa?num_sweeps=8 and tabu?num_steps=40).  The portfolio fans its member
    # slices out through a private in-process service, so running *it* on the
    # process/remote axes exercises portfolio-inside-worker determinism.
    "portfolio": (
        "members=sa%3Fnum_sweeps%3D8,tabu%3Fnum_steps%3D40"
        "&strategy=ucb&sweep_budget=24&round_sweeps=8"
    ),
}

#: Extra non-default configurations whose determinism matters enough to pin
#: alongside the plain per-backend specs.
EXTRA_SPECS = [
    "da?num_steps=60&max_parallel_flips=4",  # multi-flip DA variant
    "sa?num_sweeps=8&block_size=1",  # exact sequential sweep
]


def matrix_specs() -> list:
    specs = []
    for name in SolverRegistry.default().names():
        options = LIGHT_OPTIONS.get(name)
        specs.append(f"{name}?{options}" if options else name)
    return specs + EXTRA_SPECS


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(max_workers=1)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def remote_backend():
    """A two-worker localhost fleet behind one RemoteBackend client.

    Two workers (not one) so the round-robin dispatch is part of what the
    matrix exercises: byte-parity must hold no matter which fleet member
    serves a given call.
    """
    with WorkerServer() as w1, WorkerServer() as w2:
        backend = RemoteBackend(workers=[w1.address, w2.address], request_timeout=120.0)
        yield backend
        backend.close()


@pytest.fixture(scope="module")
def model():
    return random_qubo(12, rng=5)


@pytest.mark.parametrize("spec", matrix_specs())
@pytest.mark.parametrize("seed", [11, 20210614])
def test_seeded_solve_is_byte_identical_across_backends(
    spec, seed, model, process_backend
):
    solver = make_solver(spec)
    thread = ThreadExecutionBackend()

    first = thread.run(model, solver, 4, seed)
    again = thread.run(model, solver, 4, seed)
    assert np.array_equal(first.assignments, again.assignments), (
        f"{spec!r} is not deterministic under seed {seed} on the thread backend"
    )

    process = process_backend.run(model, solver, 4, seed)
    assert np.array_equal(first.assignments, process.assignments), (
        f"{spec!r} seed {seed}: process assignments differ from thread"
    )
    assert np.array_equal(first.energies, process.energies)
    assert np.array_equal(first.num_occurrences, process.num_occurrences)
    assert first.assignments.dtype == process.assignments.dtype


@pytest.mark.parametrize("spec", matrix_specs())
@pytest.mark.parametrize("seed", [11, 20210614])
def test_seeded_solve_is_byte_identical_on_remote_fleet(
    spec, seed, model, remote_backend
):
    """The remote axis of the matrix: a localhost two-worker TCP fleet."""
    solver = make_solver(spec)
    reference = ThreadExecutionBackend().run(model, solver, 4, seed)
    remote = remote_backend.run(model, solver, 4, seed)
    assert np.array_equal(reference.assignments, remote.assignments), (
        f"{spec!r} seed {seed}: remote assignments differ from thread"
    )
    assert np.array_equal(reference.energies, remote.energies)
    assert np.array_equal(reference.num_occurrences, remote.num_occurrences)
    assert reference.assignments.dtype == remote.assignments.dtype


def test_matrix_covers_every_registered_backend():
    """The spec list tracks the registry — nobody can register a solver
    without it entering the matrix."""
    covered = {spec.partition("?")[0] for spec in matrix_specs()}
    assert covered == set(SolverRegistry.default().names())


# --------------------------------------------------------------------------
# Array-backend × dtype axis.
#
# Engine-capable specs are discovered from the registry (any backend whose
# config exposes ``array_backend``), and the backend axis from the compute
# registry (:func:`available_array_backends`), so a future torch/CuPy install
# or a plugin backend auto-enrolls here without test edits.  Contract tiers:
#
# * numpy/float64 — the reference: byte-identical to the spec with no
#   backend options at all (the PR-5 thread/process matrix above then extends
#   that guarantee across execution backends).
# * anything else (float32, torch, cupy, ...) — deterministic under a fixed
#   seed (run-twice byte-parity), valid binary assignments, and best-energy
#   agreement with the reference within a tolerance: trajectories may diverge
#   at acceptance boundaries, but on a 12-variable model every solver finds
#   the same near-optimal basin.
# --------------------------------------------------------------------------


def engine_specs() -> list:
    registry = SolverRegistry.default()
    specs = []
    for name in registry.names():
        if "array_backend" not in registry.backend(name).option_names():
            continue
        options = LIGHT_OPTIONS.get(name)
        specs.append(f"{name}?{options}" if options else name)
    return specs


def backend_axis() -> list:
    return [
        (kind, dtype)
        for kind in available_array_backends()
        for dtype in ("float64", "float32")
    ]


def _axis_spec(spec: str, kind: str, dtype: str) -> str:
    sep = "&" if "?" in spec else "?"
    return f"{spec}{sep}array_backend={kind}&dtype={dtype}"


@pytest.mark.parametrize("kind,dtype", backend_axis())
@pytest.mark.parametrize("spec", engine_specs())
def test_array_backend_axis(spec, kind, dtype, model):
    axis_spec = _axis_spec(spec, kind, dtype)
    solver = make_solver(axis_spec)
    seed = 11

    first = solver.sample(model, num_reads=4, rng=np.random.default_rng(seed))
    again = solver.sample(model, num_reads=4, rng=np.random.default_rng(seed))
    assert np.array_equal(first.assignments, again.assignments), (
        f"{axis_spec!r} is not deterministic under a fixed seed"
    )

    assert first.assignments.dtype == np.int8
    assert set(np.unique(first.assignments)) <= {0, 1}

    reference = make_solver(spec).sample(model, num_reads=4, rng=np.random.default_rng(seed))
    if kind == "numpy" and dtype == "float64":
        # The reference backend resolves to the exact pre-backend-layer code
        # path: adding the options must change nothing, byte for byte.
        assert np.array_equal(first.assignments, reference.assignments), (
            f"{axis_spec!r} broke byte-identity with plain {spec!r}"
        )
        assert np.array_equal(first.energies, reference.energies)
    else:
        # Tolerance tier: energies are always re-scored against the exact
        # float64 model, so comparing bests needs no dtype-aware epsilon —
        # only the search trajectory may differ, and on this 12-variable
        # model all trajectories land within a loose absolute band.
        scale = max(1.0, abs(float(reference.energies.min())))
        assert float(first.energies.min()) <= float(reference.energies.min()) + 0.5 * scale, (
            f"{axis_spec!r} best energy {first.energies.min()} is far worse "
            f"than the reference {reference.energies.min()}"
        )


def test_backend_axis_includes_the_reference():
    assert ("numpy", "float64") in backend_axis()
    assert ("numpy", "float32") in backend_axis()
