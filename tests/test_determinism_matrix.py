"""Cross-solver × cross-backend determinism matrix.

One parameterized sweep over *every* registry-listed solver backend, run on
the thread and process execution backends with two seeds each, asserting the
resulting :class:`SampleSet`s are byte-identical per ``(spec, seed)``.  The
spec list is built from ``SolverRegistry.names()`` at collection time, so a
newly registered solver (parallel tempering and multi-flip DA landed this
way) is covered the moment it registers — a backend that cannot keep the
seeded thread/process byte-parity contract fails here before anything else.

The process pool is module-scoped (spawn-starting a pool per test would
dominate the suite) — pool reuse cannot mask failures because every
assertion is a pure input/output comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import random_qubo
from repro.service import (
    ProcessPoolBackend,
    SolverRegistry,
    ThreadExecutionBackend,
    make_solver,
)

#: Budget-shrinking options per known backend, so the matrix stays fast on a
#: 12-variable model.  Backends missing from this table (e.g. ones added by a
#: future PR) run their default configs — slower, but still covered.
LIGHT_OPTIONS = {
    "sa": "num_sweeps=8",
    "da": "num_steps=60",
    "pt": "num_sweeps=8&num_replicas=4&swap_interval=2",
    "tabu": "num_steps=40",
    "qbsolv": "max_rounds=2&subsolver_config.num_steps=30",
    "qa": "base_config.num_sweeps=8",
    "random": None,
}

#: Extra non-default configurations whose determinism matters enough to pin
#: alongside the plain per-backend specs.
EXTRA_SPECS = [
    "da?num_steps=60&max_parallel_flips=4",  # multi-flip DA variant
    "sa?num_sweeps=8&block_size=1",  # exact sequential sweep
]


def matrix_specs() -> list:
    specs = []
    for name in SolverRegistry.default().names():
        options = LIGHT_OPTIONS.get(name)
        specs.append(f"{name}?{options}" if options else name)
    return specs + EXTRA_SPECS


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(max_workers=1)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def model():
    return random_qubo(12, rng=5)


@pytest.mark.parametrize("spec", matrix_specs())
@pytest.mark.parametrize("seed", [11, 20210614])
def test_seeded_solve_is_byte_identical_across_backends(
    spec, seed, model, process_backend
):
    solver = make_solver(spec)
    thread = ThreadExecutionBackend()

    first = thread.run(model, solver, 4, seed)
    again = thread.run(model, solver, 4, seed)
    assert np.array_equal(first.assignments, again.assignments), (
        f"{spec!r} is not deterministic under seed {seed} on the thread backend"
    )

    process = process_backend.run(model, solver, 4, seed)
    assert np.array_equal(first.assignments, process.assignments), (
        f"{spec!r} seed {seed}: process assignments differ from thread"
    )
    assert np.array_equal(first.energies, process.energies)
    assert np.array_equal(first.num_occurrences, process.num_occurrences)
    assert first.assignments.dtype == process.assignments.dtype


def test_matrix_covers_every_registered_backend():
    """The spec list tracks the registry — nobody can register a solver
    without it entering the matrix."""
    covered = {spec.partition("?")[0] for spec in matrix_specs()}
    assert covered == set(SolverRegistry.default().names())
