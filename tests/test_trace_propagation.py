"""Trace-context propagation: wire round-trip, stitched trees, determinism.

The tentpole guarantee under test: one seeded solve through the remote fleet
yields ONE stitched trace tree — client span → service.solve → remote.run →
remote.rpc → worker.request → worker.queue_wait → worker.solve →
engine.sample — with a single ``trace_id``, and turning tracing on never
changes a seeded result's bytes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.qubo.model import random_qubo
from repro.service.distributed import wire
from repro.service.registry import make_solver
from repro.service.remote import RemoteBackend, WorkerServer
from repro.service.service import SolveService


@pytest.fixture(autouse=True)
def _isolated_tracing():
    obs.reset_tracing()
    yield
    obs.reset_tracing()


def read_events(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


def span_index(events):
    return {e["span_id"]: e for e in events}


# ------------------------------------------------------------- wire round-trip
class TestWireTraceHeader:
    def test_trace_header_round_trips(self):
        model = random_qubo(8, rng=0)
        ctx = {"trace_id": "aa" * 8, "span_id": "bb" * 8}
        frame = wire.encode_engine_call(model, "sa", 4, 7, trace=ctx)
        _, header, _ = wire.decode_frame(frame, expected_kind="engine_call")
        assert header["trace"] == ctx
        # The standard decoder is indifferent to the extra key.
        decoded_model, spec, reads, seed = wire.decode_engine_call(frame)
        assert (decoded_model.Q == model.Q).all()
        assert (spec, reads, seed) == ("sa", 4, 7)

    def test_trace_header_round_trips_by_reference(self):
        ctx = {"trace_id": "cc" * 8, "span_id": "dd" * 8}
        frame = wire.encode_engine_call_ref("fp123", "sa", 4, 7, trace=ctx)
        _, header, _ = wire.decode_frame(frame, expected_kind="engine_call")
        assert header["trace"] == ctx
        assert header["model_ref"] == "fp123"

    def test_no_trace_means_no_header_key(self):
        model = random_qubo(8, rng=0)
        frame = wire.encode_engine_call(model, "sa", 4, 7)
        _, header, _ = wire.decode_frame(frame, expected_kind="engine_call")
        assert "trace" not in header
        frame = wire.encode_engine_call_ref("fp123", "sa", 4, 7, trace=None)
        _, header, _ = wire.decode_frame(frame, expected_kind="engine_call")
        assert "trace" not in header

    def test_old_worker_tolerates_traced_frames(self):
        """A version-1 peer ignores unknown header keys — ``trace`` included.

        The engine-call runner reads the trace context with ``header.get``,
        so frames from old clients (no ``trace`` key) and new clients alike
        execute identically.
        """
        from repro.service.distributed.backends import EngineCallRunner

        model = random_qubo(8, rng=0)
        runner = EngineCallRunner()
        traced = wire.encode_engine_call(
            model, "sa?num_sweeps=10", 3, 11,
            trace={"trace_id": "aa" * 8, "span_id": "bb" * 8},
        )
        untraced = wire.encode_engine_call(model, "sa?num_sweeps=10", 3, 11)
        a = wire.decode_sample_set(runner.execute(traced))
        b = wire.decode_sample_set(runner.execute(untraced))
        assert (a.assignments == b.assignments).all()
        assert (a.energies == b.energies).all()

    def test_protocol_negotiation_spans_versions(self):
        assert wire.PROTOCOL_VERSION == 2
        assert wire.negotiate_protocol([1]) == 1  # old peer
        assert wire.negotiate_protocol([1, 2]) == 2
        assert wire.negotiate_protocol([2, 99]) == 2
        assert wire.negotiate_protocol([99]) is None


# ------------------------------------------------------------- stitched trees
class TestStitchedTraces:
    def test_remote_solve_yields_one_stitched_tree(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        obs.configure_tracing(sink)
        model = random_qubo(12, rng=2)
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address])
            with obs.span("client"):
                with SolveService(backend=backend, max_workers=2) as service:
                    service.solve(model, solver="sa?num_sweeps=10", num_reads=3, seed=5)
            backend.close()
        obs.reset_tracing()

        events = read_events(sink)
        assert len({e["trace_id"] for e in events}) == 1
        by_id = span_index(events)

        def parent_name(event):
            parent = by_id.get(event["parent_id"])
            return parent["name"] if parent else None

        chain = {}
        for event in events:
            chain[event["name"]] = parent_name(event)
        assert chain["engine.sample"] == "worker.solve"
        assert chain["worker.solve"] == "worker.request"
        assert chain["worker.queue_wait"] == "worker.request"
        assert chain["worker.request"] == "remote.rpc"
        assert chain["remote.rpc"] == "remote.run"
        assert chain["remote.run"] == "service.solve"
        assert chain["service.solve"] == "client"
        assert chain["client"] is None

    def test_worker_spans_root_their_own_trace_without_client_context(self, tmp_path):
        """An untraced (old) client still produces a coherent worker-side tree."""
        sink = tmp_path / "trace.jsonl"
        model = random_qubo(10, rng=2)
        with WorkerServer() as server:
            # Client side untraced: RemoteBackend sends no trace header.
            backend = RemoteBackend(workers=[server.address])
            obs.configure_tracing(sink)  # worker (same process) traces
            backend.run(model, make_solver("sa?num_sweeps=10"), 3, 5)
            obs.reset_tracing()
            backend.close()
        events = read_events(sink)
        names = {e["name"] for e in events}
        assert "worker.request" in names and "worker.solve" in names
        roots = [e for e in events if e["parent_id"] is None]
        request = next(e for e in events if e["name"] == "worker.request")
        # With tracing shared in-process, the client-side remote spans appear
        # too; the key property is that every span joins one coherent tree.
        by_id = span_index(events)
        node = request
        while node["parent_id"] is not None:
            node = by_id[node["parent_id"]]
        assert node in roots

    def test_service_pool_threads_inherit_submitting_context(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        obs.configure_tracing(sink)
        model = random_qubo(10, rng=4)
        with obs.span("client"):
            with SolveService(max_workers=2) as service:
                service.solve(model, solver="sa?num_sweeps=10", num_reads=2, seed=3)
        obs.reset_tracing()
        events = read_events(sink)
        by_id = span_index(events)
        solve = next(e for e in events if e["name"] == "service.solve")
        assert by_id[solve["parent_id"]]["name"] == "client"
        assert solve["attrs"]["path"] == "seeded"
        assert solve["attrs"]["cache"] == "miss"

    def test_seeded_cache_hit_is_visible_in_span(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        obs.configure_tracing(sink)
        model = random_qubo(10, rng=4)
        with SolveService(max_workers=2) as service:
            service.solve(model, solver="sa?num_sweeps=10", num_reads=2, seed=3)
            service.solve(model, solver="sa?num_sweeps=10", num_reads=2, seed=3)
        obs.reset_tracing()
        caches = [
            e["attrs"]["cache"]
            for e in read_events(sink)
            if e["name"] == "service.solve"
        ]
        assert sorted(caches) == ["hit", "miss"]


# ----------------------------------------------------- determinism + stats_ack
class TestTracingNeutrality:
    def test_traced_remote_solve_is_byte_identical(self, tmp_path):
        model = random_qubo(12, rng=6)
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address])
            solver = make_solver("sa?num_sweeps=15")
            plain = backend.run(model, solver, 4, 9)
            obs.configure_tracing(tmp_path / "trace.jsonl")
            traced = backend.run(model, solver, 4, 9)
            obs.reset_tracing()
            backend.close()
        assert (plain.assignments == traced.assignments).all()
        assert (plain.energies == traced.energies).all()

    def test_stats_ack_carries_fleet_metrics(self):
        model = random_qubo(10, rng=6)
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address])
            backend.run(model, make_solver("sa?num_sweeps=10"), 2, 1)
            stats = backend.check_workers()
            worker_stats = stats[f"{server.address[0]}:{server.address[1]}"]
            assert worker_stats["schema"] == obs.STATS_SCHEMA
            assert worker_stats["served_total"] >= 1
            assert isinstance(worker_stats["metrics"], dict)
            fleet = backend.fleet_metrics()
            backend.close()
        assert any(k.startswith("qross_worker_served_total") for k in fleet)
        # Everything in the summed view is numeric (JSON-safe snapshot).
        assert all(isinstance(v, (int, float)) for v in fleet.values())

    def test_unified_stats_schema_aliases(self):
        model = random_qubo(10, rng=6)
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address])
            backend.run(model, make_solver("sa?num_sweeps=10"), 2, 1)
            remote_stats = backend.stats()
            backend.close()
            worker_stats = server.stats()
        assert remote_stats["schema"] == obs.STATS_SCHEMA
        # Canonical *_total keys mirror the legacy names, for one release.
        assert remote_stats["requests_total"] == remote_stats["requests"]
        assert remote_stats["served_total"] == remote_stats["served"]
        assert remote_stats["dials_total"] == remote_stats["dials"]
        assert worker_stats["served_total"] == worker_stats["served"]
        assert worker_stats["shed_total"] == worker_stats["shed"]

        with SolveService(max_workers=1) as service:
            service.solve(model, solver="sa?num_sweeps=10", num_reads=2, seed=0)
            service_stats = service.stats()
        assert service_stats["schema"] == obs.STATS_SCHEMA
        assert service_stats["served_total"] == service_stats["served"]
