"""Unit tests for repro.qubo.model (QUBOModel, Ising conversion, random_qubo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import IsingModel, QUBOModel, random_qubo


def brute_force_minimum(model: QUBOModel) -> float:
    """Exhaustive ground-state energy for tiny models."""
    n = model.num_variables
    best = np.inf
    for bits in range(2**n):
        x = np.array([(bits >> i) & 1 for i in range(n)], dtype=float)
        best = min(best, model.energy(x))
    return best


class TestQUBOModelBasics:
    def test_symmetrisation_preserves_energy(self):
        Q = np.array([[1.0, 2.0], [0.0, -1.0]])
        model = QUBOModel(Q)
        x = np.array([1.0, 1.0])
        assert model.energy(x) == pytest.approx(1.0 + 2.0 - 1.0)
        np.testing.assert_allclose(model.Q, model.Q.T)

    def test_q_is_read_only(self):
        model = QUBOModel(np.eye(3))
        with pytest.raises(ValueError):
            model.Q[0, 0] = 5.0

    def test_offset_added_to_energy(self):
        model = QUBOModel(np.zeros((2, 2)), offset=3.5)
        assert model.energy(np.zeros(2)) == pytest.approx(3.5)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            QUBOModel(np.ones((2, 3)))

    def test_energy_shape_validation(self):
        model = QUBOModel(np.eye(3))
        with pytest.raises(ValueError):
            model.energy(np.zeros(2))

    def test_energies_batch_matches_scalar(self):
        rng = np.random.default_rng(0)
        model = random_qubo(6, rng=rng)
        X = rng.integers(0, 2, size=(10, 6)).astype(float)
        batch = model.energies(X)
        scalar = np.array([model.energy(x) for x in X])
        np.testing.assert_allclose(batch, scalar)

    def test_energies_batch_shape_validation(self):
        model = QUBOModel(np.eye(3))
        with pytest.raises(ValueError):
            model.energies(np.zeros((4, 2)))


class TestLocalFields:
    def test_local_fields_match_explicit_flips(self):
        rng = np.random.default_rng(1)
        model = random_qubo(5, rng=rng)
        X = rng.integers(0, 2, size=(4, 5)).astype(float)
        deltas = model.local_fields(X)
        for b in range(4):
            for i in range(5):
                flipped = X[b].copy()
                flipped[i] = 1.0 - flipped[i]
                expected = model.energy(flipped) - model.energy(X[b])
                assert deltas[b, i] == pytest.approx(expected, abs=1e-9)


class TestDictConversion:
    def test_from_dict_roundtrip(self):
        coeffs = {(0, 0): 1.5, (0, 1): -2.0, (1, 2): 0.5}
        model = QUBOModel.from_dict(coeffs, num_variables=3)
        back = model.to_dict()
        assert back[(0, 0)] == pytest.approx(1.5)
        assert back[(0, 1)] == pytest.approx(-2.0)
        assert back[(1, 2)] == pytest.approx(0.5)

    def test_from_dict_infers_size(self):
        model = QUBOModel.from_dict({(2, 4): 1.0})
        assert model.num_variables == 5

    def test_from_dict_empty_requires_size(self):
        with pytest.raises(ValueError):
            QUBOModel.from_dict({})

    def test_from_dict_out_of_range(self):
        with pytest.raises(ValueError):
            QUBOModel.from_dict({(0, 5): 1.0}, num_variables=3)


class TestAlgebra:
    def test_addition_adds_energies(self):
        rng = np.random.default_rng(2)
        a = random_qubo(4, rng=rng)
        b = random_qubo(4, rng=rng)
        x = rng.integers(0, 2, size=4).astype(float)
        assert (a + b).energy(x) == pytest.approx(a.energy(x) + b.energy(x))

    def test_addition_size_mismatch(self):
        with pytest.raises(ValueError):
            _ = QUBOModel(np.eye(2)) + QUBOModel(np.eye(3))

    def test_scaling(self):
        rng = np.random.default_rng(3)
        model = random_qubo(4, rng=rng)
        x = rng.integers(0, 2, size=4).astype(float)
        assert (2.5 * model).energy(x) == pytest.approx(2.5 * model.energy(x))

    def test_scaled_offset(self):
        model = QUBOModel(np.zeros((2, 2)), offset=2.0)
        assert model.scaled(3.0).offset == pytest.approx(6.0)


class TestIsingConversion:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_energy_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        model = random_qubo(6, rng=rng)
        ising = model.to_ising()
        for _ in range(10):
            x = rng.integers(0, 2, size=6).astype(float)
            s = 2.0 * x - 1.0
            ising_energy = float(ising.h @ s + s @ ising.J @ s + ising.offset)
            assert ising_energy == pytest.approx(model.energy(x), rel=1e-9, abs=1e-9)

    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        model = random_qubo(5, rng=rng)
        back = QUBOModel.from_ising(model.to_ising())
        for _ in range(8):
            x = rng.integers(0, 2, size=5).astype(float)
            assert back.energy(x) == pytest.approx(model.energy(x), abs=1e-9)

    def test_ising_j_zero_diagonal(self):
        ising = random_qubo(4, rng=0).to_ising()
        np.testing.assert_allclose(np.diag(ising.J), 0.0)

    def test_from_ising_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError):
            QUBOModel.from_ising(IsingModel(h=np.zeros(2), J=np.eye(2), offset=0.0))


class TestRandomQubo:
    def test_shape_and_symmetry(self):
        model = random_qubo(7, rng=0)
        assert model.num_variables == 7
        np.testing.assert_allclose(model.Q, model.Q.T)

    def test_density_reduces_nonzeros(self):
        dense = random_qubo(20, density=1.0, rng=0)
        sparse = random_qubo(20, density=0.2, rng=0)
        assert np.count_nonzero(sparse.Q) < np.count_nonzero(dense.Q)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_qubo(0)
        with pytest.raises(ValueError):
            random_qubo(5, density=0.0)

    def test_fingerprint_stable_and_distinct(self):
        a = random_qubo(5, rng=0)
        b = random_qubo(5, rng=0)
        c = random_qubo(5, rng=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_max_abs_coefficient(self):
        model = QUBOModel(np.array([[0.0, -3.0], [-3.0, 1.0]]))
        assert model.max_abs_coefficient() == pytest.approx(3.0)
