"""Interface invariants shared by every QUBO solver backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import QUBOModel, random_qubo
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


def all_solvers():
    """One cheaply-configured instance of every backend."""
    return [
        RandomSolver(),
        SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=20)),
        DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=8)),
        TabuSearchSolver(TabuSearchConfig(num_steps=60)),
        QbsolvSolver(QbsolvConfig(subproblem_size=6, max_rounds=2)),
        QuantumAnnealerSolver(),
    ]


SOLVER_IDS = [solver.name for solver in all_solvers()]


@pytest.fixture(params=all_solvers(), ids=SOLVER_IDS)
def solver(request):
    return request.param


@pytest.fixture
def small_model() -> QUBOModel:
    return random_qubo(10, rng=3)


class TestSolverInterface:
    def test_returns_requested_number_of_reads(self, solver, small_model):
        samples = solver.sample(small_model, num_reads=5, rng=0)
        assert samples.num_samples == 5
        assert samples.num_variables == 10

    def test_assignments_are_binary(self, solver, small_model):
        samples = solver.sample(small_model, num_reads=4, rng=0)
        assert set(np.unique(samples.assignments)).issubset({0, 1})

    def test_energies_match_model(self, solver, small_model):
        samples = solver.sample(small_model, num_reads=4, rng=0)
        recomputed = small_model.energies(samples.assignments.astype(float))
        np.testing.assert_allclose(samples.energies, recomputed, rtol=1e-9, atol=1e-9)

    def test_deterministic_given_seed(self, solver, small_model):
        if isinstance(solver, QuantumAnnealerSolver):
            pytest.skip("noise model consumes extra random numbers by design")
        first = solver.sample(small_model, num_reads=3, rng=123)
        second = solver.sample(small_model, num_reads=3, rng=123)
        np.testing.assert_array_equal(first.assignments, second.assignments)

    def test_invalid_num_reads(self, solver, small_model):
        with pytest.raises(ValueError):
            solver.sample(small_model, num_reads=0)

    def test_sample_best_returns_assignment(self, solver, small_model):
        best = solver.sample_best(small_model, num_reads=3, rng=0)
        assert best.shape == (10,)

    def test_info_contains_solver_name(self, solver, small_model):
        samples = solver.sample(small_model, num_reads=2, rng=0)
        assert samples.solver_name == solver.name
        assert samples.info["solver"] == solver.name
        assert samples.info["wall_time_s"] >= 0.0


@pytest.mark.slow
class TestOptimisationQuality:
    """Every non-trivial solver should beat random sampling on a simple QUBO."""

    @pytest.mark.parametrize(
        "make_solver",
        [
            lambda: SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=50)),
            lambda: DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=20)),
            lambda: TabuSearchSolver(TabuSearchConfig(num_steps=200)),
            lambda: QbsolvSolver(QbsolvConfig(subproblem_size=8, max_rounds=3)),
        ],
        ids=["sa", "da", "tabu", "qbsolv"],
    )
    def test_finds_ground_state_of_separable_qubo(self, make_solver):
        # Separable QUBO: optimal assignment sets exactly the variables with
        # negative diagonal, ground energy is the sum of the negative entries.
        diag = np.array([-3.0, 2.0, -1.0, 4.0, -2.0, 1.0, -0.5, 0.5])
        model = QUBOModel(np.diag(diag))
        ground = diag[diag < 0].sum()
        samples = make_solver().sample(model, num_reads=4, rng=0)
        assert samples.best.energy == pytest.approx(ground, abs=1e-9)

    def test_annealers_beat_random_on_dense_qubo(self):
        model = random_qubo(30, rng=7)
        random_best = RandomSolver().sample(model, num_reads=20, rng=0).best.energy
        sa_best = (
            SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=60))
            .sample(model, num_reads=8, rng=0)
            .best.energy
        )
        da_best = (
            DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=25))
            .sample(model, num_reads=8, rng=0)
            .best.energy
        )
        assert sa_best < random_best
        assert da_best < random_best
