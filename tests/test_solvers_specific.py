"""Backend-specific solver tests: schedules, configs and behavioural details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import QUBOModel, random_qubo
from repro.qubo.precision import AnalogNoiseModel
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.schedules import (
    GeometricSchedule,
    LinearSchedule,
    default_temperature_range,
    resolve_schedule,
)
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


class TestSchedules:
    def test_geometric_endpoints(self):
        temps = GeometricSchedule(t_initial=10.0, t_final=0.1)(5)
        assert temps[0] == pytest.approx(10.0)
        assert temps[-1] == pytest.approx(0.1)
        assert np.all(np.diff(temps) < 0)

    def test_geometric_single_sweep(self):
        temps = GeometricSchedule(t_initial=4.0, t_final=1.0)(1)
        assert temps.shape == (1,)
        assert temps[0] == pytest.approx(4.0)

    def test_linear_endpoints(self):
        temps = LinearSchedule(t_initial=5.0, t_final=1.0)(9)
        assert temps[0] == pytest.approx(5.0)
        assert temps[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(np.diff(temps), np.diff(temps)[0])

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            GeometricSchedule(t_initial=1.0, t_final=2.0)
        with pytest.raises(ValueError):
            LinearSchedule(t_initial=-1.0, t_final=0.5)
        with pytest.raises(ValueError):
            GeometricSchedule(t_initial=1.0, t_final=0.5)(0)

    def test_default_range_scales_with_coefficients(self):
        small = default_temperature_range(random_qubo(10, scale=1.0, rng=0))
        large = default_temperature_range(random_qubo(10, scale=100.0, rng=0))
        assert large[0] > small[0]
        assert small[0] > small[1] > 0

    def test_resolve_schedule_prefers_explicit(self):
        model = random_qubo(5, rng=0)
        explicit = LinearSchedule(t_initial=2.0, t_final=1.0)
        assert resolve_schedule(model, explicit) is explicit
        automatic = resolve_schedule(model, None)
        assert isinstance(automatic, GeometricSchedule)


class TestConfigValidation:
    def test_sa_config(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingConfig(num_sweeps=0)

    def test_da_config(self):
        with pytest.raises(ValueError):
            DigitalAnnealerConfig(num_steps=0)
        with pytest.raises(ValueError):
            DigitalAnnealerConfig(steps_per_variable=0)
        with pytest.raises(ValueError):
            DigitalAnnealerConfig(offset_increase_rate=-1.0)

    def test_tabu_config(self):
        with pytest.raises(ValueError):
            TabuSearchConfig(num_steps=0)
        with pytest.raises(ValueError):
            TabuSearchConfig(restart_after=0)
        with pytest.raises(ValueError):
            TabuSearchConfig(tenure=-1)

    def test_qbsolv_config(self):
        with pytest.raises(ValueError):
            QbsolvConfig(subproblem_size=1)
        with pytest.raises(ValueError):
            QbsolvConfig(max_rounds=0)
        with pytest.raises(ValueError):
            QbsolvConfig(num_restarts=0)


class TestDigitalAnnealer:
    def test_explicit_step_count_used(self):
        solver = DigitalAnnealerSolver(DigitalAnnealerConfig(num_steps=17))
        samples = solver.sample(random_qubo(6, rng=0), num_reads=2, rng=0)
        assert samples.info["num_steps"] == 17

    def test_steps_scale_with_size(self):
        solver = DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=5))
        samples = solver.sample(random_qubo(8, rng=0), num_reads=1, rng=0)
        assert samples.info["num_steps"] == 40

    def test_returns_best_seen_not_final(self):
        # The DA keeps the best state seen during the walk, so its reported
        # energy can never be worse than a single random state from the seed.
        model = random_qubo(15, rng=1)
        solver = DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=15))
        samples = solver.sample(model, num_reads=6, rng=2)
        random_energy = model.energies(
            np.random.default_rng(2).integers(0, 2, size=(6, 15)).astype(float)
        ).min()
        assert samples.best.energy <= random_energy + 1e-9


class TestTabuSearch:
    def test_refine_improves_or_keeps_energy(self):
        model = random_qubo(12, rng=4)
        solver = TabuSearchSolver(TabuSearchConfig(num_steps=150))
        start = np.random.default_rng(0).integers(0, 2, size=12).astype(np.int8)
        refined = solver.refine(model, start, rng=0)
        assert model.energy(refined.astype(float)) <= model.energy(start.astype(float)) + 1e-9

    def test_auto_tenure_for_small_problems(self):
        solver = TabuSearchSolver(TabuSearchConfig(num_steps=30))
        samples = solver.sample(random_qubo(4, rng=0), num_reads=1, rng=0)
        assert samples.num_samples == 1


class TestQbsolv:
    def test_handles_problems_smaller_than_window(self):
        solver = QbsolvSolver(QbsolvConfig(subproblem_size=64, max_rounds=2))
        samples = solver.sample(random_qubo(6, rng=0), num_reads=2, rng=0)
        assert samples.num_samples == 2

    def test_decomposition_matches_tabu_on_small_problem(self):
        # When the window covers the whole problem, qbsolv reduces to tabu and
        # should find the separable ground state exactly.
        diag = np.array([-2.0, 1.0, -4.0, 0.5, -1.0])
        model = QUBOModel(np.diag(diag))
        solver = QbsolvSolver(QbsolvConfig(subproblem_size=5, max_rounds=2))
        best = solver.sample(model, num_reads=2, rng=0).best
        assert best.energy == pytest.approx(diag[diag < 0].sum())

    def test_multiple_restarts_never_hurt(self):
        model = random_qubo(20, rng=9)
        single = QbsolvSolver(QbsolvConfig(subproblem_size=10, max_rounds=2, num_restarts=1))
        multi = QbsolvSolver(QbsolvConfig(subproblem_size=10, max_rounds=2, num_restarts=3))
        single_best = single.sample(model, num_reads=1, rng=5).best.energy
        multi_best = multi.sample(model, num_reads=1, rng=5).best.energy
        assert multi_best <= single_best + 1e-9


class TestQuantumAnnealer:
    def test_energies_scored_against_exact_model(self):
        model = random_qubo(8, rng=0)
        solver = QuantumAnnealerSolver()
        samples = solver.sample(model, num_reads=4, rng=0)
        recomputed = model.energies(samples.assignments.astype(float))
        np.testing.assert_allclose(samples.energies, recomputed)

    def test_noise_metadata_reported(self):
        config = QuantumAnnealerConfig(noise=AnalogNoiseModel(relative_error=0.07))
        samples = QuantumAnnealerSolver(config).sample(random_qubo(6, rng=0), num_reads=2, rng=0)
        assert samples.info["relative_error"] == pytest.approx(0.07)

    def test_noisier_device_gives_worse_or_equal_quality(self):
        # With a huge dynamic range the noisy device should, on average, return
        # higher exact energies than the noiseless annealer.
        Q = np.diag(np.concatenate([np.full(5, -1.0), np.full(5, -1000.0)]))
        model = QUBOModel(Q)
        quiet = QuantumAnnealerSolver(
            QuantumAnnealerConfig(noise=AnalogNoiseModel(0.0, 0.0), quantization=None)
        )
        noisy = QuantumAnnealerSolver(
            QuantumAnnealerConfig(noise=AnalogNoiseModel(relative_error=0.5, absolute_error=0.5), quantization=None)
        )
        quiet_energy = np.mean([quiet.sample(model, num_reads=4, rng=s).best.energy for s in range(4)])
        noisy_energy = np.mean([noisy.sample(model, num_reads=4, rng=s).best.energy for s in range(4)])
        assert quiet_energy <= noisy_energy + 1e-9
