"""Shared fixtures for the test suite.

Expensive artefacts (the trained surrogate and the surrogate dataset behind it)
are session-scoped so the many tests that need them pay the cost only once.
All fixtures use tiny instances — the goal of the unit suite is correctness of
behaviour and invariants, not paper-scale numbers (those live in benchmarks/).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import SamplingPlan, collect_training_data
from repro.core.features import TSPStatisticsExtractor
from repro.core.surrogate import SolverSurrogate, SurrogateConfig
from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.generator import SyntheticTSPConfig, generate_dataset, generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.tuning.base import ParameterBounds


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tsp_instance():
    """A 6-city Euclidean instance (small enough for brute force)."""
    return generate_instance(6, distribution="uniform", rng=7, name="fixture-tsp6")


@pytest.fixture
def tsp_problem(tsp_instance) -> TSPProblem:
    return TSPProblem(tsp_instance)


@pytest.fixture
def mvc_instance():
    """A 10-vertex weighted MVC instance."""
    return generate_mvc_instance(RandomMVCConfig(num_vertices=10, edge_probability=0.4), rng=11)


@pytest.fixture
def mvc_problem(mvc_instance) -> MVCProblem:
    return MVCProblem(mvc_instance)


@pytest.fixture
def fast_da_solver() -> DigitalAnnealerSolver:
    """Digital-Annealer-style solver sized for tiny test QUBOs."""
    return DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=10))


@pytest.fixture
def fast_sa_solver() -> SimulatedAnnealingSolver:
    return SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=30))


@pytest.fixture(scope="session")
def training_problems():
    """Eight tiny synthetic instances used to train the session surrogate."""
    config = SyntheticTSPConfig(min_cities=5, max_cities=7)
    instances = generate_dataset(8, config=config, rng=3, name_prefix="train")
    return [TSPProblem(instance) for instance in instances]


@pytest.fixture(scope="session")
def surrogate_dataset(training_problems):
    """Surrogate training data collected once per test session."""
    solver = DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=10))
    plan = SamplingPlan(
        coarse_multipliers=(0.15, 0.4, 0.7, 0.9, 1.1, 1.5, 2.2),
        num_refinement_points=3,
        num_reads=12,
    )
    return collect_training_data(training_problems, solver, TSPStatisticsExtractor(), plan=plan, rng=5)


@pytest.fixture(scope="session")
def trained_surrogate(surrogate_dataset) -> SolverSurrogate:
    """A surrogate trained on the session dataset (coarse but usable)."""
    surrogate = SolverSurrogate(
        TSPStatisticsExtractor(),
        config=SurrogateConfig(hidden_sizes=(32, 32), num_epochs=120, patience=30),
        rng=0,
    )
    surrogate.fit(surrogate_dataset, rng=0)
    return surrogate


@pytest.fixture
def bounds_for(tsp_problem) -> ParameterBounds:
    scale = tsp_problem.relaxation_scale()
    return ParameterBounds(low=0.05 * scale, high=4.0 * scale)
