"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # hypothesis example generation dominates the fast run
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fitness import expected_minimum_fitness
from repro.core.strategies.online_fitting import fit_sigmoid, sigmoid_ansatz
from repro.experiments.metrics import gap_curve, optimality_gap
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.preprocessing import minimise_distance_variance
from repro.problems.tsp.qubo import TSPProblem, assignment_from_tour, decode_assignment
from repro.qubo.builder import LinearConstraints
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.tuning.base import ParameterBounds, TrialHistory, TrialResult

# Shared settings: these tests build numpy objects, which hypothesis flags as
# slow data generation; the deadline is disabled for robustness on slow CI.
RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def symmetric_matrices(max_size: int = 6):
    """Strategy producing small symmetric float matrices."""
    return st.integers(min_value=2, max_value=max_size).flatmap(
        lambda n: arrays(
            dtype=np.float64,
            shape=(n, n),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
        ).map(lambda m: (m + m.T) / 2.0)
    )


def binary_vectors(length: int):
    return arrays(dtype=np.int8, shape=(length,), elements=st.integers(0, 1))


class TestQUBOProperties:
    @RELAXED
    @given(Q=symmetric_matrices())
    def test_symmetrisation_never_changes_energy(self, Q):
        model = QUBOModel(Q)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=Q.shape[0]).astype(float)
        direct = float(x @ Q @ x)
        assert model.energy(x) == pytest.approx(direct, rel=1e-9, abs=1e-9)

    @RELAXED
    @given(Q=symmetric_matrices())
    def test_ising_roundtrip_preserves_energy(self, Q):
        model = QUBOModel(Q)
        back = QUBOModel.from_ising(model.to_ising())
        rng = np.random.default_rng(1)
        for _ in range(4):
            x = rng.integers(0, 2, size=Q.shape[0]).astype(float)
            assert back.energy(x) == pytest.approx(model.energy(x), rel=1e-8, abs=1e-7)

    @RELAXED
    @given(Q=symmetric_matrices(), scale=st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_is_linear_in_energy(self, Q, scale):
        model = QUBOModel(Q)
        x = np.random.default_rng(2).integers(0, 2, size=Q.shape[0]).astype(float)
        assert model.scaled(scale).energy(x) == pytest.approx(scale * model.energy(x), rel=1e-9, abs=1e-9)

    @RELAXED
    @given(Q=symmetric_matrices(max_size=5))
    def test_local_fields_consistent_with_energy_differences(self, Q):
        model = QUBOModel(Q)
        rng = np.random.default_rng(3)
        X = rng.integers(0, 2, size=(2, Q.shape[0])).astype(float)
        deltas = model.local_fields(X)
        for b in range(2):
            i = int(rng.integers(0, Q.shape[0]))
            flipped = X[b].copy()
            flipped[i] = 1 - flipped[i]
            assert deltas[b, i] == pytest.approx(model.energy(flipped) - model.energy(X[b]), abs=1e-7)


class TestConstraintProperties:
    @RELAXED
    @given(
        C=arrays(
            dtype=np.float64,
            shape=(2, 5),
            elements=st.floats(min_value=-3, max_value=3, allow_nan=False, allow_infinity=False),
        ),
        d=arrays(
            dtype=np.float64,
            shape=(2,),
            elements=st.floats(min_value=-3, max_value=3, allow_nan=False, allow_infinity=False),
        ),
        x=binary_vectors(5),
    )
    def test_penalty_qubo_equals_squared_violation(self, C, d, x):
        constraints = LinearConstraints(C=C, d=d)
        penalty = constraints.penalty_qubo()
        assert penalty.energy(x.astype(float)) == pytest.approx(
            constraints.violation(x.astype(float)), rel=1e-9, abs=1e-7
        )


class TestSampleSetProperties:
    @RELAXED
    @given(
        energies=arrays(
            dtype=np.float64,
            shape=st.integers(1, 30),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
        )
    )
    def test_best_is_minimum_and_sorted(self, energies):
        assignments = np.zeros((energies.size, 3), dtype=np.int8)
        samples = SampleSet(assignments, energies)
        assert samples.best.energy == pytest.approx(energies.min())
        assert np.all(np.diff(samples.energies) >= 0)

    @RELAXED
    @given(
        energies=arrays(
            dtype=np.float64,
            shape=st.integers(2, 20),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
        ),
        threshold=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_probability_of_feasibility_in_unit_interval(self, energies, threshold):
        assignments = np.zeros((energies.size, 2), dtype=np.int8)
        samples = SampleSet(assignments, energies)
        pf = samples.probability_of_feasibility(lambda _x: bool(threshold > 0))
        assert pf in (0.0, 1.0)


class TestTSPProperties:
    @RELAXED
    @given(
        coords=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 8), st.just(2)),
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        ),
        seed=st.integers(0, 100),
    )
    def test_tour_encoding_roundtrip_and_energy(self, coords, seed):
        # Degenerate coordinate sets (all identical points) are still valid TSPs.
        instance = TSPInstance.from_coordinates(coords)
        problem = TSPProblem(instance)
        rng = np.random.default_rng(seed)
        tour = rng.permutation(instance.num_cities)
        assignment = assignment_from_tour(tour, instance.num_cities)
        decoded = decode_assignment(assignment, instance.num_cities)
        np.testing.assert_array_equal(decoded, tour)
        assert problem.is_feasible(assignment)
        assert problem.builder().objective_energy(assignment) == pytest.approx(
            instance.tour_length(tour), rel=1e-9, abs=1e-6
        )

    @RELAXED
    @given(
        coords=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 7), st.just(2)),
            elements=st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
        )
    )
    def test_mvodm_keeps_distances_non_negative_and_symmetric(self, coords):
        instance = TSPInstance.from_coordinates(coords)
        result = minimise_distance_variance(instance)
        transformed = result.transformed_instance.distances
        assert np.all(transformed >= -1e-9)
        np.testing.assert_allclose(transformed, transformed.T, atol=1e-9)
        assert result.transformed_variance <= result.original_variance + 1e-9


class TestStrategyAndMetricProperties:
    @RELAXED
    @given(
        theta_scale=st.floats(min_value=0.1, max_value=3.0),
        midpoint=st.floats(min_value=5.0, max_value=45.0),
    )
    def test_sigmoid_fit_recovers_midpoint(self, theta_scale, midpoint):
        parameters = np.linspace(0.0, 50.0, 40)
        probabilities = sigmoid_ansatz(parameters, theta_scale, theta_scale * midpoint)
        fit = fit_sigmoid(parameters, probabilities)
        assert fit.theta_offset / fit.theta_scale == pytest.approx(midpoint, rel=0.2, abs=2.0)

    @RELAXED
    @given(
        pf=st.floats(min_value=0.01, max_value=1.0),
        mean=st.floats(min_value=1.0, max_value=1e3),
        std=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_expected_minimum_is_at_most_mean_plus_tail(self, pf, mean, std):
        value = expected_minimum_fitness(pf, mean, std, batch_size=64)[0]
        assert np.isfinite(value)
        assert value <= mean + 8.5 * max(std, 1e-9)

    @RELAXED
    @given(
        fitnesses=st.lists(
            st.one_of(st.none(), st.floats(min_value=10.0, max_value=100.0)),
            min_size=1,
            max_size=15,
        )
    )
    def test_gap_curve_is_monotone_non_increasing(self, fitnesses):
        history = TrialHistory()
        for value in fitnesses:
            history.append(
                TrialResult(
                    parameter=1.0,
                    probability_of_feasibility=0.0 if value is None else 1.0,
                    best_fitness=value,
                )
            )
        curve = gap_curve(history, reference_fitness=10.0, num_trials=len(fitnesses))
        # Before the first feasible trial the gap is the fixed infeasibility
        # charge; from the first feasible trial onwards it never increases
        # (running best fitness is monotone).
        feasible_seen = [value is not None for value in fitnesses]
        if any(feasible_seen):
            first = feasible_seen.index(True)
            assert np.all(curve[:first] == 1.0)
            assert np.all(np.diff(curve[first:]) <= 1e-12)
        else:
            assert np.all(curve == 1.0)
        assert np.all((curve >= 0) & (curve <= 9.1))

    @RELAXED
    @given(
        best=st.floats(min_value=1.0, max_value=1e4),
        reference=st.floats(min_value=1.0, max_value=1e4),
    )
    def test_optimality_gap_non_negative(self, best, reference):
        assert optimality_gap(best, reference) >= 0.0

    @RELAXED
    @given(
        low=st.floats(min_value=0.1, max_value=10.0),
        span=st.floats(min_value=0.1, max_value=100.0),
        value=st.floats(min_value=-1e3, max_value=1e3),
    )
    def test_bounds_clip_always_inside(self, low, span, value):
        bounds = ParameterBounds(low=low, high=low + span)
        clipped = bounds.clip(value)
        assert bounds.low <= clipped <= bounds.high
