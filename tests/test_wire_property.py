"""Property-style randomized round-trip tests for every wire frame type.

Each test drives :mod:`repro.service.distributed.wire` through many seeded
random cases, biased toward the degenerate shapes that byte-precise framing
code gets wrong: one-variable models, zero-nnz CSR triplets, empty and
single-row sample sets, zero-length buffers and unicode metadata.  Round
trips must preserve *identity* — model fingerprints, raw array bytes — not
just approximate equality.  (Plain seeded randomization, not `hypothesis`:
the CI image installs only numpy/scipy/pytest.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.model import QUBOModel, random_qubo
from repro.qubo.sampleset import SampleSet
from repro.service.distributed import wire
from repro.service.requests import SolveRequest, SolveResult
from repro.utils.sparse import scipy_sparse

NUM_TRIALS = 25

UNICODE_NAMES = ["", "plain", "ünïcode-Ω", "注釈付き", "emoji-☃-model", "tab\tname"]


def random_dense_model(rng: np.random.Generator) -> QUBOModel:
    n = int(rng.choice([1, 1, 2, 3, 9, 17]))  # bias toward tiny shapes
    Q = rng.normal(size=(n, n))
    return QUBOModel(
        Q,
        offset=float(rng.normal()),
        name=str(rng.choice(UNICODE_NAMES)),
    )


def random_sparse_model(rng: np.random.Generator) -> QUBOModel:
    n = int(rng.choice([600, 700]))
    nnz = int(rng.choice([0, 1, 5, 200]))  # zero-nnz is a first-class case
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.normal(size=nnz)
    Q = scipy_sparse.coo_array((vals, (rows, cols)), shape=(n, n)).tocsr()
    return QUBOModel(Q, offset=float(rng.normal()), name=str(rng.choice(UNICODE_NAMES)))


def random_sample_set(rng: np.random.Generator, allow_empty: bool = True) -> SampleSet:
    choices = [0, 1, 1, 2, 6] if allow_empty else [1, 1, 2, 6]
    batch = int(rng.choice(choices))
    n = int(rng.choice([1, 3, 11]))
    return SampleSet(
        rng.integers(0, 2, size=(batch, n), dtype=np.int8),
        rng.normal(size=batch),
        num_occurrences=rng.integers(1, 5, size=batch),
        solver_name=str(rng.choice(UNICODE_NAMES)),
        info={"wall_time_s": float(rng.random()), "nested": {"steps": int(rng.integers(100))}},
    )


def assert_sample_sets_identical(a: SampleSet, b: SampleSet) -> None:
    assert np.array_equal(a.assignments, b.assignments)
    assert a.assignments.dtype == b.assignments.dtype
    assert np.array_equal(a.energies, b.energies)
    assert np.array_equal(a.num_occurrences, b.num_occurrences)
    assert a.solver_name == b.solver_name
    assert a.info == b.info


class TestRawFraming:
    def test_random_buffer_manifests_round_trip(self):
        rng = np.random.default_rng(2024)
        dtypes = [np.float64, np.float32, np.int64, np.int32, np.int8, np.uint8]
        for _ in range(NUM_TRIALS):
            buffers = []
            for _ in range(int(rng.integers(0, 5))):
                shape = tuple(int(s) for s in rng.integers(0, 4, size=int(rng.integers(0, 3))))
                dtype = dtypes[int(rng.integers(len(dtypes)))]
                buffers.append((rng.normal(size=shape) * 100).astype(dtype))
            header = {"tag": str(rng.choice(UNICODE_NAMES)), "n": int(rng.integers(100))}
            kind, decoded_header, decoded = wire.decode_frame(
                wire.encode_frame("raw", header, buffers)
            )
            assert kind == "raw"
            assert decoded_header["tag"] == header["tag"]
            assert decoded_header["n"] == header["n"]
            assert len(decoded) == len(buffers)
            for sent, got in zip(buffers, decoded):
                assert sent.shape == got.shape
                assert sent.dtype == got.dtype
                assert np.array_equal(sent, got)

    def test_zero_dimensional_buffer_round_trips(self):
        scalar = np.array(3.25)
        _, _, decoded = wire.decode_frame(wire.encode_frame("raw", {}, [scalar]))
        assert decoded[0].shape == () and decoded[0] == 3.25


class TestModelFrames:
    def test_random_dense_models_fingerprint_identical(self):
        rng = np.random.default_rng(7)
        for _ in range(NUM_TRIALS):
            model = random_dense_model(rng)
            decoded = wire.decode_model(wire.encode_model(model))
            assert decoded.fingerprint() == model.fingerprint()
            assert decoded.name == model.name
            assert decoded.offset == model.offset
            states = rng.integers(0, 2, size=(3, model.num_variables)).astype(np.int8)
            assert np.array_equal(decoded.energies(states), model.energies(states))

    def test_one_variable_model(self):
        model = QUBOModel(np.array([[2.5]]), offset=-1.0, name="n=1")
        decoded = wire.decode_model(wire.encode_model(model))
        assert decoded.fingerprint() == model.fingerprint()
        assert decoded.num_variables == 1

    @pytest.mark.skipif(scipy_sparse is None, reason="scipy not available")
    def test_random_sparse_models_stay_sparse(self):
        rng = np.random.default_rng(8)
        for _ in range(10):
            model = random_sparse_model(rng)
            decoded = wire.decode_model(wire.encode_model(model))
            assert decoded.fingerprint() == model.fingerprint()
            assert decoded.in_sparse_regime(), "decode must not densify a CSR model"

    @pytest.mark.skipif(scipy_sparse is None, reason="scipy not available")
    def test_zero_nnz_csr_round_trips(self):
        n = 640
        model = QUBOModel(
            scipy_sparse.csr_array((n, n)), offset=4.5, name="empty-graph"
        )
        decoded = wire.decode_model(wire.encode_model(model))
        assert decoded.fingerprint() == model.fingerprint()
        assert decoded.offset == 4.5
        zeros = np.zeros((2, n), dtype=np.int8)
        assert np.array_equal(decoded.energies(zeros), model.energies(zeros))


class TestSampleSetFrames:
    def test_random_sample_sets_identical(self):
        rng = np.random.default_rng(9)
        for _ in range(NUM_TRIALS):
            samples = random_sample_set(rng)
            decoded = wire.decode_sample_set(wire.encode_sample_set(samples))
            assert_sample_sets_identical(samples, decoded)

    def test_empty_sample_set(self):
        samples = SampleSet(np.zeros((0, 4), dtype=np.int8), np.zeros(0), solver_name="∅")
        decoded = wire.decode_sample_set(wire.encode_sample_set(samples))
        assert decoded.num_samples == 0
        assert decoded.num_variables == 4
        assert decoded.solver_name == "∅"

    def test_single_row_sample_set(self):
        samples = SampleSet(np.array([[1]], dtype=np.int8), np.array([-2.0]))
        decoded = wire.decode_sample_set(wire.encode_sample_set(samples))
        assert_sample_sets_identical(samples, decoded)

    def test_numpy_scalars_in_info_coerce_to_json_types(self):
        samples = SampleSet(
            np.array([[1, 0]], dtype=np.int8),
            np.array([0.5]),
            info={"steps": np.int64(7), "rate": np.float32(0.25), "flag": np.bool_(True)},
        )
        decoded = wire.decode_sample_set(wire.encode_sample_set(samples))
        assert decoded.info["steps"] == 7
        assert decoded.info["rate"] == pytest.approx(0.25)
        assert decoded.info["flag"] is True


class TestEngineCallFrames:
    def test_random_engine_calls_round_trip(self):
        rng = np.random.default_rng(10)
        specs = ["sa", "pt?num_replicas=4", "tabu?tenure=16", "da?max_parallel_flips=4"]
        for _ in range(NUM_TRIALS):
            model = random_dense_model(rng)
            spec = str(rng.choice(specs))
            reads = int(rng.integers(1, 9))
            seed = int(rng.integers(0, 2**31))
            blob = wire.encode_engine_call(model, spec, reads, seed)
            got_model, got_spec, got_reads, got_seed = wire.decode_engine_call(blob)
            assert got_model.fingerprint() == model.fingerprint()
            assert (got_spec, got_reads, got_seed) == (spec, reads, seed)

    def test_unicode_solver_spec_survives(self):
        model = random_qubo(5, rng=0)
        blob = wire.encode_engine_call(model, "sa?note=ünïcode-Ω", 2, 3)
        _, spec, _, _ = wire.decode_engine_call(blob)
        assert spec == "sa?note=ünïcode-Ω"

    def test_by_reference_call_refuses_full_decode(self):
        blob = wire.encode_engine_call_ref("abc123", "sa", 2, 3)
        with pytest.raises(wire.WireFormatError, match="by-reference"):
            wire.decode_engine_call(blob)

    def test_model_miss_frame(self):
        kind, header, buffers = wire.decode_frame(wire.encode_model_miss("deadbeef"))
        assert kind == "model_miss"
        assert header["model_ref"] == "deadbeef"
        assert buffers == []


class TestRequestResultFrames:
    def test_random_requests_round_trip(self):
        rng = np.random.default_rng(11)
        for _ in range(NUM_TRIALS):
            model = random_dense_model(rng)
            seed = None if rng.random() < 0.5 else int(rng.integers(0, 2**31))
            request = SolveRequest(
                solver=str(rng.choice(["sa", "pt", "random"])),
                model=model,
                num_reads=int(rng.integers(1, 5)),
                seed=seed,
                label=str(rng.choice(UNICODE_NAMES)),
            )
            decoded = wire.decode_request(wire.encode_request(request))
            assert decoded.resolve_model().fingerprint() == model.fingerprint()
            assert decoded.num_reads == request.num_reads
            assert decoded.seed == request.seed
            assert decoded.label == request.label

    def test_random_results_round_trip(self):
        rng = np.random.default_rng(12)
        for _ in range(10):
            model = random_dense_model(rng)
            request = SolveRequest(solver="sa", model=model, num_reads=2, seed=5)
            result = SolveResult(
                request=request,
                samples=random_sample_set(rng, allow_empty=False),
                solver_name="simulated-annealing",
                solver_fingerprint="f" * 12,
                from_cache=bool(rng.random() < 0.5),
                batched_group_size=int(rng.integers(1, 4)),
            )
            decoded = wire.decode_result(wire.encode_result(result))
            assert decoded.request.resolve_model().fingerprint() == model.fingerprint()
            assert_sample_sets_identical(result.samples, decoded.samples)
            assert decoded.solver_name == result.solver_name
            assert decoded.solver_fingerprint == result.solver_fingerprint
            assert decoded.from_cache == result.from_cache
            assert decoded.batched_group_size == result.batched_group_size
