"""Unit tests for ``repro.obs``: tracer, metrics registry, profiler, report."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import report
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_tracing():
    """Every test starts and ends with the tracer unconfigured."""
    obs.reset_tracing()
    yield
    obs.reset_tracing()


def read_events(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


# ---------------------------------------------------------------------- tracer
class TestTracer:
    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        assert not obs.tracing_enabled()
        assert obs.trace_path() is None
        # The no-op span is one shared object: no allocation per call.
        assert obs.span("a") is obs.span("b")
        with obs.span("noop") as sp:
            sp.set(ignored=1)
        assert obs.wire_context() is None

    def test_env_truthy_and_path_forms(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv(obs.TRACE_ENV, "1")
        assert obs.tracing_enabled()
        assert obs.trace_path().endswith("qross-trace.jsonl")
        obs.reset_tracing()
        sink = tmp_path / "custom.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(sink))
        assert obs.trace_path() == str(sink)
        obs.reset_tracing()
        monkeypatch.setenv(obs.TRACE_ENV, "off")
        assert not obs.tracing_enabled()

    def test_span_nesting_and_schema(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        with obs.span("outer", kind="test") as outer:
            with obs.span("inner") as inner:
                assert inner.context.trace_id == outer.context.trace_id
            outer.set(late="attr")
        events = read_events(sink)
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner_ev, outer_ev = events
        assert inner_ev["parent_id"] == outer_ev["span_id"]
        assert outer_ev["parent_id"] is None
        assert inner_ev["trace_id"] == outer_ev["trace_id"]
        assert outer_ev["attrs"] == {"kind": "test", "late": "attr"}
        for event in events:
            assert event["dur_s"] >= 0
            assert event["pid"] == os.getpid()

    def test_error_spans_are_marked(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("no")
        (event,) = read_events(sink)
        assert event["error"] == "ValueError: no"

    def test_sibling_spans_share_trace(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        a, b, root = read_events(sink)
        assert a["parent_id"] == b["parent_id"] == root["span_id"]
        assert len({e["trace_id"] for e in (a, b, root)}) == 1

    def test_use_context_carries_across_threads(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        captured = {}

        def worker(ctx):
            with obs.use_context(ctx):
                with obs.span("child"):
                    pass
            captured["after"] = obs.current_context()

        with obs.span("parent") as parent:
            thread = threading.Thread(target=worker, args=(parent.context,))
            thread.start()
            thread.join()
        child, parent_ev = read_events(sink)
        assert child["parent_id"] == parent_ev["span_id"]
        assert captured["after"] is None  # context restored on the thread

    def test_wire_context_round_trip(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        with obs.span("client") as sp:
            payload = obs.wire_context()
            assert payload == {
                "trace_id": sp.context.trace_id,
                "span_id": sp.context.span_id,
            }
        ctx = obs.context_from_wire(payload)
        assert (ctx.trace_id, ctx.span_id) == (payload["trace_id"], payload["span_id"])
        # Malformed payloads degrade to "no context", never raise.
        assert obs.context_from_wire(None) is None
        assert obs.context_from_wire({}) is None
        assert obs.context_from_wire({"trace_id": 7, "span_id": "x"}) is None

    def test_adopt_wire_context_defers_to_active_span(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        payload = {"trace_id": "aa" * 8, "span_id": "bb" * 8}
        with obs.adopt_wire_context(payload):
            with obs.span("adopted"):
                pass
        # An active span wins over the wire payload (no forked branch).
        with obs.span("active") as active:
            with obs.adopt_wire_context(payload):
                assert obs.current_context() is active.context
        events = read_events(sink)
        assert events[0]["trace_id"] == "aa" * 8
        assert events[0]["parent_id"] == "bb" * 8

    def test_line_atomicity_under_concurrent_writers(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        spans_per_thread = 50

        def hammer(tag):
            for index in range(spans_per_thread):
                with obs.span("hammer", tag=tag, index=index):
                    pass

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = read_events(sink)  # json.loads raises on any torn line
        assert len(events) == 8 * spans_per_thread
        seen = {(e["attrs"]["tag"], e["attrs"]["index"]) for e in events}
        assert len(seen) == 8 * spans_per_thread

    def test_line_atomicity_across_processes(self, tmp_path):
        """Two interpreters appending to one sink never interleave bytes."""
        sink = tmp_path / "t.jsonl"
        script = (
            "from repro import obs\n"
            f"obs.configure_tracing({str(sink)!r})\n"
            "for i in range(100):\n"
            "    with obs.span('proc', i=i):\n"
            "        pass\n"
        )
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        procs = [
            subprocess.Popen([sys.executable, "-c", script], env=env)
            for _ in range(2)
        ]
        for proc in procs:
            assert proc.wait() == 0
        events = read_events(sink)
        assert len(events) == 200
        assert len({e["pid"] for e in events}) == 2


# --------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("g")
        g.inc()
        g.dec()
        g.set(4.0)
        assert g.value == 4.0
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(10.0)
        assert h.count == 3
        assert h.bucket_counts() == (1, 1, 1)
        assert h.sum == pytest.approx(10.55)

    def test_get_or_create_and_label_fanout(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"k": "a"})
        b = reg.counter("x_total", labels={"k": "b"})
        assert a is not b
        assert reg.counter("x_total", labels={"k": "a"}) is a

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("same")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("same")
        reg.histogram("hist", buckets=(1.0,))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("hist", buckets=(2.0,))

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"k": "v"}).inc()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap['c_total{k="v"}'] == 1.0
        assert snap["h_seconds_count"] == 1
        assert snap["h_seconds_sum"] == 0.5

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("req_total", labels={"path": "a"}, help="requests").inc(3)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="a"} 3' in text
        # Cumulative buckets with the implicit +Inf bound.
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_global_helpers_share_one_registry(self):
        c = obs.counter("qross_test_obs_global_total")
        c.inc()
        assert obs.metrics_snapshot()["qross_test_obs_global_total"] >= 1.0
        assert "qross_test_obs_global_total" in obs.render_prometheus()

    def test_write_prometheus(self, tmp_path):
        obs.counter("qross_test_obs_written_total").inc()
        target = tmp_path / "metrics.prom"
        obs.write_prometheus(target)
        assert "qross_test_obs_written_total" in target.read_text()


# -------------------------------------------------------------------- profiler
class TestProfiler:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(obs.PROFILE_ENV, raising=False)
        assert obs.engine_profiler("sa") is None
        monkeypatch.setenv(obs.PROFILE_ENV, "1")
        assert obs.engine_profiler("sa") is not None

    def test_sweep_accounting(self):
        profiler = obs.SweepProfiler("test-solver")
        profiler.count_flips(100, 25)
        profiler.count_flips(100, 15)
        profiler.end_sweep()
        profiler.count_flips(100, 10)
        profiler.end_sweep()
        profiler.record_swap_round(8, 2)
        summary = profiler.finish()
        assert summary["sweeps"] == 2
        assert summary["flips_proposed"] == 300
        assert summary["flips_accepted"] == 50
        assert summary["flip_acceptance"] == pytest.approx(50 / 300)
        assert summary["swaps_proposed"] == 8
        assert summary["swap_acceptance"] == pytest.approx(0.25)
        assert summary["sweeps_per_second"] > 0

    def test_solver_integration_is_byte_neutral(self, monkeypatch):
        from repro.qubo.model import random_qubo
        from repro.solvers.parallel_tempering import (
            ParallelTemperingConfig,
            ParallelTemperingSolver,
        )

        model = random_qubo(14, rng=3)
        solver = ParallelTemperingSolver(
            ParallelTemperingConfig(num_sweeps=12, num_replicas=4, swap_interval=3)
        )
        monkeypatch.delenv(obs.PROFILE_ENV, raising=False)
        plain = solver.sample(model, num_reads=3, rng=np.random.default_rng(9))
        monkeypatch.setenv(obs.PROFILE_ENV, "1")
        profiled = solver.sample(model, num_reads=3, rng=np.random.default_rng(9))
        assert (plain.assignments == profiled.assignments).all()
        assert (plain.energies == profiled.energies).all()
        assert "engine_profile" not in plain.info
        summary = profiled.info["engine_profile"]
        assert summary["sweeps"] == 12
        assert summary["flips_proposed"] == 12 * 3 * 4 * 14
        assert summary["swaps_proposed"] == profiled.info["swaps_proposed"]


# ---------------------------------------------------------------------- report
class TestReport:
    def _write_sink(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        obs.configure_tracing(sink)
        with obs.span("client"):
            with obs.span("service.solve", solver="sa"):
                with obs.span("engine.sample"):
                    pass
        obs.reset_tracing()
        return sink

    def test_tree_rendering(self, tmp_path, capsys):
        sink = self._write_sink(tmp_path)
        assert report.main([str(sink)]) == 0
        out = capsys.readouterr().out
        assert "client" in out and "service.solve" in out and "engine.sample" in out
        # The child renders indented under its parent.
        assert out.index("client") < out.index("service.solve")

    def test_summary_only(self, tmp_path, capsys):
        sink = self._write_sink(tmp_path)
        assert report.main([str(sink), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "engine.sample" in out
        assert "count" in out

    def test_malformed_lines_are_skipped(self, tmp_path, capsys):
        sink = self._write_sink(tmp_path)
        with open(sink, "a") as handle:
            handle.write("this is not json\n")
        assert report.main([str(sink)]) == 0
        assert "client" in capsys.readouterr().out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert report.main([str(tmp_path / "absent.jsonl")]) != 0

    def test_orphan_spans_become_roots(self, tmp_path, capsys):
        sink = tmp_path / "t.jsonl"
        event = {
            "trace_id": "t" * 16,
            "span_id": "s" * 16,
            "parent_id": "missing-parent",
            "name": "lonely",
            "ts": 1.0,
            "dur_s": 0.5,
        }
        sink.write_text(json.dumps(event) + "\n")
        assert report.main([str(sink)]) == 0
        assert "lonely" in capsys.readouterr().out
