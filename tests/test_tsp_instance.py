"""Unit tests for TSPInstance and the synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.tsp.generator import (
    SyntheticTSPConfig,
    generate_dataset,
    generate_instance,
    paper_synthetic_dataset,
    train_test_split,
)
from repro.problems.tsp.instance import TSPInstance


class TestTSPInstance:
    def test_from_coordinates_builds_euclidean_matrix(self):
        coords = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        instance = TSPInstance.from_coordinates(coords)
        assert instance.distances[0, 1] == pytest.approx(3.0)
        assert instance.distances[0, 2] == pytest.approx(4.0)
        assert instance.distances[1, 2] == pytest.approx(5.0)

    def test_symmetry_enforced(self):
        asymmetric = np.array([[0.0, 1.0, 2.0], [3.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
        with pytest.raises(ValueError):
            TSPInstance(distances=asymmetric)

    def test_rejects_negative_distances(self):
        matrix = np.array([[0.0, -1.0, 1.0], [-1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        with pytest.raises(ValueError):
            TSPInstance(distances=matrix)

    def test_rejects_nonzero_diagonal(self):
        matrix = np.full((3, 3), 1.0)
        with pytest.raises(ValueError):
            TSPInstance(distances=matrix)

    def test_rejects_too_few_cities(self):
        with pytest.raises(ValueError):
            TSPInstance(distances=np.zeros((2, 2)))

    def test_tour_length_closed_cycle(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        instance = TSPInstance.from_coordinates(coords)
        assert instance.tour_length(np.array([0, 1, 2, 3])) == pytest.approx(4.0)

    def test_tour_length_requires_permutation(self):
        instance = TSPInstance.from_coordinates(np.random.default_rng(0).random((5, 2)))
        with pytest.raises(ValueError):
            instance.tour_length(np.array([0, 1, 2, 3, 3]))

    def test_tour_length_invariant_to_rotation(self):
        instance = generate_instance(7, rng=1)
        tour = np.array([3, 1, 0, 6, 2, 5, 4])
        rotated = np.roll(tour, 2)
        assert instance.tour_length(tour) == pytest.approx(instance.tour_length(rotated))

    def test_fingerprint_distinguishes_instances(self):
        a = generate_instance(6, rng=0)
        b = generate_instance(6, rng=1)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == generate_instance(6, rng=0).fingerprint()

    def test_distance_statistics_keys(self):
        stats = generate_instance(8, rng=0).distance_statistics()
        assert stats["num_cities"] == 8.0
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_scaled(self):
        instance = generate_instance(5, rng=0)
        doubled = instance.scaled(2.0)
        np.testing.assert_allclose(doubled.distances, 2.0 * instance.distances)
        with pytest.raises(ValueError):
            instance.scaled(0.0)

    def test_coordinate_shape_validation(self):
        with pytest.raises(ValueError):
            TSPInstance.from_coordinates(np.zeros((4, 3)))


class TestGenerator:
    @pytest.mark.parametrize("distribution", ["uniform", "exponential", "clustered", "ring", "grid"])
    def test_distributions_produce_valid_instances(self, distribution):
        instance = generate_instance(10, distribution=distribution, rng=0)
        assert instance.num_cities == 10
        assert instance.metadata["distribution"] == distribution
        assert np.all(instance.distances >= 0)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate_instance(10, distribution="pareto", rng=0)

    def test_size_bounds_respected(self):
        config = SyntheticTSPConfig(min_cities=5, max_cities=7)
        instances = generate_dataset(20, config=config, rng=0)
        sizes = {instance.num_cities for instance in instances}
        assert sizes.issubset({5, 6, 7})

    def test_dataset_is_reproducible(self):
        a = generate_dataset(5, rng=9)
        b = generate_dataset(5, rng=9)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.distances, y.distances)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticTSPConfig(min_cities=2)
        with pytest.raises(ValueError):
            SyntheticTSPConfig(min_cities=10, max_cities=5)
        with pytest.raises(ValueError):
            SyntheticTSPConfig(exponential_scale_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            generate_dataset(0)

    def test_train_test_split_partitions(self):
        instances = generate_dataset(10, rng=0)
        split = train_test_split(instances, test_fraction=0.2, rng=0)
        assert len(split.train) + len(split.test) == 10
        assert len(split.test) == 2
        train_names = {i.name for i in split.train}
        test_names = {i.name for i in split.test}
        assert not train_names & test_names

    def test_train_test_split_validation(self):
        instances = generate_dataset(4, rng=0)
        with pytest.raises(ValueError):
            train_test_split(instances, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(instances[:1], test_fraction=0.5)

    def test_paper_dataset_split_sizes(self):
        split = paper_synthetic_dataset(rng=1, num_instances=20)
        assert len(split.train) == 18
        assert len(split.test) == 2
