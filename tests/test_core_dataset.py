"""Unit tests for surrogate data collection and normalisation (repro.core.dataset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import (
    FeatureNormalizer,
    SamplingPlan,
    SurrogateDataset,
    SurrogateRecord,
    collect_instance_records,
    collect_training_data,
    energy_scale,
    evaluate_parameter,
    parameter_scale,
)
from repro.core.features import TSPStatisticsExtractor
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.random_solver import RandomSolver


def make_record(name: str, parameter: float, pf: float) -> SurrogateRecord:
    return SurrogateRecord(
        instance_name=name,
        features=np.array([1.0, 2.0, 3.0]),
        parameter=parameter,
        normalized_parameter=parameter,
        probability_of_feasibility=pf,
        energy_mean=10.0,
        energy_std=1.0,
        normalized_energy_mean=1.0,
        normalized_energy_std=0.1,
    )


class TestScales:
    def test_parameter_scale_matches_problem(self, tsp_problem):
        assert parameter_scale(tsp_problem) == pytest.approx(tsp_problem.relaxation_scale())

    def test_energy_scale_grows_with_size(self):
        small = TSPProblem(generate_instance(6, rng=0))
        large = TSPProblem(generate_instance(12, rng=0))
        assert energy_scale(large) > energy_scale(small)


class TestSurrogateDataset:
    def test_array_views(self):
        dataset = SurrogateDataset([make_record("a", 1.0, 0.5), make_record("b", 2.0, 1.0)])
        assert dataset.features.shape == (2, 3)
        np.testing.assert_allclose(dataset.normalized_parameters, [1.0, 2.0])
        np.testing.assert_allclose(dataset.probabilities, [0.5, 1.0])
        assert len(dataset) == 2

    def test_split_by_instance_no_leakage(self):
        records = [make_record(f"inst-{i}", float(j), 0.5) for i in range(6) for j in range(4)]
        dataset = SurrogateDataset(records)
        train, validation = dataset.split(validation_fraction=0.34, rng=0)
        train_names = {r.instance_name for r in train.records}
        validation_names = {r.instance_name for r in validation.records}
        assert not train_names & validation_names
        assert len(train) + len(validation) == len(dataset)

    def test_split_requires_multiple_instances(self):
        dataset = SurrogateDataset([make_record("only", 1.0, 0.5)] * 5)
        with pytest.raises(ValueError):
            dataset.split(0.2, rng=0)

    def test_split_fraction_validation(self):
        dataset = SurrogateDataset([make_record("a", 1.0, 0.5), make_record("b", 1.0, 0.5)])
        with pytest.raises(ValueError):
            dataset.split(0.0, rng=0)

    def test_summary_fractions_sum_to_one(self):
        dataset = SurrogateDataset(
            [make_record("a", 1.0, 0.0), make_record("a", 2.0, 0.5), make_record("a", 3.0, 1.0)]
        )
        summary = dataset.summary()
        total = (
            summary["fraction_on_slope"]
            + summary["fraction_plateau_zero"]
            + summary["fraction_plateau_one"]
        )
        assert total == pytest.approx(1.0)


class TestFeatureNormalizer:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        features = rng.normal(loc=5.0, scale=2.0, size=(100, 4))
        normalizer = FeatureNormalizer().fit(features)
        transformed = normalizer.transform(features)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_does_not_blow_up(self):
        features = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = FeatureNormalizer().fit_transform(features)
        assert np.all(np.isfinite(transformed))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureNormalizer().transform(np.ones((2, 2)))

    def test_state_roundtrip(self):
        normalizer = FeatureNormalizer().fit(np.random.default_rng(0).normal(size=(20, 3)))
        restored = FeatureNormalizer.from_state(normalizer.state())
        x = np.random.default_rng(1).normal(size=(5, 3))
        np.testing.assert_allclose(restored.transform(x), normalizer.transform(x))


class TestSamplingPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(coarse_multipliers=(1.0,))
        with pytest.raises(ValueError):
            SamplingPlan(coarse_multipliers=(0.5, -1.0))
        with pytest.raises(ValueError):
            SamplingPlan(num_reads=0)
        with pytest.raises(ValueError):
            SamplingPlan(num_refinement_points=-1)


class TestEvaluateParameter:
    def test_returns_consistent_statistics(self, tsp_problem, fast_da_solver):
        parameter = 1.2 * tsp_problem.relaxation_scale()
        pf, mean, std, best = evaluate_parameter(tsp_problem, fast_da_solver, parameter, 12, rng=0)
        assert 0.0 <= pf <= 1.0
        assert std >= 0.0
        if pf > 0:
            assert best is not None and best > 0
        else:
            assert best is None

    def test_infeasible_region_returns_none_fitness(self, tsp_problem):
        # A tiny parameter makes constraint violations nearly free; random
        # assignments are essentially never valid tours.
        parameter = 1e-6 * tsp_problem.relaxation_scale()
        pf, _, _, best = evaluate_parameter(tsp_problem, RandomSolver(), parameter, 16, rng=0)
        assert pf == 0.0
        assert best is None


class TestCollection:
    def test_collect_instance_records_covers_plan(self, tsp_problem, fast_da_solver):
        plan = SamplingPlan(coarse_multipliers=(0.2, 0.7, 1.2, 2.0), num_refinement_points=2, num_reads=8)
        records = collect_instance_records(
            tsp_problem, fast_da_solver, TSPStatisticsExtractor(), plan, rng=0
        )
        assert len(records) >= len(plan.coarse_multipliers)
        parameters = [r.parameter for r in records]
        assert parameters == sorted(parameters)
        assert all(r.instance_name == tsp_problem.name for r in records)

    def test_normalised_parameter_uses_instance_scale(self, tsp_problem, fast_da_solver):
        plan = SamplingPlan(coarse_multipliers=(0.5, 1.5), num_refinement_points=0, num_reads=6)
        records = collect_instance_records(
            tsp_problem, fast_da_solver, TSPStatisticsExtractor(), plan, rng=0
        )
        scale = tsp_problem.relaxation_scale()
        for record in records:
            assert record.normalized_parameter == pytest.approx(record.parameter / scale)

    def test_collect_training_data_multiple_instances(self, fast_da_solver):
        problems = [
            TSPProblem(generate_instance(5, rng=seed, name=f"collect-{seed}")) for seed in range(3)
        ]
        plan = SamplingPlan(coarse_multipliers=(0.3, 0.9, 1.5), num_refinement_points=1, num_reads=6)
        dataset = collect_training_data(problems, fast_da_solver, plan=plan, rng=0)
        assert len(dataset.instance_names()) == 3
        assert len(dataset) >= 9

    def test_collect_training_data_requires_problems(self, fast_da_solver):
        with pytest.raises(ValueError):
            collect_training_data([], fast_da_solver)

    def test_refinement_adds_slope_coverage(self, fast_da_solver):
        problem = TSPProblem(generate_instance(6, rng=9))
        no_refine = SamplingPlan(coarse_multipliers=(0.2, 0.8, 1.4, 2.0), num_refinement_points=0, num_reads=8)
        refine = SamplingPlan(coarse_multipliers=(0.2, 0.8, 1.4, 2.0), num_refinement_points=4, num_reads=8)
        base = collect_instance_records(problem, fast_da_solver, TSPStatisticsExtractor(), no_refine, rng=1)
        extended = collect_instance_records(problem, fast_da_solver, TSPStatisticsExtractor(), refine, rng=1)
        assert len(extended) > len(base)
