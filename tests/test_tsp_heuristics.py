"""Unit tests for the classical TSP reference heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.heuristics import (
    brute_force_optimal_tour,
    held_karp_optimal_tour,
    nearest_neighbour_tour,
    reference_tour_length,
    two_opt,
)
from repro.problems.tsp.instance import TSPInstance


class TestNearestNeighbour:
    def test_returns_permutation(self):
        instance = generate_instance(9, rng=0)
        tour = nearest_neighbour_tour(instance)
        assert sorted(tour.tolist()) == list(range(9))

    def test_starts_at_requested_city(self):
        instance = generate_instance(7, rng=1)
        assert nearest_neighbour_tour(instance, start=3)[0] == 3

    def test_invalid_start(self):
        instance = generate_instance(5, rng=0)
        with pytest.raises(ValueError):
            nearest_neighbour_tour(instance, start=5)

    def test_greedy_picks_closest_city_first(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        instance = TSPInstance.from_coordinates(coords)
        tour = nearest_neighbour_tour(instance, start=0)
        assert tour[1] == 1


class TestTwoOpt:
    def test_never_worsens(self):
        instance = generate_instance(10, rng=2)
        initial = np.arange(10)
        improved = two_opt(instance, initial)
        assert instance.tour_length(improved) <= instance.tour_length(initial) + 1e-9

    def test_reaches_optimum_on_small_instances(self):
        instance = generate_instance(7, rng=3)
        _, optimal = brute_force_optimal_tour(instance)
        best = np.inf
        for start in range(7):
            tour = two_opt(instance, nearest_neighbour_tour(instance, start=start))
            best = min(best, instance.tour_length(tour))
        assert best == pytest.approx(optimal, rel=0.05)

    def test_untangles_crossing(self):
        # A tour visiting square corners in crossing order must be untangled.
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        instance = TSPInstance.from_coordinates(coords)
        crossed = np.array([0, 2, 1, 3])
        improved = two_opt(instance, crossed)
        assert instance.tour_length(improved) == pytest.approx(4.0)


class TestExactSolvers:
    def test_held_karp_matches_brute_force(self):
        for seed in range(3):
            instance = generate_instance(7, rng=seed)
            _, brute = brute_force_optimal_tour(instance)
            hk_tour, hk_length = held_karp_optimal_tour(instance)
            assert hk_length == pytest.approx(brute, rel=1e-9)
            assert instance.tour_length(hk_tour) == pytest.approx(hk_length, rel=1e-9)

    def test_held_karp_size_limit(self):
        instance = generate_instance(14, rng=0)
        with pytest.raises(ValueError):
            held_karp_optimal_tour(instance)

    def test_brute_force_size_limit(self):
        instance = generate_instance(10, rng=0)
        with pytest.raises(ValueError):
            brute_force_optimal_tour(instance)

    def test_known_square_optimum(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        instance = TSPInstance.from_coordinates(coords)
        _, length = held_karp_optimal_tour(instance)
        assert length == pytest.approx(4.0)


class TestReferenceLength:
    def test_uses_best_known_when_available(self):
        instance = generate_instance(6, rng=0)
        instance.best_known_length = 123.0
        assert reference_tour_length(instance) == 123.0

    def test_exact_for_small_instances(self):
        instance = generate_instance(8, rng=1)
        _, optimal = brute_force_optimal_tour(instance)
        assert reference_tour_length(instance) == pytest.approx(optimal, rel=1e-9)

    def test_heuristic_for_larger_instances(self):
        instance = generate_instance(20, rng=2)
        reference = reference_tour_length(instance, rng=0)
        nn_length = instance.tour_length(nearest_neighbour_tour(instance))
        assert reference <= nn_length + 1e-9

    def test_deterministic_given_rng(self):
        instance = generate_instance(18, rng=3)
        assert reference_tour_length(instance, rng=0) == reference_tour_length(instance, rng=0)
