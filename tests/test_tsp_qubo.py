"""Unit tests for the TSP QUBO relaxation (Lucas formulation), decoding and MVODM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.heuristics import brute_force_optimal_tour
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.preprocessing import minimise_distance_variance
from repro.problems.tsp.qubo import TSPProblem, assignment_from_tour, decode_assignment


@pytest.fixture
def square_instance() -> TSPInstance:
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    return TSPInstance.from_coordinates(coords, name="unit-square")


class TestEncodingDecoding:
    def test_assignment_from_tour_roundtrip(self):
        tour = np.array([2, 0, 3, 1])
        assignment = assignment_from_tour(tour, 4)
        decoded = decode_assignment(assignment, 4)
        np.testing.assert_array_equal(decoded, tour)

    def test_decode_rejects_non_binary(self):
        with pytest.raises(ValueError):
            decode_assignment(np.full(9, 0.5), 3)

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="num_cities"):
            decode_assignment(np.zeros(8, dtype=np.int8), 3)
        with pytest.raises(ValueError, match="num_cities"):
            decode_assignment(np.zeros(10, dtype=np.int8), 3)

    def test_decode_infeasible_returns_none(self):
        assert decode_assignment(np.zeros(9, dtype=np.int8), 3) is None
        assert decode_assignment(np.ones(9, dtype=np.int8), 3) is None

    def test_assignment_from_tour_validates_permutation(self):
        with pytest.raises(ValueError):
            assignment_from_tour(np.array([0, 0, 1, 2]), 4)


class TestTSPProblem:
    def test_number_of_variables(self, square_instance):
        problem = TSPProblem(square_instance)
        assert problem.num_qubo_variables == 16

    def test_feasible_energy_equals_tour_length(self, square_instance):
        problem = TSPProblem(square_instance)
        builder = problem.builder()
        tour = np.array([0, 1, 2, 3])
        assignment = assignment_from_tour(tour, 4)
        assert builder.objective_energy(assignment) == pytest.approx(
            square_instance.tour_length(tour)
        )
        assert builder.penalty_energy(assignment) == pytest.approx(0.0)

    def test_relaxed_energy_equals_objective_plus_penalty(self, square_instance):
        problem = TSPProblem(square_instance)
        builder = problem.builder()
        rng = np.random.default_rng(0)
        A = 3.7
        model = problem.build_qubo(A)
        for _ in range(10):
            x = rng.integers(0, 2, size=16).astype(float)
            expected = builder.objective_energy(x) + A * builder.penalty_energy(x)
            assert model.energy(x) == pytest.approx(expected, rel=1e-9)

    def test_every_permutation_is_feasible(self, square_instance):
        problem = TSPProblem(square_instance)
        from itertools import permutations

        for perm in permutations(range(4)):
            assignment = assignment_from_tour(np.array(perm), 4)
            assert problem.is_feasible(assignment)
            assert problem.fitness(assignment) == pytest.approx(
                square_instance.tour_length(np.array(perm))
            )

    def test_fitness_raises_for_infeasible(self, square_instance):
        problem = TSPProblem(square_instance)
        with pytest.raises(ValueError):
            problem.fitness(np.zeros(16, dtype=np.int8))

    def test_penalty_counts_constraint_violations(self, square_instance):
        problem = TSPProblem(square_instance)
        builder = problem.builder()
        # A valid permutation with one city moved onto another position
        # violates exactly two constraints (a row and a column), each by 1.
        assignment = assignment_from_tour(np.array([0, 1, 2, 3]), 4).reshape(4, 4)
        assignment[1, 1] = 0
        assert builder.penalty_energy(assignment.reshape(-1)) == pytest.approx(2.0)

    def test_relaxation_scale_is_max_distance(self, square_instance):
        problem = TSPProblem(square_instance)
        assert problem.relaxation_scale() == pytest.approx(np.sqrt(2.0))

    def test_reference_fitness_matches_brute_force(self):
        instance = generate_instance(6, rng=4)
        problem = TSPProblem(instance)
        _, optimal = brute_force_optimal_tour(instance)
        assert problem.reference_fitness() == pytest.approx(optimal, rel=1e-6)

    def test_ground_state_of_relaxed_qubo_is_optimal_tour(self):
        # With a sufficiently large A the global minimum of the relaxed QUBO is
        # the optimal tour; verify by enumerating all permutations (n=4 only).
        coords = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 1.0], [0.0, 1.0]])
        instance = TSPInstance.from_coordinates(coords)
        problem = TSPProblem(instance)
        model = problem.build_qubo(10.0 * problem.relaxation_scale())
        from itertools import permutations

        best_energy = np.inf
        best_tour = None
        for perm in permutations(range(4)):
            assignment = assignment_from_tour(np.array(perm), 4)
            energy = model.energy(assignment.astype(float))
            if energy < best_energy:
                best_energy = energy
                best_tour = np.array(perm)
        _, optimal_length = brute_force_optimal_tour(instance)
        assert instance.tour_length(best_tour) == pytest.approx(optimal_length)
        assert best_energy == pytest.approx(optimal_length)

    def test_builder_is_cached(self, square_instance):
        problem = TSPProblem(square_instance)
        assert problem.builder() is problem.builder()


class TestMVODMPreprocessing:
    def test_variance_is_reduced(self):
        instance = generate_instance(10, distribution="exponential", rng=2)
        result = minimise_distance_variance(instance)
        assert result.transformed_variance <= result.original_variance + 1e-9

    def test_optimal_tour_preserved(self):
        instance = generate_instance(7, rng=3)
        result = minimise_distance_variance(instance)
        original_tour, _ = brute_force_optimal_tour(instance)
        transformed_tour, _ = brute_force_optimal_tour(result.transformed_instance)
        # Both matrices must rank this tour optimal (tours may differ if ties).
        assert instance.tour_length(transformed_tour) == pytest.approx(
            instance.tour_length(original_tour), rel=1e-9
        )

    def test_transformed_matrix_is_valid_instance(self):
        instance = generate_instance(8, rng=5)
        result = minimise_distance_variance(instance)
        transformed = result.transformed_instance
        assert np.all(transformed.distances >= 0)
        np.testing.assert_allclose(np.diag(transformed.distances), 0.0)

    def test_problem_with_preprocessing_reports_original_fitness(self):
        instance = generate_instance(6, rng=6)
        plain = TSPProblem(instance)
        preprocessed = TSPProblem(instance, use_mvodm_preprocessing=True)
        tour = np.arange(6)
        assignment = assignment_from_tour(tour, 6)
        assert preprocessed.fitness(assignment) == pytest.approx(plain.fitness(assignment))
        assert preprocessed.mvodm_result is not None
        assert plain.mvodm_result is None
