"""Unit tests for the TSPLIB parser/writer and the bundled offline suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.tsplib import (
    BUNDLED_SUITE_SPEC,
    bundled_tsplib_suite,
    load_tsplib_file,
    parse_tsplib,
    write_tsplib_file,
)

EUC_2D_FILE = """
NAME : toy4
TYPE : TSP
COMMENT : unit square
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 3.0 0.0
3 3.0 4.0
4 0.0 4.0
EOF
"""

EXPLICIT_FULL_MATRIX_FILE = """
NAME : explicit3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 3
2 0 4
3 4 0
EOF
"""

EXPLICIT_UPPER_ROW_FILE = """
NAME : upper3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : UPPER_ROW
EDGE_WEIGHT_SECTION
2 3
4
EOF
"""

GEO_FILE = """
NAME : geo3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : GEO
NODE_COORD_SECTION
1 38.24 20.42
2 39.57 26.15
3 40.56 25.32
EOF
"""

ATT_FILE = """
NAME : att3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : ATT
NODE_COORD_SECTION
1 0 0
2 10 0
3 0 10
EOF
"""


class TestParser:
    def test_euc_2d_rounding(self):
        instance = parse_tsplib(EUC_2D_FILE)
        assert instance.name == "toy4"
        assert instance.num_cities == 4
        # TSPLIB EUC_2D distances are rounded to the nearest integer.
        assert instance.distances[0, 1] == pytest.approx(3.0)
        assert instance.distances[0, 2] == pytest.approx(5.0)

    def test_explicit_full_matrix(self):
        instance = parse_tsplib(EXPLICIT_FULL_MATRIX_FILE)
        assert instance.distances[0, 1] == 2.0
        assert instance.distances[1, 2] == 4.0
        np.testing.assert_allclose(instance.distances, instance.distances.T)

    def test_explicit_upper_row(self):
        instance = parse_tsplib(EXPLICIT_UPPER_ROW_FILE)
        assert instance.distances[0, 1] == 2.0
        assert instance.distances[0, 2] == 3.0
        assert instance.distances[1, 2] == 4.0

    def test_geo_distances_are_positive_integers(self):
        instance = parse_tsplib(GEO_FILE)
        off_diag = instance.distances[~np.eye(3, dtype=bool)]
        assert np.all(off_diag > 0)
        np.testing.assert_allclose(off_diag, np.round(off_diag))

    def test_att_pseudo_euclidean(self):
        instance = parse_tsplib(ATT_FILE)
        expected = np.ceil(np.sqrt(100.0 / 10.0))
        assert instance.distances[0, 1] == pytest.approx(expected)

    def test_dimension_mismatch_raises(self):
        broken = EUC_2D_FILE.replace("DIMENSION : 4", "DIMENSION : 5")
        with pytest.raises(ValueError):
            parse_tsplib(broken)

    def test_unsupported_weight_type(self):
        broken = EUC_2D_FILE.replace("EUC_2D", "XRAY1")
        with pytest.raises(ValueError):
            parse_tsplib(broken)


class TestWriterRoundtrip:
    def test_coordinate_roundtrip(self, tmp_path):
        instance = generate_instance(8, rng=0, name="roundtrip8")
        path = tmp_path / "roundtrip8.tsp"
        write_tsplib_file(instance, path)
        loaded = load_tsplib_file(path)
        assert loaded.num_cities == 8
        # EUC_2D rounds to integers, so compare with tolerance 0.5.
        np.testing.assert_allclose(loaded.distances, instance.distances, atol=0.5 + 1e-9)

    def test_matrix_roundtrip(self, tmp_path):
        instance = generate_instance(6, rng=1, name="matrix6")
        matrix_only = instance.scaled(1.0)
        matrix_only.coordinates = None
        path = tmp_path / "matrix6.tsp"
        write_tsplib_file(matrix_only, path)
        loaded = load_tsplib_file(path)
        np.testing.assert_allclose(loaded.distances, matrix_only.distances, rtol=1e-6)


class TestBundledSuite:
    def test_eleven_instances_by_default(self):
        suite = bundled_tsplib_suite()
        assert len(suite) == len(BUNDLED_SUITE_SPEC) == 11

    def test_sizes_match_spec_and_paper_range(self):
        suite = bundled_tsplib_suite()
        sizes = [instance.num_cities for instance in suite]
        assert sizes == [size for _, size, _ in BUNDLED_SUITE_SPEC]
        assert all(14 < size < 90 or size in (16, 17) for size in sizes)
        assert min(sizes) > 14 or min(sizes) == 16

    def test_max_cities_filter(self):
        suite = bundled_tsplib_suite(max_cities=30)
        assert all(instance.num_cities <= 30 for instance in suite)
        assert len(suite) < 11

    def test_deterministic(self):
        a = bundled_tsplib_suite(max_cities=30, seed=5)
        b = bundled_tsplib_suite(max_cities=30, seed=5)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.distances, y.distances)

    def test_metadata_marks_suite(self):
        suite = bundled_tsplib_suite(max_cities=20)
        assert all(instance.metadata.get("suite") == "bundled-tsplib-like" for instance in suite)
