"""Tests of the distributed execution subsystem: wire format, backends, caches.

The process-pool tests share one module-scoped backend (spawn-starting a pool
per test would dominate the suite's runtime); everything they assert is about
byte-identity with the thread path, so pool reuse cannot mask failures.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np
import pytest

from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import QUBOModel, random_qubo
from repro.qubo.sampleset import SampleSet
from repro.service import (
    ProcessPoolBackend,
    ShardedResultCache,
    SolveRequest,
    SolverCallCache,
    SolverRegistry,
    SolveService,
    SpecSerializationError,
    ThreadExecutionBackend,
    make_solver,
    resolve_backend,
)
from repro.service.cache import CachedEvaluation
from repro.service.distributed import wire
from repro.service.executor import READ_WORKERS_ENV, read_executor, shutdown_read_executor
from repro.solvers.base import QUBOSolver
from repro.solvers.simulated_annealing import (
    SimulatedAnnealingConfig,
    SimulatedAnnealingSolver,
)
from repro.utils.sparse import scipy_sparse


@pytest.fixture
def model() -> QUBOModel:
    return random_qubo(14, rng=5)


@pytest.fixture
def sparse_model() -> QUBOModel:
    """A model inside the CSR auto-backend regime (n >= 512, density < 0.10)."""
    if scipy_sparse is None:
        pytest.skip("scipy not available")
    rng = np.random.default_rng(9)
    n, nnz = 600, 1800
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.normal(size=nnz)
    Q = scipy_sparse.coo_array((vals, (rows, cols)), shape=(n, n)).tocsr()
    m = QUBOModel(Q, offset=0.75, name="wire-sparse")
    assert m.in_sparse_regime()
    return m


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(max_workers=2)
    yield backend
    backend.close()


class CountingSolver(QUBOSolver):
    """SA wrapper counting engine executions (for zero-call cache assertions)."""

    name = "counting-sa"

    def __init__(self, num_sweeps: int = 10) -> None:
        self.config = SimulatedAnnealingConfig(num_sweeps=num_sweeps)
        self._inner = SimulatedAnnealingSolver(self.config)
        self.calls = 0

    def _sample(self, model, num_reads, rng):
        self.calls += 1
        return self._inner._sample(model, num_reads, rng)


# ------------------------------------------------------------------ wire format
class TestWireFraming:
    def test_rejects_bad_magic(self):
        with pytest.raises(wire.WireFormatError, match="magic"):
            wire.decode_frame(b"NOPE" + b"\x00" * 16)

    def test_rejects_unknown_version(self, model):
        blob = bytearray(wire.encode_model(model))
        blob[4] = 99
        with pytest.raises(wire.WireFormatError, match="version"):
            wire.decode_frame(bytes(blob))

    def test_rejects_truncation(self, model):
        blob = wire.encode_model(model)
        with pytest.raises(wire.WireFormatError, match="truncated"):
            wire.decode_frame(blob[: len(blob) - 8])

    def test_rejects_trailing_garbage(self, model):
        with pytest.raises(wire.WireFormatError, match="trailing"):
            wire.decode_frame(wire.encode_model(model) + b"xx")

    def test_rejects_kind_mismatch(self, model):
        with pytest.raises(wire.WireFormatError, match="expected"):
            wire.decode_sample_set(wire.encode_model(model))

    def test_rejects_negative_shape_axes(self):
        # A negative axis would rewind the buffer offset and alias buffers
        # over each other; build the hostile manifest by hand.
        import json

        header = json.dumps(
            {
                "kind": "raw",
                "buffers": [
                    {"dtype": "<f8", "shape": [2]},
                    {"dtype": "<f8", "shape": [-1]},
                    {"dtype": "<f8", "shape": [2]},
                ],
            }
        ).encode("utf-8")
        blob = (
            wire._PREFIX.pack(wire.MAGIC, wire.FORMAT_VERSION, len(header))
            + header
            + b"\x00" * 24
        )
        with pytest.raises(wire.WireFormatError, match="shape"):
            wire.decode_frame(blob)


class TestModelRoundTrip:
    def test_dense_round_trip_is_exact(self, model):
        decoded = wire.decode_model(wire.encode_model(model))
        assert decoded.storage == "dense"
        assert decoded.fingerprint() == model.fingerprint()
        assert decoded.offset == model.offset
        assert decoded.name == model.name
        assert np.array_equal(decoded.dense_Q(), model.dense_Q())

    def test_csr_round_trip_preserves_fingerprint_without_densifying(
        self, sparse_model, monkeypatch
    ):
        # Any densification (encode or decode side) funnels through
        # QUBOModel._dense; poisoning it proves the CSR regime stays CSR.
        monkeypatch.setattr(
            QUBOModel,
            "_dense",
            lambda self: (_ for _ in ()).throw(AssertionError("densified!")),
        )
        decoded = wire.decode_model(wire.encode_model(sparse_model))
        assert decoded.storage == "sparse"
        assert decoded.fingerprint() == sparse_model.fingerprint()
        assert decoded.offset == sparse_model.offset

    def test_csr_payload_is_compact(self, sparse_model):
        n = sparse_model.num_variables
        assert len(wire.encode_model(sparse_model)) < (n * n * 8) / 10

    def test_corrupted_buffer_fails_fingerprint_check(self, model):
        blob = bytearray(wire.encode_model(model))
        blob[-4] ^= 0xFF  # flip bits inside the coefficient buffer
        with pytest.raises(ValueError, match="fingerprint"):
            wire.decode_model(bytes(blob))


class TestSampleSetAndResultRoundTrip:
    def test_sample_set_round_trip_is_byte_identical(self, model):
        solver = make_solver("sa?num_sweeps=15")
        samples = solver.sample(model, num_reads=6, rng=np.random.default_rng(3))
        decoded = wire.decode_sample_set(wire.encode_sample_set(samples))
        assert np.array_equal(decoded.assignments, samples.assignments)
        assert np.array_equal(decoded.energies, samples.energies)
        assert np.array_equal(decoded.num_occurrences, samples.num_occurrences)
        assert decoded.solver_name == samples.solver_name
        assert decoded.info["num_sweeps"] == samples.info["num_sweeps"]

    def test_engine_call_round_trip(self, sparse_model):
        blob = wire.encode_engine_call(sparse_model, "tabu?tenure=4", 8, 123)
        decoded_model, spec, reads, seed = wire.decode_engine_call(blob)
        assert (spec, reads, seed) == ("tabu?tenure=4", 8, 123)
        assert decoded_model.fingerprint() == sparse_model.fingerprint()

    def test_request_round_trip_from_problem(self):
        problem = TSPProblem(generate_instance(5, rng=1, name="wire-tsp"))
        request = SolveRequest(
            solver="sa?num_sweeps=10",
            problem=problem,
            relaxation_parameter=7.5,
            num_reads=3,
            seed=2,
            label="tagged",
        )
        decoded = wire.decode_request(wire.encode_request(request))
        assert decoded.model is not None  # materialised on encode
        assert decoded.model.fingerprint() == request.resolve_model().fingerprint()
        assert (decoded.num_reads, decoded.seed, decoded.label) == (3, 2, "tagged")

    def test_result_round_trip(self, model):
        with SolveService(max_workers=2, backend="thread") as service:
            result = service.submit(
                SolveRequest(solver="tabu?num_steps=40", model=model, num_reads=4, seed=6)
            ).result()
        decoded = wire.decode_result(wire.encode_result(result))
        assert np.array_equal(decoded.samples.assignments, result.samples.assignments)
        assert np.array_equal(decoded.samples.energies, result.samples.energies)
        assert decoded.solver_fingerprint == result.solver_fingerprint
        assert decoded.request.seed == 6

    def test_request_with_unserialisable_solver_raises(self, model):
        request = SolveRequest(solver=CountingSolver(), model=model, seed=0)
        with pytest.raises(SpecSerializationError):
            wire.encode_request(request)


# ----------------------------------------------------------------- spec inverse
class TestSpecFor:
    def test_round_trips_nested_configs(self):
        from repro.experiments.datasets import solver_spec
        from repro.experiments.profiles import SMOKE

        for backend in ("sa", "da", "tabu", "qbsolv", "qa"):
            spec = solver_spec(SMOKE, backend)
            from repro.experiments.datasets import make_solver as profile_solver

            rebuilt = make_solver(spec)
            assert (
                rebuilt.config_fingerprint()
                == profile_solver(SMOKE, backend).config_fingerprint()
            ), spec

    def test_dotted_options_construct_nested_dataclasses(self):
        solver = make_solver("qbsolv?subproblem_size=20&subsolver_config.num_steps=70")
        assert solver.config.subproblem_size == 20
        assert solver.config.subsolver_config.num_steps == 70
        # Unspecified nested fields keep the nested class defaults.
        assert solver.config.subsolver_config.restart_after == 100

    def test_unknown_dotted_option_rejected(self):
        with pytest.raises(ValueError, match="nested"):
            make_solver("qbsolv?subsolver_config.bogus=1")

    def test_nested_config_equal_to_class_defaults_round_trips(self):
        # QbsolvConfig's factory customises the tabu sub-config, so a plain
        # TabuSearchConfig() differs from the *field* default while matching
        # the nested class defaults — the spec must still force construction
        # away from the factory (regression: this used to emit no options).
        from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
        from repro.solvers.tabu import TabuSearchConfig

        solver = QbsolvSolver(QbsolvConfig(subsolver_config=TabuSearchConfig()))
        spec = SolverRegistry.default().spec_for(solver)
        assert make_solver(spec).config_fingerprint() == solver.config_fingerprint()

    def test_unregistered_solver_raises(self):
        with pytest.raises(SpecSerializationError, match="no registered backend"):
            SolverRegistry.default().spec_for(CountingSolver())

    def test_string_spec_passes_through_validated(self):
        assert SolverRegistry.spec_for("tabu?tenure=8") == "tabu?tenure=8"
        with pytest.raises(ValueError):
            SolverRegistry.spec_for("not-a-backend")


# ------------------------------------------------------------ execution backends
class TestBackendResolution:
    def test_env_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("QROSS_EXECUTION_BACKEND", raising=False)
        backend, owned = resolve_backend(None)
        assert isinstance(backend, ThreadExecutionBackend) and not owned

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("QROSS_EXECUTION_BACKEND", "thread")
        backend, _ = resolve_backend(None)
        assert backend.name == "thread"

    def test_spec_strings_resolve_to_shared_instances(self):
        first, _ = resolve_backend("thread")
        second, _ = resolve_backend("thread")
        assert first is second

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_instance_passes_through(self):
        backend = ThreadExecutionBackend()
        resolved, owned = resolve_backend(backend)
        assert resolved is backend and not owned

    def test_closed_shared_backend_is_replaced(self):
        # A distinctive spec so the module-scoped fixture's pool is untouched;
        # the pool is lazy, so closing an unused backend costs nothing.
        spec = "process?max_workers=1&mp_context=spawn"
        first, _ = resolve_backend(spec)
        first.close()
        second, _ = resolve_backend(spec)
        assert second is not first and not second.closed


class TestProcessBackendParity:
    @pytest.mark.parametrize("spec", ["sa?num_sweeps=25", "tabu?num_steps=60"])
    def test_seeded_samples_byte_identical_to_thread(self, model, process_backend, spec):
        solver = make_solver(spec)
        thread = ThreadExecutionBackend().run(model, solver, 4, seed=42)
        process = process_backend.run(model, solver, 4, seed=42)
        assert np.array_equal(thread.assignments, process.assignments)
        assert np.array_equal(thread.energies, process.energies)
        assert np.array_equal(thread.num_occurrences, process.num_occurrences)

    def test_sparse_model_crosses_without_densifying(self, sparse_model, process_backend):
        solver = make_solver("tabu?num_steps=15")
        thread = ThreadExecutionBackend().run(sparse_model, solver, 2, seed=7)
        process = process_backend.run(sparse_model, solver, 2, seed=7)
        assert np.array_equal(thread.assignments, process.assignments)
        assert np.array_equal(thread.energies, process.energies)

    def test_seeded_service_request_identical_through_both_backends(
        self, model, process_backend
    ):
        request = SolveRequest(solver="tabu?num_steps=50", model=model, num_reads=3, seed=11)
        with SolveService(max_workers=2, backend="thread") as thread_service:
            expected = thread_service.submit(request).result()
        service = SolveService(max_workers=2, backend=process_backend)
        got = service.submit(request).result()
        service.close()
        assert np.array_equal(expected.samples.assignments, got.samples.assignments)
        assert np.array_equal(expected.samples.energies, got.samples.energies)
        # The shared module backend survives the service that used it.
        assert process_backend.run(model, make_solver("sa?num_sweeps=5"), 1, 0).num_samples == 1

    def test_unserialisable_solver_falls_back_in_process(self, model, process_backend):
        solver = CountingSolver(num_sweeps=8)
        samples = process_backend.run(model, solver, 2, seed=3)
        assert solver.calls == 1  # ran in this process, not a worker
        expected = ThreadExecutionBackend().run(model, CountingSolver(num_sweeps=8), 2, seed=3)
        assert np.array_equal(samples.assignments, expected.assignments)

    def test_repeat_calls_use_model_reference(self, model, process_backend):
        solver = make_solver("sa?num_sweeps=12")
        first = process_backend.run(model, solver, 2, seed=1)
        assert model.fingerprint() in process_backend._shipped_models
        second = process_backend.run(model, solver, 2, seed=1)  # by-reference
        assert np.array_equal(first.assignments, second.assignments)
        assert np.array_equal(first.energies, second.energies)

    def test_model_miss_retries_with_full_payload(self, process_backend):
        # Pretend the model was already shipped: the first call then goes
        # by-reference, every worker misses, and the retry must recover.
        fresh = random_qubo(13, rng=77)
        process_backend._shipped_models[fresh.fingerprint()] = True
        solver = make_solver("sa?num_sweeps=12")
        got = process_backend.run(fresh, solver, 2, seed=4)
        expected = ThreadExecutionBackend().run(fresh, solver, 2, seed=4)
        assert np.array_equal(got.assignments, expected.assignments)

    def test_runtime_registered_backend_falls_back_in_process(
        self, model, process_backend, monkeypatch
    ):
        import repro.solvers.simulated_annealing as sa_mod
        from repro.service.registry import SolverRegistry, _build_default_registry

        class RuntimeRegisteredSolver(sa_mod.SimulatedAnnealingSolver):
            name = "zz-runtime-sa"
            executed_in: list = []

            def _sample(self, model, num_reads, rng):
                type(self).executed_in.append(os.getpid())
                return super()._sample(model, num_reads, rng)

        # A copy of the default registry gains the runtime registration; the
        # monkeypatch keeps the real default registry pristine for other tests.
        registry = _build_default_registry()
        registry.register(
            "zz-runtime-sa",
            RuntimeRegisteredSolver,
            sa_mod.SimulatedAnnealingConfig,
            description="test-only runtime registration",
        )
        monkeypatch.setattr(SolverRegistry, "_default", registry)

        solver = RuntimeRegisteredSolver(sa_mod.SimulatedAnnealingConfig(num_sweeps=6))
        samples = process_backend.run(model, solver, 2, seed=9)
        # A spawned worker cannot resolve the runtime registration, so the
        # call must have run in this very process.
        assert RuntimeRegisteredSolver.executed_in == [os.getpid()]
        assert samples.num_samples == 2

    def test_unseeded_requests_deterministic_given_service_seed(
        self, model, process_backend
    ):
        def run_once():
            service = SolveService(max_workers=2, backend=process_backend, seed=123)
            try:
                results = service.map_requests(
                    [
                        SolveRequest(solver="sa?num_sweeps=10", model=model, num_reads=2)
                        for _ in range(3)
                    ]
                )
                return [r.samples.energies for r in results]
            finally:
                service.close()

        first, second = run_once(), run_once()
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_broken_pool_recovers_on_next_call(self, model):
        import signal

        backend = ProcessPoolBackend(max_workers=1)
        try:
            solver = make_solver("sa?num_sweeps=5")
            backend.run(model, solver, 1, seed=0)
            worker_pid = backend._executor().submit(os.getpid).result()
            os.kill(worker_pid, signal.SIGKILL)
            with pytest.raises(RuntimeError, match="worker died"):
                backend.run(model, solver, 1, seed=0)
            # The poisoned pool was dropped: a fresh one serves the next call.
            expected = ThreadExecutionBackend().run(model, solver, 1, seed=0)
            got = backend.run(model, solver, 1, seed=0)
            assert np.array_equal(got.assignments, expected.assignments)
        finally:
            backend.close()

    def test_evaluate_on_process_backend_is_deterministic(self, process_backend):
        problem = TSPProblem(generate_instance(5, rng=4, name="proc-tsp"))

        def evaluate_once():
            service = SolveService(max_workers=2, backend=process_backend)
            try:
                return service.evaluate(
                    problem, "sa?num_sweeps=10", parameter=8.0, num_reads=4,
                    rng=np.random.default_rng(5),
                )
            finally:
                service.close()

        assert evaluate_once() == evaluate_once()


# ------------------------------------------------------------------ disk caching
class TestShardedResultCache:
    def test_samples_round_trip(self, tmp_path, model):
        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=10")
        samples = solver.sample(model, num_reads=3, rng=np.random.default_rng(1))
        assert store.lookup_samples("k1") is None
        store.store_samples("k1", samples)
        got = store.lookup_samples("k1")
        assert np.array_equal(got.assignments, samples.assignments)
        assert np.array_equal(got.energies, samples.energies)
        assert store.entry_counts() == {"samples": 1, "evaluations": 0}

    def test_evaluation_round_trip(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        entry = CachedEvaluation(0.25, -1.5, 0.75, None)
        store.store_evaluation("ek", entry)
        assert store.lookup_evaluation("ek") == entry
        assert store.lookup_evaluation("other") is None

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path, model):
        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=10")
        store.store_samples("k", solver.sample(model, 2, rng=np.random.default_rng(0)))
        path = store._entry_path("k", ".samples")
        path.write_bytes(path.read_bytes()[:10])
        assert store.lookup_samples("k") is None
        assert not path.exists()

    def test_writes_leave_no_temp_files(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        store.store_evaluation("k", CachedEvaluation(1.0, 0.0, 0.0, 2.0))
        leftovers = [p for p in (tmp_path / "cache").rglob(".tmp-*")]
        assert leftovers == []

    def test_versioned_layout(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        store.store_evaluation("k", CachedEvaluation(1.0, 0.0, 0.0, None))
        assert (tmp_path / "cache" / "v1").is_dir()


class TestShardedCachePrune:
    """GC tooling for the on-disk store: keep-newest pruning, stale temp
    cleanup, and safety under concurrent readers."""

    @staticmethod
    def _fill(store: ShardedResultCache, keys, base_mtime: float = 1_000_000_000.0):
        """Store one evaluation per key with strictly increasing mtimes."""
        for index, key in enumerate(keys):
            store.store_evaluation(key, CachedEvaluation(0.5, float(index), 0.0, None))
            path = store._entry_path(key, ".eval.json")
            os.utime(path, (base_mtime + index, base_mtime + index))

    def test_prune_keeps_the_newest_entries(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        keys = [f"k{i}" for i in range(6)]
        self._fill(store, keys)
        stats = store.prune(max_entries=2)
        assert (stats["kept"], stats["removed"], stats["removed_tmp"]) == (2, 4, 0)
        assert stats["kept_bytes"] > 0 and stats["removed_expired"] == 0
        assert store.entry_counts() == {"samples": 0, "evaluations": 2}
        # The two newest survive; everything older reads as a miss.
        assert store.lookup_evaluation("k5") is not None
        assert store.lookup_evaluation("k4") is not None
        assert store.lookup_evaluation("k0") is None

    def test_prune_ranks_samples_and_evaluations_together(self, tmp_path, model):
        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=5")
        store.store_samples("s", solver.sample(model, 2, rng=np.random.default_rng(0)))
        os.utime(store._entry_path("s", ".samples"), (1_000_000_005, 1_000_000_005))
        self._fill(store, ["e0", "e1"])  # older than the sample entry
        assert store.prune(max_entries=1)["removed"] == 2
        assert store.entry_counts() == {"samples": 1, "evaluations": 0}

    def test_prune_to_zero_clears_the_store(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        self._fill(store, ["a", "b"])
        assert store.prune(max_entries=0)["kept"] == 0
        assert store.entry_counts() == {"samples": 0, "evaluations": 0}
        # A pruned key can be re-stored and read back immediately.
        store.store_evaluation("a", CachedEvaluation(1.0, 0.0, 0.0, None))
        assert store.lookup_evaluation("a") is not None

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            ShardedResultCache(tmp_path / "cache").prune(max_entries=-1)

    def test_prune_requires_at_least_one_criterion(self, tmp_path):
        with pytest.raises(ValueError, match="at least one criterion"):
            ShardedResultCache(tmp_path / "cache").prune()

    def test_prune_byte_budget_keeps_a_newest_prefix(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        keys = [f"k{i}" for i in range(6)]
        self._fill(store, keys)
        sizes = {
            key: store._entry_path(key, ".eval.json").stat().st_size for key in keys
        }
        # Budget for exactly the two newest entries, not a third.
        budget = sizes["k5"] + sizes["k4"]
        stats = store.prune(max_total_bytes=budget)
        assert stats["kept"] == 2
        assert stats["kept_bytes"] == budget
        assert stats["removed"] == 4
        assert store.lookup_evaluation("k5") is not None
        assert store.lookup_evaluation("k4") is not None
        assert store.lookup_evaluation("k3") is None

    def test_prune_byte_budget_cut_is_strict_recency(self, tmp_path, model):
        # A large new entry exhausts the byte budget; a small older entry that
        # *would* still fit must NOT be kept — the survivors are always a
        # newest-prefix, so concurrent pruners agree on the kept set.
        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=5")
        store.store_samples("big", solver.sample(model, 2, rng=np.random.default_rng(0)))
        os.utime(store._entry_path("big", ".samples"), (1_000_000_009, 1_000_000_009))
        self._fill(store, ["small"])  # older and tiny
        big_size = store._entry_path("big", ".samples").stat().st_size
        stats = store.prune(max_total_bytes=big_size)
        assert stats["kept"] == 1 and stats["kept_bytes"] == big_size
        assert store.lookup_samples("big") is not None
        assert store.lookup_evaluation("small") is None

    def test_prune_age_ttl_expires_old_entries(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        self._fill(store, ["ancient", "old"])  # mtimes ~2001
        store.store_evaluation("fresh", CachedEvaluation(1.0, 0.0, 0.0, None))
        stats = store.prune(max_age_s=3600.0)
        assert stats["removed_expired"] == 2
        assert stats["removed"] == 2
        assert stats["kept"] == 1
        assert store.lookup_evaluation("fresh") is not None
        assert store.lookup_evaluation("old") is None

    def test_prune_ttl_composes_with_entry_budget(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        self._fill(store, ["stale0", "stale1"])  # expired by TTL
        for key in ("new0", "new1", "new2"):
            store.store_evaluation(key, CachedEvaluation(1.0, 0.0, 0.0, None))
        stats = store.prune(max_entries=2, max_age_s=3600.0)
        assert stats["removed_expired"] == 2
        assert stats["kept"] == 2
        assert stats["removed"] == 3  # 2 expired + 1 over the entry budget
        assert store.entry_counts() == {"samples": 0, "evaluations": 2}

    def test_prune_removes_only_stale_temp_files(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        self._fill(store, ["a"])
        shard = store._entry_path("a", ".eval.json").parent
        stale = shard / ".x.eval.json.tmp-stale"
        fresh = shard / ".y.eval.json.tmp-fresh"
        stale.write_bytes(b"partial")
        os.utime(stale, (1_000_000_000, 1_000_000_000))
        fresh.write_bytes(b"in-flight")  # mtime = now: a live writer's file
        stats = store.prune(max_entries=10)
        assert stats["removed_tmp"] == 1
        assert not stale.exists() and fresh.exists()

    def test_prune_removes_corrupt_entries_past_the_budget(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        self._fill(store, ["old", "mid", "new"])
        corrupt = store._entry_path("old", ".eval.json")
        corrupt.write_bytes(b"\x00garbage")
        os.utime(corrupt, (999_999_000, 999_999_000))
        stats = store.prune(max_entries=1)
        assert (stats["kept"], stats["removed"], stats["removed_tmp"]) == (1, 2, 0)
        assert not corrupt.exists()
        assert store.lookup_evaluation("new") is not None

    def test_prune_is_safe_under_concurrent_readers(self, tmp_path, model):
        import threading

        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=5")
        samples = solver.sample(model, 2, rng=np.random.default_rng(1))
        keys = [f"key-{i}" for i in range(12)]
        for key in keys:
            store.store_samples(key, samples)

        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    for key in keys:
                        got = store.lookup_samples(key)
                        if got is not None:
                            # A served entry is always complete, never partial.
                            assert np.array_equal(got.assignments, samples.assignments)
            except BaseException as exc:  # noqa: BLE001 - repack for the main thread
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for budget in (8, 4, 0):
                store.prune(max_entries=budget)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert store.entry_counts() == {"samples": 0, "evaluations": 0}
        # Readers that lost the race recorded misses, nothing else.
        assert store.lookup_samples(keys[0]) is None


class TestSolverCallCacheTiering:
    def test_memory_miss_falls_back_to_disk_and_repopulates(self, tmp_path, model):
        store = ShardedResultCache(tmp_path / "cache")
        solver = make_solver("sa?num_sweeps=10")
        samples = solver.sample(model, 2, rng=np.random.default_rng(2))
        writer = SolverCallCache(persistent=store)
        writer.store_samples("key", samples)

        reader = SolverCallCache(persistent=store)  # cold memory, same disk
        got = reader.lookup_samples("key")
        assert got is not None and np.array_equal(got.assignments, samples.assignments)
        assert reader.hits == 1
        # Second lookup is served from memory (no disk read): still a hit.
        assert reader.lookup_samples("key") is not None
        assert reader.hits == 2

    def test_lru_eviction_recovers_from_disk(self, tmp_path, model):
        store = ShardedResultCache(tmp_path / "cache")
        cache = SolverCallCache(max_sample_entries=1, persistent=store)
        solver = make_solver("sa?num_sweeps=10")
        first = solver.sample(model, 2, rng=np.random.default_rng(0))
        second = solver.sample(model, 2, rng=np.random.default_rng(1))
        cache.store_samples("a", first)
        cache.store_samples("b", second)  # evicts "a" from memory
        assert cache.num_sample_entries == 1
        got = cache.lookup_samples("a")  # disk saves it
        assert got is not None and np.array_equal(got.assignments, first.assignments)

    def test_evaluations_not_persisted_by_default(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        cache = SolverCallCache(persistent=store)
        cache.store("ek", CachedEvaluation(0.5, 1.0, 2.0, None))
        assert store.entry_counts()["evaluations"] == 0
        assert SolverCallCache(persistent=store).lookup("ek") is None

    def test_evaluation_persistence_is_opt_in(self, tmp_path):
        store = ShardedResultCache(tmp_path / "cache")
        entry = CachedEvaluation(0.5, 1.0, 2.0, None)
        SolverCallCache(persistent=store, persist_evaluations=True).store("ek", entry)
        reader = SolverCallCache(persistent=store, persist_evaluations=True)
        assert reader.lookup("ek") == entry
        with pytest.raises(ValueError, match="requires persistent"):
            SolverCallCache(persist_evaluations=True)

    def test_save_is_atomic_and_loadable(self, tmp_path):
        cache = SolverCallCache()
        cache.store("k", CachedEvaluation(0.5, 1.0, 2.0, 3.0))
        target = tmp_path / "out" / "cache.json"
        cache.save(target)
        assert SolverCallCache.load(target).lookup("k") is not None
        assert [p for p in target.parent.iterdir() if p.name != "cache.json"] == []

    def test_second_seeded_sweep_runs_zero_solver_calls(self, tmp_path, model):
        """Acceptance: a re-run of a seeded sweep is served entirely from disk."""

        def run_sweep():
            solver = CountingSolver(num_sweeps=12)
            cache = SolverCallCache(persistent=ShardedResultCache(tmp_path / "cache"))
            service = SolveService(max_workers=2, cache=cache, backend="thread")
            try:
                results = service.map_requests(
                    [
                        SolveRequest(solver=solver, model=model, num_reads=2, seed=seed)
                        for seed in range(5)
                    ]
                )
                return solver.calls, [r.samples.energies for r in results]
            finally:
                service.close()

        first_calls, first_energies = run_sweep()
        second_calls, second_energies = run_sweep()
        assert first_calls == 5
        assert second_calls == 0
        for a, b in zip(first_energies, second_energies):
            assert np.array_equal(a, b)


# ------------------------------------------------------------- runner integration
class TestRunnerBackendKnob:
    def _comparison(self, **kwargs):
        from repro.experiments.runner import baseline_tuner_factories, run_comparison

        problems = [
            TSPProblem(generate_instance(5, rng=seed, name=f"runner-tsp{seed}"))
            for seed in (0, 1)
        ]
        factories = {"Random": baseline_tuner_factories()["Random"]}
        return run_comparison(
            problems,
            make_solver("sa?num_sweeps=10"),
            factories,
            num_trials=3,
            num_reads=4,
            rng=7,
            **kwargs,
        )

    def test_parallel_fanout_matches_sequential(self):
        # Same backend on both sides (the sequential run would otherwise pick
        # up whatever QROSS_EXECUTION_BACKEND forces for the default service).
        with SolveService(backend="thread") as service:
            sequential = self._comparison(service=service)
        parallel = self._comparison(backend="thread", max_parallel=4)
        for a, b in zip(sequential.runs, parallel.runs):
            assert a.instance_name == b.instance_name and a.method == b.method
            assert np.array_equal(a.gaps, b.gaps)

    def test_service_and_backend_are_exclusive(self):
        from repro.service.service import default_service

        with pytest.raises(ValueError, match="not both"):
            self._comparison(service=default_service(), backend="thread")


# ------------------------------------------------------------ read-pool rebuild
class TestReadExecutorRebuild:
    def test_old_pool_survives_width_change(self, monkeypatch):
        shutdown_read_executor()
        try:
            monkeypatch.setenv(READ_WORKERS_ENV, "2")
            old_pool = read_executor()
            assert old_pool is not None
            monkeypatch.setenv(READ_WORKERS_ENV, "3")
            new_pool = read_executor()
            assert new_pool is not old_pool
            # Regression: the retired pool must still accept work from callers
            # that fetched it before the rebuild (it used to be shut down).
            assert old_pool.submit(lambda: 41 + 1).result() == 42
        finally:
            shutdown_read_executor()

    def test_shutdown_drains_retired_pools(self, monkeypatch):
        shutdown_read_executor()
        try:
            monkeypatch.setenv(READ_WORKERS_ENV, "2")
            old_pool = read_executor()
            monkeypatch.setenv(READ_WORKERS_ENV, "3")
            read_executor()
            shutdown_read_executor()
            with pytest.raises(RuntimeError):
                old_pool.submit(lambda: None)
        finally:
            shutdown_read_executor()
