"""Unit tests for the numpy neural-network layers, including gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, LayerNorm, Module, ReLU, Sigmoid, Softplus, Tanh, sigmoid
from repro.nn.losses import MSELoss


def numerical_gradient(func, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(module: Module, x: np.ndarray, atol=1e-5):
    """Compare the module's backward pass against finite differences."""
    loss = MSELoss()
    target = np.zeros_like(module.forward(x))

    def scalar():
        return loss.value(module.forward(x), target)

    expected = numerical_gradient(scalar, x)
    output = module.forward(x)
    analytic = module.backward(loss.gradient(output, target))
    np.testing.assert_allclose(analytic, expected, atol=atol)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_input_gradient(self):
        layer = Dense(4, 3, rng=0)
        check_input_gradient(layer, np.random.default_rng(0).normal(size=(6, 4)))

    def test_parameter_gradients(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng=0)
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))
        loss = MSELoss()

        def scalar():
            return loss.value(layer.forward(x), target)

        expected_w = numerical_gradient(scalar, layer.weight.value)
        expected_b = numerical_gradient(scalar, layer.bias.value)
        layer.zero_grad()
        layer.backward(loss.gradient(layer.forward(x), target))
        np.testing.assert_allclose(layer.weight.grad, expected_w, atol=1e-5)
        np.testing.assert_allclose(layer.bias.grad, expected_b, atol=1e-5)

    def test_gradient_accumulates_until_zeroed(self):
        layer = Dense(2, 2, rng=0)
        x = np.ones((1, 2))
        grad = np.ones((1, 2))
        layer.forward(x)
        layer.backward(grad)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(grad)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)
        layer.zero_grad()
        np.testing.assert_allclose(layer.weight.grad, 0.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, 3, initializer="unknown")

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=0).backward(np.ones((1, 2)))


@pytest.mark.parametrize(
    "module_factory",
    [ReLU, Tanh, Sigmoid, Softplus],
    ids=["relu", "tanh", "sigmoid", "softplus"],
)
class TestActivations:
    def test_gradient(self, module_factory):
        module = module_factory()
        x = np.random.default_rng(0).normal(size=(4, 5)) * 2.0
        check_input_gradient(module, x)

    def test_shape_preserved(self, module_factory):
        module = module_factory()
        x = np.random.default_rng(1).normal(size=(3, 7))
        assert module.forward(x).shape == x.shape


class TestActivationValues:
    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_sigmoid_range_and_stability(self):
        values = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)
        assert np.all(np.isfinite(values))

    def test_softplus_positive(self):
        out = Softplus().forward(np.array([[-50.0, 0.0, 50.0]]))
        assert np.all(out >= 0)
        assert out[0, 2] == pytest.approx(50.0, rel=1e-6)


class TestDropout:
    def test_inference_is_identity(self):
        dropout = Dropout(rate=0.5, rng=0)
        dropout.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(dropout.forward(x), x)

    def test_training_masks_and_rescales(self):
        dropout = Dropout(rate=0.5, rng=0)
        dropout.train()
        x = np.ones((200, 10))
        out = dropout.forward(x)
        assert np.any(out == 0.0)
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)

    def test_backward_uses_same_mask(self):
        dropout = Dropout(rate=0.5, rng=0)
        dropout.train()
        x = np.ones((5, 5))
        out = dropout.forward(x)
        grad = dropout.backward(np.ones_like(x))
        np.testing.assert_allclose((out == 0), (grad == 0))


class TestLayerNorm:
    def test_output_is_normalised(self):
        layer = LayerNorm(6)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 6))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_gradient(self):
        layer = LayerNorm(5)
        check_input_gradient(layer, np.random.default_rng(2).normal(size=(3, 5)), atol=1e-4)

    def test_parameters_exposed(self):
        layer = LayerNorm(4)
        assert len(layer.parameters()) == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
