"""Unit tests for SampleSet / SampleRecord."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qubo.sampleset import SampleRecord, SampleSet


@pytest.fixture
def sample_set() -> SampleSet:
    assignments = np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1], [0, 1, 0]], dtype=np.int8)
    energies = np.array([5.0, 1.0, 9.0, 3.0])
    return SampleSet(assignments, energies, solver_name="test")


class TestConstruction:
    def test_sorted_by_energy(self, sample_set):
        assert list(sample_set.energies) == sorted(sample_set.energies)
        assert sample_set.best.energy == pytest.approx(1.0)
        np.testing.assert_array_equal(sample_set.best.assignment, [0, 0, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            SampleSet(np.zeros(3), np.zeros(3))

    def test_occurrences_validation(self):
        with pytest.raises(ValueError):
            SampleSet(np.zeros((2, 2)), np.zeros(2), num_occurrences=np.ones(3))

    def test_non_positive_occurrences_rejected(self):
        # Regression: zero / negative multiplicities made the occurrence-
        # weighted statistics divide by zero or return NaN.
        with pytest.raises(ValueError, match=">= 1"):
            SampleSet(np.zeros((2, 2)), np.zeros(2), num_occurrences=np.array([1, 0]))
        with pytest.raises(ValueError, match=">= 1"):
            SampleSet(np.zeros((2, 2)), np.zeros(2), num_occurrences=np.array([-1, 2]))

    def test_len_and_iteration(self, sample_set):
        assert len(sample_set) == 4
        records = list(sample_set)
        assert all(isinstance(r, SampleRecord) for r in records)
        assert records[0].energy <= records[-1].energy

    def test_empty_best_raises(self):
        empty = SampleSet(np.zeros((0, 3), dtype=np.int8), np.zeros(0))
        with pytest.raises(ValueError):
            _ = empty.best


class TestStatistics:
    def test_probability_of_feasibility(self, sample_set):
        pf = sample_set.probability_of_feasibility(lambda x: x.sum() >= 2)
        assert pf == pytest.approx(0.5)

    def test_probability_weighted_by_occurrences(self):
        assignments = np.array([[1, 1], [0, 0]], dtype=np.int8)
        energies = np.array([1.0, 2.0])
        occurrences = np.array([3, 1])
        samples = SampleSet(assignments, energies, num_occurrences=occurrences)
        pf = samples.probability_of_feasibility(lambda x: x.sum() == 2)
        assert pf == pytest.approx(0.75)

    def test_probability_empty_set(self):
        empty = SampleSet(np.zeros((0, 2), dtype=np.int8), np.zeros(0))
        assert empty.probability_of_feasibility(lambda x: True) == 0.0

    def test_energy_statistics(self, sample_set):
        mean, std = sample_set.energy_statistics()
        assert mean == pytest.approx(np.mean([5.0, 1.0, 9.0, 3.0]))
        assert std == pytest.approx(np.std([5.0, 1.0, 9.0, 3.0]))

    def test_energy_statistics_empty_raises(self):
        empty = SampleSet(np.zeros((0, 2), dtype=np.int8), np.zeros(0))
        with pytest.raises(ValueError):
            empty.energy_statistics()

    def test_feasible_fitnesses(self, sample_set):
        fitnesses = sample_set.feasible_fitnesses(lambda x: x.sum() >= 2, lambda x: float(x.sum()))
        assert sorted(fitnesses.tolist()) == [2.0, 3.0]


class TestTools:
    def test_truncated_keeps_lowest_energy(self, sample_set):
        truncated = sample_set.truncated(2)
        assert truncated.num_samples == 2
        assert truncated.energies.max() <= sample_set.energies[2]

    def test_truncated_validates(self, sample_set):
        with pytest.raises(ValueError):
            sample_set.truncated(0)

    def test_concatenate(self, sample_set):
        merged = SampleSet.concatenate([sample_set, sample_set])
        assert merged.num_samples == 8
        assert merged.best.energy == pytest.approx(1.0)

    def test_concatenate_mismatched_widths(self, sample_set):
        other = SampleSet(np.zeros((1, 2), dtype=np.int8), np.zeros(1))
        with pytest.raises(ValueError):
            SampleSet.concatenate([sample_set, other])

    def test_concatenate_empty_list(self):
        with pytest.raises(ValueError):
            SampleSet.concatenate([])

    def test_concatenate_merges_info(self):
        # Regression: concatenate used to drop `info` entirely, losing the
        # wall-time / sweep metadata that throughput reporting reads.
        first = SampleSet(
            np.zeros((1, 2), dtype=np.int8),
            np.zeros(1),
            info={"wall_time_s": 0.25, "num_sweeps": 100, "solver": "sa"},
        )
        second = SampleSet(
            np.ones((1, 2), dtype=np.int8),
            np.ones(1),
            info={"wall_time_s": 0.5, "num_sweeps": 200},
        )
        merged = SampleSet.concatenate([first, second])
        assert merged.info["wall_time_s"] == pytest.approx(0.75)
        assert merged.info["num_sweeps"] == 100  # first set's scalar wins
        assert merged.info["solver"] == "sa"
