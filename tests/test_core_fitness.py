"""Unit tests for the expectation of minimum fitness (paper Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitness import (
    expected_minimum_fitness,
    expected_minimum_of_gaussian_sample,
)


class TestExpectedMinimumFitness:
    def test_zero_pf_is_infinite(self):
        result = expected_minimum_fitness(0.0, 100.0, 10.0, batch_size=128)
        assert np.isinf(result[0])

    def test_tiny_pf_is_infinite(self):
        result = expected_minimum_fitness(1e-6, 100.0, 10.0, batch_size=128)
        assert np.isinf(result[0])

    def test_single_feasible_sample_close_to_mean(self):
        # Pf * B = 1: the expected minimum of one draw is the mean.
        result = expected_minimum_fitness(1.0 / 64.0, 100.0, 5.0, batch_size=64)
        assert result[0] == pytest.approx(100.0, rel=0.05)

    def test_more_samples_lower_expected_minimum(self):
        few = expected_minimum_fitness(0.1, 100.0, 10.0, batch_size=32)[0]
        many = expected_minimum_fitness(0.9, 100.0, 10.0, batch_size=32)[0]
        assert many < few

    def test_matches_order_statistics_helper(self):
        mean, std, m = 50.0, 4.0, 16
        integral = expected_minimum_fitness(m / 128.0, mean, std, batch_size=128)[0]
        reference = expected_minimum_of_gaussian_sample(mean, std, m)
        assert integral == pytest.approx(reference, rel=0.02)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        mean, std, batch, pf = 200.0, 15.0, 64, 0.5
        m = int(pf * batch)
        simulated = np.mean([rng.normal(mean, std, size=m).min() for _ in range(4000)])
        analytic = expected_minimum_fitness(pf, mean, std, batch_size=batch)[0]
        assert analytic == pytest.approx(simulated, rel=0.02)

    def test_vectorised_over_inputs(self):
        pf = np.array([0.0, 0.2, 0.8])
        result = expected_minimum_fitness(pf, 100.0, 10.0, batch_size=64)
        assert result.shape == (3,)
        assert np.isinf(result[0])
        assert result[2] < result[1]

    def test_zero_std_returns_mean(self):
        result = expected_minimum_fitness(0.5, 42.0, 0.0, batch_size=32)
        assert result[0] == pytest.approx(42.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_minimum_fitness(0.5, 1.0, 1.0, batch_size=0)
        with pytest.raises(ValueError):
            expected_minimum_fitness(0.5, 1.0, 1.0, num_quadrature_points=2)


class TestGaussianOrderStatistics:
    def test_single_sample_is_mean(self):
        assert expected_minimum_of_gaussian_sample(10.0, 3.0, 1) == pytest.approx(10.0)

    def test_minimum_decreases_with_sample_size(self):
        values = [expected_minimum_of_gaussian_sample(0.0, 1.0, n) for n in (1, 2, 8, 32)]
        assert values == sorted(values, reverse=True)

    def test_two_sample_known_value(self):
        # E[min of two standard normals] = -1/sqrt(pi).
        assert expected_minimum_of_gaussian_sample(0.0, 1.0, 2) == pytest.approx(
            -1.0 / np.sqrt(np.pi), abs=1e-3
        )

    def test_zero_std(self):
        assert expected_minimum_of_gaussian_sample(5.0, 0.0, 100) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_minimum_of_gaussian_sample(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            expected_minimum_of_gaussian_sample(0.0, -1.0, 2)
