"""Analytic expectation of the batch-minimum fitness (paper Eq. 2, Appendix F).

Given the surrogate outputs ``Pf(A)``, ``Eavg(A)`` and ``Estd(A)`` and a batch
of ``B`` solver reads, the number of feasible reads is ``m = Pf * B`` and the
expected minimum of their (assumed Gaussian) fitness values is

.. math::

    E[\\bar d] \\approx \\int_0^{\\infty}
        \\bigl(1 - \\Phi(z; E_{avg}, E_{std}^2)\\bigr)^{P_f B} \\, dz

which is what the Minimum Fitness Strategy minimises over ``A``.  When ``Pf``
approaches zero there are no feasible reads and the expectation is defined as
``+inf`` (paper Appendix F).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

#: Below this probability of feasibility the expectation is treated as +inf.
MIN_FEASIBLE_PROBABILITY = 1e-4


def expected_minimum_fitness(
    probability_of_feasibility: np.ndarray | float,
    energy_mean: np.ndarray | float,
    energy_std: np.ndarray | float,
    batch_size: int = 128,
    num_quadrature_points: int = 512,
) -> np.ndarray:
    """Vectorised evaluation of the expectation of the batch-minimum fitness.

    Parameters
    ----------
    probability_of_feasibility, energy_mean, energy_std:
        Surrogate outputs, broadcastable to a common shape.
    batch_size:
        Number of reads ``B`` per solver call.
    num_quadrature_points:
        Resolution of the trapezoidal quadrature used for the integral.

    Returns
    -------
    numpy.ndarray
        The expected minimum fitness for each input point; ``+inf`` where the
        probability of feasibility is (numerically) zero.
    """
    pf = np.atleast_1d(np.asarray(probability_of_feasibility, dtype=np.float64))
    mean = np.atleast_1d(np.asarray(energy_mean, dtype=np.float64))
    std = np.atleast_1d(np.asarray(energy_std, dtype=np.float64))
    pf, mean, std = np.broadcast_arrays(pf, mean, std)
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if num_quadrature_points < 8:
        raise ValueError("num_quadrature_points must be at least 8")

    std = np.maximum(std, 1e-9)
    m = np.clip(pf, 0.0, 1.0) * batch_size

    result = np.full(pf.shape, np.inf)
    valid = pf > MIN_FEASIBLE_PROBABILITY
    if not np.any(valid):
        return result

    mean_v = mean[valid]
    std_v = std[valid]
    m_v = m[valid]

    # Integrate from 0 to mean + 8 std, which captures the survival mass of the
    # Gaussian for non-negative fitness values.
    upper = np.maximum(mean_v + 8.0 * std_v, 1e-9)
    # One quadrature grid per point: shape (points, quadrature).
    grid = np.linspace(0.0, 1.0, num_quadrature_points)[None, :] * upper[:, None]
    survival = 1.0 - norm.cdf(grid, loc=mean_v[:, None], scale=std_v[:, None])
    integrand = survival ** m_v[:, None]
    result[valid] = np.trapezoid(integrand, grid, axis=1)
    return result


def expected_minimum_of_gaussian_sample(mean: float, std: float, sample_size: int) -> float:
    """Expected minimum of ``sample_size`` i.i.d. Gaussian draws (helper for tests).

    Uses the standard order-statistics integral
    ``mean - std * E[max of standard normals]`` evaluated numerically.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    if std < 0:
        raise ValueError("std must be non-negative")
    if sample_size == 1 or std == 0:
        return float(mean)
    # E[min] = integral_0^inf P(min > z) dz - integral_-inf^0 P(min <= z) dz,
    # with P(min > z) = (1 - Phi(z))^n.  The two halves are integrated
    # separately so the indicator discontinuity at zero costs no accuracy.
    positive = np.linspace(0.0, 10.0, 2001)
    negative = np.linspace(-10.0, 0.0, 2001)
    upper = np.trapezoid((1.0 - norm.cdf(positive)) ** sample_size, positive)
    lower = np.trapezoid(1.0 - (1.0 - norm.cdf(negative)) ** sample_size, negative)
    expected_standard_min = upper - lower
    return float(mean + std * expected_standard_min)
