"""The QROSS solver surrogate.

The surrogate approximates *only* the aspects of a QUBO solver that matter for
relaxation-parameter tuning (paper Fig. 8): given an instance ``g`` and a
relaxation parameter ``A`` it predicts

* ``Pf(g, A)`` — the probability that a solver read is feasible,
* ``Eavg(g, A)`` and ``Estd(g, A)`` — the mean / standard deviation of the
  QUBO energies of a read batch,

but never explicit solutions.  Architecturally (paper Appendix G) the instance
goes through a feature extractor, the resulting fixed-size vector is
concatenated with the (normalised) parameter and fed to fully-connected heads:
a sigmoid/BCE head for ``Pf`` and a Huber-loss regression head for the energy
statistics.  The two heads are trained separately, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core.dataset import (
    FeatureNormalizer,
    SurrogateDataset,
    energy_scale,
    parameter_scale,
)
from repro.core.features import FeatureExtractor
from repro.nn.layers import sigmoid
from repro.nn.losses import BCEWithLogitsLoss, HuberLoss
from repro.nn.network import Sequential, TrainingHistory, fit, mlp
from repro.nn.optimizers import Adam
from repro.nn.serialization import load_state_dict, state_dict
from repro.problems.base import ConstrainedProblem
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SurrogateConfig:
    """Architecture and training hyper-parameters of the surrogate.

    Parameters
    ----------
    hidden_sizes:
        Widths of the shared fully-connected trunk of each head.
    learning_rate, num_epochs, batch_size, patience:
        Training-loop settings (both heads use the same ones).
    huber_delta:
        Huber-loss transition point for the energy head (in normalised units).
    weight_decay:
        L2 regularisation applied by Adam.  The surrogate must generalise to
        *unseen* instances from a modest number of training instances, so a
        little shrinkage on the instance-feature weights matters.
    """

    hidden_sizes: tuple[int, ...] = (64, 64)
    learning_rate: float = 3e-3
    num_epochs: int = 300
    batch_size: int = 64
    patience: Optional[int] = 40
    huber_delta: float = 1.0
    weight_decay: float = 1e-3
    validation_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not self.hidden_sizes or any(size <= 0 for size in self.hidden_sizes):
            raise ValueError("hidden_sizes must be positive")
        if self.learning_rate <= 0 or self.num_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("training hyper-parameters must be positive")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if not (0.0 < self.validation_fraction < 1.0):
            raise ValueError("validation_fraction must lie in (0, 1)")


@dataclass(frozen=True)
class SurrogatePrediction:
    """Vectorised surrogate outputs over a grid of relaxation parameters."""

    parameters: np.ndarray
    probability_of_feasibility: np.ndarray
    energy_mean: np.ndarray
    energy_std: np.ndarray


class SolverSurrogate:
    """Neural surrogate of a stochastic QUBO solver.

    Parameters
    ----------
    extractor:
        Instance feature extractor (shared by training and inference).
    config:
        Architecture / training configuration.
    rng:
        Seed controlling weight initialisation and minibatch order.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        config: SurrogateConfig | None = None,
        rng: RngLike = None,
    ) -> None:
        self.extractor = extractor
        self.config = config or SurrogateConfig()
        self._rng = ensure_rng(rng)
        input_dim = extractor.dim + 1  # instance features + normalised parameter
        sizes = [input_dim, *self.config.hidden_sizes]
        self._pf_network: Sequential = mlp([*sizes, 1], rng=self._rng)
        self._energy_network: Sequential = mlp([*sizes, 2], rng=self._rng)
        self._normalizer = FeatureNormalizer()
        self._trained = False

    # ------------------------------------------------------------------ train
    @property
    def is_trained(self) -> bool:
        return self._trained

    def fit(self, dataset: SurrogateDataset, rng: RngLike = None) -> dict[str, TrainingHistory]:
        """Train both heads on a collected dataset and return their loss histories."""
        if len(dataset) < 10:
            raise ValueError("the dataset is too small to train a surrogate")
        rng = ensure_rng(rng if rng is not None else self._rng)

        try:
            train_set, validation_set = dataset.split(self.config.validation_fraction, rng=rng)
        except ValueError:
            train_set, validation_set = dataset, None

        features = self._normalizer.fit_transform(train_set.features)
        inputs = np.column_stack([features, train_set.normalized_parameters])
        validation_inputs = None
        if validation_set is not None and len(validation_set) > 0:
            validation_inputs = np.column_stack(
                [
                    self._normalizer.transform(validation_set.features),
                    validation_set.normalized_parameters,
                ]
            )

        histories: dict[str, TrainingHistory] = {}

        pf_targets = train_set.probabilities[:, None]
        pf_validation = None
        if validation_inputs is not None:
            pf_validation = (validation_inputs, validation_set.probabilities[:, None])
        histories["pf"] = fit(
            self._pf_network,
            inputs,
            pf_targets,
            loss=BCEWithLogitsLoss(),
            optimizer=Adam(
                self._pf_network.parameters(),
                learning_rate=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            ),
            num_epochs=self.config.num_epochs,
            batch_size=self.config.batch_size,
            validation_data=pf_validation,
            patience=self.config.patience,
            rng=rng,
        )

        energy_targets = np.column_stack(
            [train_set.normalized_energy_means, train_set.normalized_energy_stds]
        )
        energy_validation = None
        if validation_inputs is not None:
            energy_validation = (
                validation_inputs,
                np.column_stack(
                    [validation_set.normalized_energy_means, validation_set.normalized_energy_stds]
                ),
            )
        histories["energy"] = fit(
            self._energy_network,
            inputs,
            energy_targets,
            loss=HuberLoss(delta=self.config.huber_delta),
            optimizer=Adam(
                self._energy_network.parameters(),
                learning_rate=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            ),
            num_epochs=self.config.num_epochs,
            batch_size=self.config.batch_size,
            validation_data=energy_validation,
            patience=self.config.patience,
            rng=rng,
        )

        self._trained = True
        return histories

    # -------------------------------------------------------------- inference
    def _inputs_for(self, problem: ConstrainedProblem, parameters: np.ndarray) -> np.ndarray:
        features = self.extractor.extract(problem)
        features = self._normalizer.transform(features[None, :])[0]
        normalized = np.asarray(parameters, dtype=np.float64) / parameter_scale(problem)
        tiled = np.tile(features, (normalized.size, 1))
        return np.column_stack([tiled, normalized])

    def predict(self, problem: ConstrainedProblem, parameters: Sequence[float] | np.ndarray) -> SurrogatePrediction:
        """Predict ``Pf``, ``Eavg`` and ``Estd`` for each parameter value.

        Energies are returned in the original (un-normalised) units of the
        instance's QUBO.
        """
        if not self._trained:
            raise RuntimeError("the surrogate must be trained (or loaded) before prediction")
        parameters = np.atleast_1d(np.asarray(parameters, dtype=np.float64))
        if np.any(parameters <= 0):
            raise ValueError("relaxation parameters must be positive")
        inputs = self._inputs_for(problem, parameters)
        self._pf_network.eval()
        self._energy_network.eval()
        pf = sigmoid(self._pf_network.forward(inputs)[:, 0])
        energies = self._energy_network.forward(inputs)
        scale = energy_scale(problem)
        energy_mean = energies[:, 0] * scale
        energy_std = np.abs(energies[:, 1]) * scale
        return SurrogatePrediction(
            parameters=parameters,
            probability_of_feasibility=pf,
            energy_mean=energy_mean,
            energy_std=energy_std,
        )

    def predict_pf(self, problem: ConstrainedProblem, parameters: Sequence[float] | np.ndarray) -> np.ndarray:
        """Convenience wrapper returning only ``Pf``."""
        return self.predict(problem, parameters).probability_of_feasibility

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Save network weights and feature-normaliser state to an ``.npz`` file."""
        if not self._trained:
            raise RuntimeError("refusing to save an untrained surrogate")
        payload: dict[str, np.ndarray] = {}
        for prefix, network in (("pf", self._pf_network), ("energy", self._energy_network)):
            for key, value in state_dict(network).items():
                payload[f"{prefix}/{key}"] = value
        normalizer_state = self._normalizer.state()
        payload["normalizer/mean"] = normalizer_state["mean"]
        payload["normalizer/std"] = normalizer_state["std"]
        np.savez(Path(path), **payload)

    def load(self, path: str | Path) -> "SolverSurrogate":
        """Restore weights saved by :meth:`save` (architecture must match)."""
        with np.load(Path(path)) as data:
            pf_state = {key.split("/", 1)[1]: data[key] for key in data.files if key.startswith("pf/")}
            energy_state = {
                key.split("/", 1)[1]: data[key] for key in data.files if key.startswith("energy/")
            }
            load_state_dict(self._pf_network, pf_state)
            load_state_dict(self._energy_network, energy_state)
            self._normalizer = FeatureNormalizer.from_state(
                {"mean": data["normalizer/mean"], "std": data["normalizer/std"]}
            )
        self._trained = True
        return self
