"""Pf-based Strategy (PBS, paper Section 3.4.2).

PBS proposes the parameter whose predicted probability of feasibility matches a
user-chosen target ``p`` (Eq. 3): ``argmin_A |Pf(A) - p|``.  Because the
optimal parameter lies on the sigmoid slope (the paper's central hypothesis),
sweeping a few targets such as 80 % and 20 % brackets the optimum cheaply and
without any solver calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.strategies.base import OfflineStrategy, dense_parameter_grid
from repro.core.surrogate import SolverSurrogate
from repro.problems.base import ConstrainedProblem
from repro.tuning.base import ParameterBounds
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class PfBasedStrategy(OfflineStrategy):
    """Propose parameters whose predicted ``Pf`` equals the requested targets.

    Parameters
    ----------
    targets:
        Desired feasibility probabilities, proposed in order.
    num_grid_points:
        Resolution of the grid on which ``|Pf(A) - p|`` is minimised.
    """

    targets: tuple[float, ...] = (0.8, 0.2)
    num_grid_points: int = 256

    name: str = "PBS"

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("at least one target probability is required")
        for target in self.targets:
            check_probability(target, "target")

    def propose(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        bounds: ParameterBounds,
    ) -> List[float]:
        grid = dense_parameter_grid(bounds, self.num_grid_points)
        pf = surrogate.predict_pf(problem, grid)
        return [float(grid[int(np.argmin(np.abs(pf - target)))]) for target in self.targets]

    def propose_for_target(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        bounds: ParameterBounds,
        target: float,
    ) -> float:
        """Parameter matching a single feasibility target."""
        check_probability(target, "target")
        grid = dense_parameter_grid(bounds, self.num_grid_points)
        pf = surrogate.predict_pf(problem, grid)
        return float(grid[int(np.argmin(np.abs(pf - target)))])


def propose_probability_ladder(
    surrogate: SolverSurrogate,
    problem: ConstrainedProblem,
    bounds: ParameterBounds,
    num_trials: int,
) -> List[float]:
    """Spread ``num_trials`` PBS proposals evenly over the feasibility range.

    Mirrors the paper's example of using ``p = 90%, 70%, 50%, 30%, 10%`` when
    five trials are affordable.
    """
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    targets = np.linspace(0.9, 0.1, num_trials)
    strategy = PfBasedStrategy(targets=tuple(float(t) for t in targets))
    return strategy.propose(surrogate, problem, bounds)
