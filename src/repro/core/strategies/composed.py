"""The composed benchmark strategy (paper Section 5, "Strategy").

For the experiments the paper mixes the three strategies:

1. trial 1 — MFS proposes the first candidate;
2. trials 2-3 — PBS proposes the parameters with predicted ``Pf`` of 80 % and
   20 %;
3. remaining trials — OFS refines online, reusing every earlier trial for its
   sigmoid fit.

This module packages that mixture as a plain schedule object so the QROSS
tuner (and ablation benchmarks that disable individual stages) can share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.strategies.minimum_fitness import MinimumFitnessStrategy
from repro.core.strategies.pf_based import PfBasedStrategy
from repro.core.surrogate import SolverSurrogate
from repro.problems.base import ConstrainedProblem
from repro.tuning.base import ParameterBounds


@dataclass(frozen=True)
class ComposedStrategyConfig:
    """Which offline proposals the composed strategy starts with.

    Parameters
    ----------
    use_minimum_fitness:
        Include the MFS proposal as the first candidate.
    pf_targets:
        PBS feasibility targets proposed after MFS (the paper uses 80 %, 20 %).
    batch_size:
        Solver batch size assumed by the MFS expectation.
    """

    use_minimum_fitness: bool = True
    pf_targets: tuple[float, ...] = (0.8, 0.2)
    batch_size: int = 128

    def __post_init__(self) -> None:
        if not self.use_minimum_fitness and not self.pf_targets:
            raise ValueError("the composed strategy needs at least one offline proposal")


def offline_proposals(
    surrogate: SolverSurrogate,
    problem: ConstrainedProblem,
    bounds: ParameterBounds,
    config: ComposedStrategyConfig | None = None,
) -> List[float]:
    """All offline (zero-solver-call) proposals for one instance, in trial order."""
    config = config or ComposedStrategyConfig()
    proposals: List[float] = []
    if config.use_minimum_fitness:
        mfs = MinimumFitnessStrategy(batch_size=config.batch_size)
        proposals.extend(mfs.propose(surrogate, problem, bounds))
    if config.pf_targets:
        pbs = PfBasedStrategy(targets=config.pf_targets)
        proposals.extend(pbs.propose(surrogate, problem, bounds))
    return proposals
