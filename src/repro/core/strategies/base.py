"""Strategy interfaces for proposing relaxation parameters from the surrogate."""

from __future__ import annotations

import abc
from typing import List

from repro.core.surrogate import SolverSurrogate
from repro.problems.base import ConstrainedProblem
from repro.tuning.base import ParameterBounds


class OfflineStrategy(abc.ABC):
    """A strategy that proposes parameters *without* calling a QUBO solver.

    Offline strategies (MFS and PBS in the paper) only query the trained
    surrogate, which is why the first QROSS trials cost no solver calls.
    """

    name: str = "offline-strategy"

    @abc.abstractmethod
    def propose(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        bounds: ParameterBounds,
    ) -> List[float]:
        """Return one or more promising relaxation parameters inside ``bounds``."""


def dense_parameter_grid(bounds: ParameterBounds, num_points: int = 256):
    """Shared helper: a dense evaluation grid over the search bounds."""
    import numpy as np

    if num_points < 8:
        raise ValueError("num_points must be at least 8")
    return np.linspace(bounds.low, bounds.high, num_points)
