"""QROSS parameter-selection strategies: MFS, PBS (offline) and OFS (online)."""

from repro.core.strategies.base import OfflineStrategy, dense_parameter_grid
from repro.core.strategies.composed import ComposedStrategyConfig, offline_proposals
from repro.core.strategies.minimum_fitness import MinimumFitnessStrategy
from repro.core.strategies.online_fitting import (
    OnlineFittingStrategy,
    SigmoidFit,
    fit_sigmoid,
    sigmoid_ansatz,
)
from repro.core.strategies.pf_based import PfBasedStrategy, propose_probability_ladder

__all__ = [
    "OfflineStrategy",
    "dense_parameter_grid",
    "MinimumFitnessStrategy",
    "PfBasedStrategy",
    "propose_probability_ladder",
    "OnlineFittingStrategy",
    "SigmoidFit",
    "fit_sigmoid",
    "sigmoid_ansatz",
    "ComposedStrategyConfig",
    "offline_proposals",
]
