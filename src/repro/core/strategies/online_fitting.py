"""Online Fitting Strategy (OFS, paper Section 4.2 / Algorithm 1).

OFS is the *online* part of QROSS: it uses actual solver feedback on the
instance being solved.  The observed ``(A, Pf)`` pairs are fitted with the
sigmoid ansatz ``S(A) = 1 / (1 + exp(-A * theta_s + theta_o))`` (Eq. 7); new
candidates are drawn uniformly from the region where the fitted sigmoid lies
strictly between 0 and 1 — i.e. on the slope, where the paper's hypothesis
places the optimal parameter.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.tuning.base import ParameterBounds, TrialHistory
from repro.utils.rng import RngLike, ensure_rng


def sigmoid_ansatz(parameters: np.ndarray, theta_scale: float, theta_offset: float) -> np.ndarray:
    """The paper's Eq. 7: ``1 / (1 + exp(-A * theta_s + theta_o))``."""
    z = np.asarray(parameters, dtype=np.float64) * theta_scale - theta_offset
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


@dataclass
class SigmoidFit:
    """Fitted ansatz parameters plus the slope region they imply."""

    theta_scale: float
    theta_offset: float

    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        return sigmoid_ansatz(parameters, self.theta_scale, self.theta_offset)

    def slope_region(self, low_probability: float = 0.02, high_probability: float = 0.98) -> Tuple[float, float]:
        """Parameter interval where the fitted ``Pf`` lies in the given range."""
        if self.theta_scale == 0:
            raise ValueError("degenerate sigmoid fit (zero scale)")
        logit_low = np.log(low_probability / (1.0 - low_probability))
        logit_high = np.log(high_probability / (1.0 - high_probability))
        a = (logit_low + self.theta_offset) / self.theta_scale
        b = (logit_high + self.theta_offset) / self.theta_scale
        return (a, b) if a <= b else (b, a)


def fit_sigmoid(parameters: Iterable[float], probabilities: Iterable[float]) -> SigmoidFit:
    """Least-squares fit of the sigmoid ansatz to observed ``(A, Pf)`` pairs.

    Falls back to a moment-based initial guess when ``curve_fit`` cannot
    converge (for example when every observation sits on the same plateau).
    """
    parameters = np.asarray(list(parameters), dtype=np.float64)
    probabilities = np.asarray(list(probabilities), dtype=np.float64)
    if parameters.size < 2:
        raise ValueError("need at least two observations to fit the sigmoid")
    if parameters.size != probabilities.size:
        raise ValueError("parameters and probabilities must have the same length")

    span = float(parameters.max() - parameters.min()) or 1.0
    centre_guess = _transition_centre_guess(parameters, probabilities)
    scale_guess = 4.0 / span
    initial = (scale_guess, scale_guess * centre_guess)

    def model(a: np.ndarray, theta_scale: float, theta_offset: float) -> np.ndarray:
        return sigmoid_ansatz(a, theta_scale, theta_offset)

    try:
        with warnings.catch_warnings():
            # curve_fit warns when the covariance cannot be estimated, which is
            # expected with the handful of points available early in a run.
            warnings.simplefilter("ignore", optimize.OptimizeWarning)
            (theta_scale, theta_offset), _ = optimize.curve_fit(
                model,
                parameters,
                np.clip(probabilities, 0.0, 1.0),
                p0=initial,
                maxfev=5000,
            )
        if not np.isfinite(theta_scale) or not np.isfinite(theta_offset) or theta_scale <= 0:
            raise RuntimeError("non-finite or non-increasing fit")
    except RuntimeError:
        theta_scale, theta_offset = initial
    return SigmoidFit(theta_scale=float(theta_scale), theta_offset=float(theta_offset))


def _transition_centre_guess(parameters: np.ndarray, probabilities: np.ndarray) -> float:
    """Initial guess of the sigmoid midpoint: where Pf crosses one half."""
    order = np.argsort(parameters)
    params = parameters[order]
    probs = probabilities[order]
    above = np.where(probs >= 0.5)[0]
    below = np.where(probs < 0.5)[0]
    if above.size and below.size:
        return float((params[above[0]] + params[below[-1]]) / 2.0)
    return float(params.mean())


class OnlineFittingStrategy:
    """Stateful implementation of the paper's Algorithm 1.

    The strategy accumulates observed ``(A, Pf)`` pairs — including the ones
    produced by earlier MFS / PBS trials, as the composed benchmark strategy
    prescribes — refits the sigmoid after every observation and samples the
    next candidate uniformly from the fitted slope region.

    Parameters
    ----------
    bounds:
        Global search bounds for the relaxation parameter.
    slope_range:
        ``(low, high)`` probabilities delimiting the slope region sampled from.
    bisection_growth:
        Factor used when expanding the search for the ``Pf = 0`` / ``Pf = 1``
        plateau bounds (Algorithm 1, lines 1-2).
    """

    name = "OFS"

    def __init__(
        self,
        bounds: ParameterBounds,
        slope_range: tuple[float, float] = (0.02, 0.98),
        bisection_growth: float = 2.0,
        rng: RngLike = None,
    ) -> None:
        low, high = slope_range
        if not (0.0 < low < high < 1.0):
            raise ValueError("slope_range must satisfy 0 < low < high < 1")
        if bisection_growth <= 1.0:
            raise ValueError("bisection_growth must exceed 1")
        self.bounds = bounds
        self.slope_range = (low, high)
        self.bisection_growth = bisection_growth
        self.rng = ensure_rng(rng)
        self._observations: List[Tuple[float, float]] = []
        self._left_bound: Optional[float] = None  # largest A observed with Pf == 0
        self._right_bound: Optional[float] = None  # smallest A observed with Pf == 1

    # -------------------------------------------------------------- feedback
    def observe(self, parameter: float, probability_of_feasibility: float) -> None:
        """Record solver feedback for one evaluated parameter."""
        self._observations.append((float(parameter), float(probability_of_feasibility)))
        if probability_of_feasibility <= 0.0:
            if self._left_bound is None or parameter > self._left_bound:
                self._left_bound = float(parameter)
        if probability_of_feasibility >= 1.0:
            if self._right_bound is None or parameter < self._right_bound:
                self._right_bound = float(parameter)

    def observe_history(self, history: TrialHistory) -> None:
        """Ingest every trial of an existing history (idempotent per call order)."""
        for trial in history:
            self.observe(trial.parameter, trial.probability_of_feasibility)

    @property
    def observations(self) -> List[Tuple[float, float]]:
        return list(self._observations)

    # -------------------------------------------------------------- proposals
    def next_candidate(self) -> float:
        """Propose the next relaxation parameter (Algorithm 1, lines 4-5)."""
        if len(self._observations) < 2:
            return self._bound_search_candidate()

        parameters = np.array([a for a, _ in self._observations])
        probabilities = np.array([p for _, p in self._observations])
        if np.all(probabilities <= 0.0) or np.all(probabilities >= 1.0):
            return self._bound_search_candidate()

        fit = fit_sigmoid(parameters, probabilities)
        low, high = fit.slope_region(*self.slope_range)
        low = self.bounds.clip(low)
        high = self.bounds.clip(high)
        if high <= low:
            low, high = self.bounds.low, self.bounds.high
        return float(self.rng.uniform(low, high))

    def _bound_search_candidate(self) -> float:
        """Bracket the transition region before the sigmoid can be fitted.

        Mirrors Algorithm 1 lines 1-2: halve the parameter until ``Pf = 0`` is
        seen, grow it until ``Pf = 1`` is seen.
        """
        if self._observations:
            last_parameter, last_probability = self._observations[-1]
        else:
            return float(np.sqrt(self.bounds.low * self.bounds.high))
        if last_probability >= 1.0 and self._left_bound is None:
            return self.bounds.clip(last_parameter / self.bisection_growth)
        if last_probability <= 0.0 and self._right_bound is None:
            return self.bounds.clip(last_parameter * self.bisection_growth)
        # Both plateaus seen (or a mid-slope point observed): sample between them.
        low = self._left_bound if self._left_bound is not None else self.bounds.low
        high = self._right_bound if self._right_bound is not None else self.bounds.high
        if high <= low:
            low, high = self.bounds.low, self.bounds.high
        return float(self.rng.uniform(low, high))
