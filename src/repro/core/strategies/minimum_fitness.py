"""Minimum Fitness Strategy (MFS, paper Section 3.4.1).

MFS picks the relaxation parameter that minimises the *expected batch-minimum
fitness* computed analytically from the surrogate's ``Pf``, ``Eavg`` and
``Estd`` predictions (Eq. 2 / Appendix F).  The optimisation runs entirely on
the surrogate — no QUBO solver calls — using ``scipy.optimize.shgo`` (as in the
paper) seeded by a dense grid scan for robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import optimize

from repro.core.fitness import expected_minimum_fitness
from repro.core.strategies.base import OfflineStrategy, dense_parameter_grid
from repro.core.surrogate import SolverSurrogate
from repro.problems.base import ConstrainedProblem
from repro.tuning.base import ParameterBounds


@dataclass(frozen=True)
class MinimumFitnessStrategy(OfflineStrategy):
    """Propose ``argmin_A  E[min fitness](Pf(A), Eavg(A), Estd(A))``.

    Parameters
    ----------
    batch_size:
        Number of reads per solver call (``B`` in Eq. 2).
    num_grid_points:
        Resolution of the preliminary grid scan.
    use_shgo:
        Refine the grid minimum with ``scipy.optimize.shgo``; disabling this
        keeps only the (deterministic) grid scan, which is useful in tests.
    min_probability:
        Parameters whose predicted ``Pf`` falls below this threshold are
        excluded from the search.  This encodes the paper's hypothesis that the
        optimal parameter lies on the sigmoid slope (``0 < Pf < 1``) and guards
        against surrogate optimism in the infeasible plateau.
    """

    batch_size: int = 128
    num_grid_points: int = 256
    use_shgo: bool = True
    min_probability: float = 0.05

    name: str = "MFS"

    def expected_fitness(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        parameters: np.ndarray,
    ) -> np.ndarray:
        """Expected minimum fitness at each parameter value."""
        prediction = surrogate.predict(problem, parameters)
        values = expected_minimum_fitness(
            prediction.probability_of_feasibility,
            prediction.energy_mean,
            prediction.energy_std,
            batch_size=self.batch_size,
        )
        values = np.where(
            prediction.probability_of_feasibility < self.min_probability, np.inf, values
        )
        return values

    def propose(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        bounds: ParameterBounds,
    ) -> List[float]:
        grid = dense_parameter_grid(bounds, self.num_grid_points)
        values = self.expected_fitness(surrogate, problem, grid)
        if not np.any(np.isfinite(values)):
            # The surrogate believes nothing is feasible anywhere: fall back to
            # the largest parameter, which maximises the feasibility pressure.
            return [float(bounds.high)]
        best = float(grid[int(np.nanargmin(values))])

        if self.use_shgo:
            objective = lambda a: float(  # noqa: E731 - tiny closure for shgo
                self.expected_fitness(surrogate, problem, np.array([bounds.clip(a[0])]))[0]
            )
            try:
                result = optimize.shgo(objective, bounds=[(bounds.low, bounds.high)], n=32, iters=1)
                if result.success and np.isfinite(result.fun):
                    candidate = bounds.clip(float(np.atleast_1d(result.x)[0]))
                    if objective([candidate]) <= objective([best]):
                        best = candidate
            except Exception:  # pragma: no cover - shgo occasionally fails on flat landscapes
                pass
        return [best]
