"""Training-data collection and normalisation for the solver surrogate.

One *record* corresponds to one solver call: a problem instance ``g``, a
relaxation parameter ``A`` and the resulting batch statistics ``Pf``, ``Eavg``
and ``Estd`` (paper Section 3.3).  This module handles

* running a solver over a collection of instances and a well-chosen set of
  parameter values (covering the sigmoid slope *and* both plateaus),
* the normalisations the paper describes as data augmentation / pre-processing
  (per-instance parameter scaling, energy scaling, feature standardisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.features import FeatureExtractor, default_extractor_for
from repro.problems.base import ConstrainedProblem
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng


def parameter_scale(problem: ConstrainedProblem) -> float:
    """Per-instance scale used to normalise the relaxation parameter."""
    return float(problem.relaxation_scale())


def energy_scale(problem: ConstrainedProblem) -> float:
    """Per-instance scale used to normalise QUBO energies.

    For the TSP formulation this is roughly the magnitude of a tour length
    (``d_max * n_cities``); normalising by it puts the energy targets of
    differently-sized instances on a comparable footing.
    """
    return float(problem.relaxation_scale()) * float(np.sqrt(problem.num_qubo_variables))


@dataclass(frozen=True)
class SurrogateRecord:
    """One (instance, parameter) -> (Pf, Eavg, Estd) training example."""

    instance_name: str
    features: np.ndarray
    parameter: float
    normalized_parameter: float
    probability_of_feasibility: float
    energy_mean: float
    energy_std: float
    normalized_energy_mean: float
    normalized_energy_std: float
    best_fitness: Optional[float] = None


@dataclass
class SurrogateDataset:
    """A collection of :class:`SurrogateRecord` with array views for training."""

    records: List[SurrogateRecord] = field(default_factory=list)

    def append(self, record: SurrogateRecord) -> None:
        self.records.append(record)

    def extend(self, records: Sequence[SurrogateRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    # ---------------------------------------------------------------- arrays
    @property
    def features(self) -> np.ndarray:
        return np.vstack([r.features for r in self.records])

    @property
    def normalized_parameters(self) -> np.ndarray:
        return np.array([r.normalized_parameter for r in self.records])

    @property
    def probabilities(self) -> np.ndarray:
        return np.array([r.probability_of_feasibility for r in self.records])

    @property
    def normalized_energy_means(self) -> np.ndarray:
        return np.array([r.normalized_energy_mean for r in self.records])

    @property
    def normalized_energy_stds(self) -> np.ndarray:
        return np.array([r.normalized_energy_std for r in self.records])

    def instance_names(self) -> List[str]:
        return sorted({r.instance_name for r in self.records})

    def split(self, validation_fraction: float = 0.2, rng: RngLike = None) -> tuple["SurrogateDataset", "SurrogateDataset"]:
        """Split into train / validation sets *by instance* (no leakage across the split)."""
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in (0, 1)")
        rng = ensure_rng(rng)
        names = self.instance_names()
        if len(names) < 2:
            raise ValueError("need at least two instances to split by instance")
        shuffled = list(names)
        rng.shuffle(shuffled)
        num_validation = max(1, int(round(validation_fraction * len(shuffled))))
        validation_names = set(shuffled[:num_validation])
        train = SurrogateDataset([r for r in self.records if r.instance_name not in validation_names])
        validation = SurrogateDataset([r for r in self.records if r.instance_name in validation_names])
        return train, validation

    def summary(self) -> dict:
        """Dataset-level statistics useful for reports and sanity tests."""
        probabilities = self.probabilities
        return {
            "num_records": len(self),
            "num_instances": len(self.instance_names()),
            "fraction_on_slope": float(np.mean((probabilities > 0.0) & (probabilities < 1.0))),
            "fraction_plateau_zero": float(np.mean(probabilities == 0.0)),
            "fraction_plateau_one": float(np.mean(probabilities == 1.0)),
        }


class FeatureNormalizer:
    """Standardises instance features to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "FeatureNormalizer":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        self.mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std = std
        return self

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    def transform(self, features: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("transform called before fit")
        return (np.asarray(features, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def state(self) -> dict:
        """Serialisable state (used when saving a trained surrogate)."""
        if not self.is_fitted:
            raise RuntimeError("normalizer is not fitted")
        return {"mean": self.mean.copy(), "std": self.std.copy()}

    @classmethod
    def from_state(cls, state: dict) -> "FeatureNormalizer":
        normalizer = cls()
        normalizer.mean = np.asarray(state["mean"], dtype=np.float64)
        normalizer.std = np.asarray(state["std"], dtype=np.float64)
        return normalizer


@dataclass(frozen=True)
class SamplingPlan:
    """How relaxation parameters are sampled per instance when collecting data.

    The coarse multipliers are applied to each instance's
    :meth:`~repro.problems.base.ConstrainedProblem.relaxation_scale`; the
    refinement step then adds extra samples inside the observed ``0 < Pf < 1``
    transition region so the sigmoid slope is well covered (paper Section 3.3).
    """

    coarse_multipliers: tuple[float, ...] = (0.1, 0.25, 0.4, 0.6, 0.8, 1.0, 1.25, 1.6, 2.2, 3.0)
    num_refinement_points: int = 6
    num_reads: int = 32

    def __post_init__(self) -> None:
        if len(self.coarse_multipliers) < 2:
            raise ValueError("need at least two coarse multipliers")
        if any(m <= 0 for m in self.coarse_multipliers):
            raise ValueError("multipliers must be positive")
        if self.num_refinement_points < 0:
            raise ValueError("num_refinement_points must be non-negative")
        if self.num_reads <= 0:
            raise ValueError("num_reads must be positive")


def summarise_samples(
    problem: ConstrainedProblem, samples
) -> tuple[float, float, float, Optional[float]]:
    """Aggregate one batch of reads into ``(Pf, Eavg, Estd, best_fitness)``.

    Split out of :func:`evaluate_parameter` so callers that obtained the
    sample set elsewhere — e.g. from a distributed execution backend running
    the solver in another process — compute the identical statistics.
    """
    pf = samples.probability_of_feasibility(problem.is_feasible)
    energy_mean, energy_std = samples.energy_statistics()
    best_fitness: Optional[float] = None
    if pf > 0:
        fitnesses = [
            problem.fitness(assignment)
            for assignment in samples.assignments
            if problem.is_feasible(assignment)
        ]
        if fitnesses:
            best_fitness = float(min(fitnesses))
    return pf, energy_mean, energy_std, best_fitness


def evaluate_parameter(
    problem: ConstrainedProblem,
    solver: QUBOSolver,
    parameter: float,
    num_reads: int,
    rng: RngLike = None,
) -> tuple[float, float, float, Optional[float]]:
    """Run one solver call and return ``(Pf, Eavg, Estd, best_fitness)``."""
    model = problem.build_qubo(parameter)
    samples = solver.sample(model, num_reads=num_reads, rng=rng)
    return summarise_samples(problem, samples)


def collect_instance_records(
    problem: ConstrainedProblem,
    solver: QUBOSolver,
    extractor: FeatureExtractor,
    plan: SamplingPlan,
    rng: RngLike = None,
) -> List[SurrogateRecord]:
    """Collect training records for a single instance following ``plan``."""
    rng = ensure_rng(rng)
    features = extractor.extract(problem)
    a_scale = parameter_scale(problem)
    e_scale = energy_scale(problem)

    evaluated: dict[float, tuple[float, float, float, Optional[float]]] = {}

    def evaluate(parameter: float) -> None:
        if parameter in evaluated:
            return
        evaluated[parameter] = evaluate_parameter(problem, solver, parameter, plan.num_reads, rng=rng)

    for multiplier in plan.coarse_multipliers:
        evaluate(multiplier * a_scale)

    # Refine the transition region so the sigmoid slope is well sampled.
    if plan.num_refinement_points > 0:
        parameters = np.array(sorted(evaluated))
        pf_values = np.array([evaluated[p][0] for p in parameters])
        on_slope = (pf_values > 0.0) & (pf_values < 1.0)
        if on_slope.any():
            low = parameters[on_slope].min()
            high = parameters[on_slope].max()
        else:
            # Pf jumps from 0 to 1 between two coarse samples; refine that gap.
            below = parameters[pf_values == 0.0]
            above = parameters[pf_values >= 1.0]
            low = below.max() if below.size else parameters[0]
            high = above.min() if above.size else parameters[-1]
        if high < low:
            low, high = high, low
        if high == low:
            low, high = 0.8 * low, 1.2 * high
        for parameter in np.linspace(low, high, plan.num_refinement_points + 2)[1:-1]:
            evaluate(float(parameter))

    records = []
    for parameter, (pf, energy_mean, energy_std, best_fitness) in sorted(evaluated.items()):
        records.append(
            SurrogateRecord(
                instance_name=problem.name,
                features=features,
                parameter=parameter,
                normalized_parameter=parameter / a_scale,
                probability_of_feasibility=pf,
                energy_mean=energy_mean,
                energy_std=energy_std,
                normalized_energy_mean=energy_mean / e_scale,
                normalized_energy_std=energy_std / e_scale,
                best_fitness=best_fitness,
            )
        )
    return records


def collect_training_data(
    problems: Sequence[ConstrainedProblem],
    solver: QUBOSolver,
    extractor: Optional[FeatureExtractor] = None,
    plan: SamplingPlan | None = None,
    rng: RngLike = None,
) -> SurrogateDataset:
    """Collect a full surrogate training dataset over many instances.

    This is the expensive, offline part of QROSS: it is the "history of solved
    instances" the surrogate learns from.
    """
    if not problems:
        raise ValueError("at least one problem instance is required")
    plan = plan or SamplingPlan()
    extractor = extractor or default_extractor_for(problems[0])
    rng = ensure_rng(rng)
    dataset = SurrogateDataset()
    for problem in problems:
        dataset.extend(collect_instance_records(problem, solver, extractor, plan, rng=rng))
    return dataset
