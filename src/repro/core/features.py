"""Instance feature extraction for the solver surrogate.

The surrogate needs a *fixed-size* vector describing a problem instance,
whatever its size (paper Section 3.2: "an feature extraction layer that
handles problems of different sizes").  The paper aggregates edge-level
features from a pre-trained TSP graph-conv network; without that PyTorch model
we provide:

* :class:`TSPStatisticsExtractor` — deterministic graph-level statistics of the
  distance matrix (size, distance moments, minimum-spanning-tree and
  nearest-neighbour statistics, spectral summary), which capture the "common
  structure" the surrogate conditions on;
* :class:`GraphEncoderExtractor` — an optional learned-embedding alternative
  built on :class:`repro.nn.GraphConvEncoder`;
* :class:`QuboStatisticsExtractor` — a problem-agnostic fallback computed from
  the objective / penalty QUBOs, so non-TSP problems (e.g. MVC) work unchanged.
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from typing import Dict, NamedTuple

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.nn.graph import GraphConvEncoder
from repro.problems.base import ConstrainedProblem
from repro.problems.tsp.heuristics import nearest_neighbour_tour
from repro.problems.tsp.qubo import TSPProblem
from repro.utils.rng import RngLike


class FeatureExtractor(abc.ABC):
    """Maps a problem instance to a fixed-size feature vector."""

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Length of the feature vector."""

    @abc.abstractmethod
    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        """Feature vector of ``problem`` (shape ``(dim,)``)."""

    def extract_batch(self, problems) -> np.ndarray:
        """Stack features of several problems into a matrix."""
        return np.vstack([self.extract(problem) for problem in problems])


class TSPStatisticsExtractor(FeatureExtractor):
    """Hand-crafted graph-level statistics of a TSP distance matrix.

    All distance-valued features are normalised by the maximum distance so the
    representation is scale-invariant; the absolute scale enters the surrogate
    separately through the normalised relaxation parameter.
    """

    _FEATURE_NAMES = (
        "num_cities",
        "log_num_cities",
        "dist_mean",
        "dist_std",
        "dist_min",
        "dist_median",
        "dist_q25",
        "dist_q75",
        "dist_skew",
        "mst_per_city",
        "nn_tour_per_city",
        "nn_edge_mean",
        "nn_edge_std",
        "eccentricity_mean",
        "eccentricity_std",
        "spectral_top1",
        "spectral_top2",
        "spectral_ratio",
        "coefficient_of_variation",
        "triangle_slack",
    )

    @property
    def dim(self) -> int:
        return len(self._FEATURE_NAMES)

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._FEATURE_NAMES

    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        if not isinstance(problem, TSPProblem):
            raise TypeError(f"TSPStatisticsExtractor expects a TSPProblem, got {type(problem).__name__}")
        return self.extract_instance_features(problem)

    def extract_instance_features(self, problem: TSPProblem) -> np.ndarray:
        instance = problem.instance
        D = np.asarray(instance.distances, dtype=np.float64)
        n = instance.num_cities
        d_max = float(D.max(initial=1.0)) or 1.0
        scaled = D / d_max
        off = scaled[~np.eye(n, dtype=bool)]

        mst = minimum_spanning_tree(scaled).toarray()
        mst_length = float(mst.sum())

        nn_tour = nearest_neighbour_tour(instance, start=0)
        nn_length = instance.tour_length(nn_tour) / d_max

        masked = scaled + np.eye(n) * 10.0
        nn_edges = masked.min(axis=1)
        eccentricity = scaled.max(axis=1)

        eigenvalues = np.sort(np.abs(np.linalg.eigvalsh(scaled)))[::-1]
        top1 = float(eigenvalues[0]) / n
        top2 = float(eigenvalues[1]) / n if eigenvalues.size > 1 else 0.0

        mean = float(off.mean())
        std = float(off.std())
        skew = float(((off - mean) ** 3).mean() / (std**3 + 1e-12))
        # How far the matrix is from being an ultrametric / how much triangle slack exists.
        sample_slack = self._triangle_slack(scaled)

        features = np.array(
            [
                float(n),
                float(np.log(n)),
                mean,
                std,
                float(off.min()),
                float(np.median(off)),
                float(np.quantile(off, 0.25)),
                float(np.quantile(off, 0.75)),
                skew,
                mst_length / n,
                nn_length / n,
                float(nn_edges.mean()),
                float(nn_edges.std()),
                float(eccentricity.mean()),
                float(eccentricity.std()),
                top1,
                top2,
                top2 / (top1 + 1e-12),
                std / (mean + 1e-12),
                sample_slack,
            ]
        )
        return features

    @staticmethod
    def _triangle_slack(scaled: np.ndarray, num_samples: int = 64) -> float:
        """Average relative slack of random triangle inequalities (structure indicator)."""
        n = scaled.shape[0]
        rng = np.random.default_rng(0)
        triples = rng.integers(0, n, size=(num_samples, 3))
        valid = (
            (triples[:, 0] != triples[:, 1])
            & (triples[:, 1] != triples[:, 2])
            & (triples[:, 0] != triples[:, 2])
        )
        triples = triples[valid]
        if triples.size == 0:
            return 0.0
        direct = scaled[triples[:, 0], triples[:, 2]]
        detour = scaled[triples[:, 0], triples[:, 1]] + scaled[triples[:, 1], triples[:, 2]]
        return float(np.mean((detour - direct) / (detour + 1e-12)))


class GraphEncoderExtractor(FeatureExtractor):
    """Learned-embedding alternative: a frozen numpy GCN over the distance matrix."""

    def __init__(self, hidden_dim: int = 16, num_layers: int = 2, rng: RngLike = 0) -> None:
        self._encoder = GraphConvEncoder(hidden_dim=hidden_dim, num_layers=num_layers, rng=rng)

    @property
    def dim(self) -> int:
        return self._encoder.embedding_dim

    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        if not isinstance(problem, TSPProblem):
            raise TypeError(f"GraphEncoderExtractor expects a TSPProblem, got {type(problem).__name__}")
        return self._encoder.encode(problem.instance.distances)


def _scaled_matrix_stats(model, scale: float) -> tuple[float, float, float, float]:
    """``(abs_mean, std, density, diag_mean)`` of ``Q / scale``, storage-aware.

    Sparse-stored models are summarised from their CSR data (zero entries
    contribute zero to every moment) without densifying; dense models keep the
    historical dense code path bit for bit.
    """
    if model.is_sparse:
        Q = model.sparse_Q()
        size = float(Q.shape[0] * Q.shape[1])
        data = np.asarray(Q.data, dtype=np.float64) / scale
        mean = float(data.sum()) / size
        second_moment = float(np.square(data).sum()) / size
        return (
            float(np.abs(data).sum()) / size,
            float(np.sqrt(max(second_moment - mean**2, 0.0))),
            float(Q.nnz) / size,
            float(np.asarray(Q.diagonal()).mean()) / scale,
        )
    M = np.asarray(model.Q) / scale
    return (
        float(np.abs(M).mean()),
        float(M.std()),
        float(np.count_nonzero(M)) / M.size,
        float(np.diag(M).mean()),
    )


class QuboStatisticsExtractor(FeatureExtractor):
    """Problem-agnostic features derived from the objective and penalty QUBOs."""

    _NUM_FEATURES = 12

    @property
    def dim(self) -> int:
        return self._NUM_FEATURES

    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        encoding = problem.encode()
        n = problem.num_qubo_variables
        obj_scale = max(encoding.objective.max_abs_coefficient(), 1.0)
        pen_scale = max(encoding.penalty.max_abs_coefficient(), 1.0)
        obj_abs_mean, obj_std, obj_density, obj_diag_mean = _scaled_matrix_stats(
            encoding.objective, obj_scale
        )
        pen_abs_mean, pen_std, pen_density, pen_diag_mean = _scaled_matrix_stats(
            encoding.penalty, pen_scale
        )
        return np.array(
            [
                float(n),
                float(np.log(n)),
                obj_abs_mean,
                obj_std,
                obj_density,
                obj_diag_mean,
                pen_abs_mean,
                pen_std,
                pen_density,
                pen_diag_mean,
                obj_scale / (pen_scale + 1e-12),
                float(problem.relaxation_scale()),
            ]
        )


class CompositeExtractor(FeatureExtractor):
    """Concatenation of several extractors (e.g. statistics + learned embedding)."""

    def __init__(self, *extractors: FeatureExtractor) -> None:
        if not extractors:
            raise ValueError("at least one extractor is required")
        self._extractors = extractors

    @property
    def dim(self) -> int:
        return sum(extractor.dim for extractor in self._extractors)

    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        return np.concatenate([extractor.extract(problem) for extractor in self._extractors])


def default_extractor_for(problem: ConstrainedProblem) -> FeatureExtractor:
    """Sensible default extractor for a problem type."""
    if isinstance(problem, TSPProblem):
        return TSPStatisticsExtractor()
    return QuboStatisticsExtractor()


# --------------------------------------------------------------- memoisation
class CacheInfo(NamedTuple):
    """Hit/miss counters of a feature cache (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class _FingerprintLRU:
    """A small thread-safe LRU keyed by fingerprint strings.

    Values are feature vectors; they are returned as copies so a caller
    mutating its result cannot poison the cache.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: str) -> "np.ndarray | None":
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value.copy()

    def store(self, key: str, value: np.ndarray) -> None:
        with self._lock:
            self._entries[key] = np.asarray(value, dtype=np.float64).copy()
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, self.maxsize, len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


class MemoisedExtractor(FeatureExtractor):
    """Wrap any extractor with an encoding-fingerprint LRU.

    Repeat traffic on the same instance (the portfolio's per-request feature
    lookup, the tuning loops logging one record per trial) pays the feature
    computation once: the key is the problem's *encoding* fingerprint, which
    identifies the instance independently of the relaxation parameter.
    """

    def __init__(self, inner: FeatureExtractor, maxsize: int = 256) -> None:
        self._inner = inner
        self._cache = _FingerprintLRU(maxsize=maxsize)

    @property
    def dim(self) -> int:
        return self._inner.dim

    def extract(self, problem: ConstrainedProblem) -> np.ndarray:
        key = problem.encode().fingerprint()
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        features = np.asarray(self._inner.extract(problem), dtype=np.float64)
        self._cache.store(key, features)
        return features.copy()

    def cache_info(self) -> CacheInfo:
        return self._cache.cache_info()

    def cache_clear(self) -> None:
        self._cache.clear()


#: Process-wide cache behind :func:`model_feature_vector`: the portfolio
#: solver calls it once per request, and repeat traffic on the same model is
#: a fingerprint lookup instead of a matrix scan.
_MODEL_FEATURE_CACHE = _FingerprintLRU(maxsize=256)

#: Length of the :func:`model_feature_vector` output.
MODEL_FEATURE_DIM = 8


def model_feature_vector(model) -> np.ndarray:
    """Fixed-size feature vector of a :class:`~repro.qubo.model.QUBOModel`.

    This is the feature space the portfolio conditions on: a solver call sees
    only the relaxed model (not the problem that produced it), so the outcome
    log and the per-request lookup must describe *models*.  Storage-aware
    (sparse models are summarised from their CSR data) and memoised by model
    fingerprint.
    """
    key = model.fingerprint()
    cached = _MODEL_FEATURE_CACHE.lookup(key)
    if cached is not None:
        return cached
    n = model.num_variables
    scale = max(float(model.max_abs_coefficient()), 1e-12)
    abs_mean, std, density, diag_mean = _scaled_matrix_stats(model, scale)
    features = np.array(
        [
            float(n),
            float(np.log(max(n, 1))),
            abs_mean,
            std,
            density,
            diag_mean,
            float(np.log10(scale)) if scale > 0 else 0.0,
            abs_mean / (std + 1e-12),
        ]
    )
    _MODEL_FEATURE_CACHE.store(key, features)
    return features


def model_feature_cache_info() -> CacheInfo:
    """Hit/miss counters of the :func:`model_feature_vector` cache."""
    return _MODEL_FEATURE_CACHE.cache_info()


def model_feature_cache_clear() -> None:
    """Reset the :func:`model_feature_vector` cache (tests)."""
    _MODEL_FEATURE_CACHE.clear()
