"""High-level QROSS tuner.

:class:`QROSSTuner` plugs the QROSS strategies into the same
:class:`~repro.tuning.base.ParameterTuner` interface as the generic baselines:
the first trial comes from MFS, the next trials from PBS at the configured
feasibility targets (all without consuming solver feedback), and every further
trial from the Online Fitting Strategy, which reuses the whole trial history
for its sigmoid fit — exactly the composed strategy benchmarked in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.strategies.composed import ComposedStrategyConfig, offline_proposals
from repro.core.strategies.online_fitting import OnlineFittingStrategy
from repro.core.surrogate import SolverSurrogate
from repro.problems.base import ConstrainedProblem
from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory, TrialResult
from repro.utils.rng import RngLike


class QROSSTuner(ParameterTuner):
    """QROSS composed strategy behind the generic tuner interface.

    Parameters
    ----------
    surrogate:
        A trained :class:`~repro.core.surrogate.SolverSurrogate`.
    problem:
        The instance being tuned (one tuner instance per problem instance).
    bounds:
        Relaxation-parameter search bounds.
    config:
        Offline-proposal schedule (MFS on/off, PBS targets, batch size).
    """

    name = "QROSS"

    def __init__(
        self,
        surrogate: SolverSurrogate,
        problem: ConstrainedProblem,
        bounds: ParameterBounds,
        config: ComposedStrategyConfig | None = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(bounds, rng)
        if not surrogate.is_trained:
            raise ValueError("QROSSTuner requires a trained surrogate")
        self.surrogate = surrogate
        self.problem = problem
        self.config = config or ComposedStrategyConfig()
        self._offline_queue: Optional[List[float]] = None
        self._online = OnlineFittingStrategy(bounds, rng=self.rng)
        self._observed_trials = 0

    # ----------------------------------------------------------------- tuner
    def _ensure_offline_queue(self) -> List[float]:
        if self._offline_queue is None:
            self._offline_queue = offline_proposals(
                self.surrogate, self.problem, self.bounds, self.config
            )
        return self._offline_queue

    def suggest(self, history: TrialHistory) -> float:
        self._sync_online_state(history)
        queue = self._ensure_offline_queue()
        if len(history) < len(queue):
            return self.bounds.clip(queue[len(history)])
        return self.bounds.clip(self._online.next_candidate())

    def observe(self, trial: TrialResult, history: TrialHistory) -> None:
        self._online.observe(trial.parameter, trial.probability_of_feasibility)
        self._observed_trials += 1

    def _sync_online_state(self, history: TrialHistory) -> None:
        """Feed any trials the tuner has not seen yet to the online strategy.

        This keeps the tuner correct even when the caller never invokes
        :meth:`observe` and only maintains the shared history object.
        """
        missing = history.trials[self._observed_trials :]
        for trial in missing:
            self._online.observe(trial.parameter, trial.probability_of_feasibility)
        self._observed_trials = len(history)

    def reset(self) -> None:
        self._offline_queue = None
        self._online = OnlineFittingStrategy(self.bounds, rng=self.rng)
        self._observed_trials = 0

    # ------------------------------------------------------------- utilities
    def offline_candidates(self) -> List[float]:
        """The zero-solver-call proposals (MFS + PBS) for this instance."""
        return list(self._ensure_offline_queue())

    def predicted_landscape(self, num_points: int = 128):
        """Surrogate view of the instance: ``(parameters, Pf, Eavg, Estd)``.

        This is the "predict the landscape of the objective function" feature
        highlighted in the paper's introduction.
        """
        import numpy as np

        grid = np.linspace(self.bounds.low, self.bounds.high, num_points)
        prediction = self.surrogate.predict(self.problem, grid)
        return prediction
