"""QROSS core: feature extraction, solver surrogate, strategies and the tuner."""

from repro.core.dataset import (
    FeatureNormalizer,
    SamplingPlan,
    SurrogateDataset,
    SurrogateRecord,
    collect_instance_records,
    collect_training_data,
    energy_scale,
    evaluate_parameter,
    parameter_scale,
)
from repro.core.features import (
    CompositeExtractor,
    FeatureExtractor,
    GraphEncoderExtractor,
    QuboStatisticsExtractor,
    TSPStatisticsExtractor,
    default_extractor_for,
)
from repro.core.fitness import expected_minimum_fitness, expected_minimum_of_gaussian_sample
from repro.core.strategies import (
    ComposedStrategyConfig,
    MinimumFitnessStrategy,
    OnlineFittingStrategy,
    PfBasedStrategy,
    SigmoidFit,
    fit_sigmoid,
    offline_proposals,
    propose_probability_ladder,
    sigmoid_ansatz,
)
from repro.core.surrogate import SolverSurrogate, SurrogateConfig, SurrogatePrediction
from repro.core.tuner import QROSSTuner

__all__ = [
    "FeatureExtractor",
    "TSPStatisticsExtractor",
    "GraphEncoderExtractor",
    "QuboStatisticsExtractor",
    "CompositeExtractor",
    "default_extractor_for",
    "SurrogateRecord",
    "SurrogateDataset",
    "SamplingPlan",
    "FeatureNormalizer",
    "collect_training_data",
    "collect_instance_records",
    "evaluate_parameter",
    "parameter_scale",
    "energy_scale",
    "SolverSurrogate",
    "SurrogateConfig",
    "SurrogatePrediction",
    "expected_minimum_fitness",
    "expected_minimum_of_gaussian_sample",
    "MinimumFitnessStrategy",
    "PfBasedStrategy",
    "propose_probability_ladder",
    "OnlineFittingStrategy",
    "SigmoidFit",
    "fit_sigmoid",
    "sigmoid_ansatz",
    "ComposedStrategyConfig",
    "offline_proposals",
    "QROSSTuner",
]
