"""Structured tracer: line-atomic JSONL spans with cross-process propagation.

A *span* is one timed operation — a service request, a remote dial, a worker
queue wait, an engine run.  Spans nest: each carries a ``trace_id`` shared by
the whole request and a ``parent_id`` naming its enclosing span, so a trace
file stitches into a tree even when the spans were emitted by different
threads **or different processes on different machines** (the ids ride the
engine-call wire header — see :func:`wire_context` / :func:`adopt_wire_context`
and ``service/distributed/wire.py``).

Design constraints, in order:

1. **Off means free.** Tracing is disabled unless ``QROSS_TRACE`` is set (or
   :func:`configure_tracing` is called).  When disabled, ``span()`` returns a
   single shared no-op context manager — no allocation, no clock read, no
   branch beyond one ``is None`` check.
2. **Byte-identity-neutral.** Ids come from ``os.urandom`` and timing from
   ``time.time``/``perf_counter`` — the tracer never touches a numpy
   ``Generator`` or the stdlib ``random`` module state, so seeded solves are
   byte-identical with tracing on or off (CI runs a canary leg proving it).
3. **Line-atomic concurrent appends.** Every span is ONE json line written
   with ONE ``os.write`` on an ``O_APPEND`` descriptor — the same discipline
   as ``portfolio/outcomes.py`` — so any number of threads and worker
   processes can share one sink without interleaving bytes.

Event schema (one JSON object per line)::

    {"trace_id": "16-hex", "span_id": "16-hex", "parent_id": "16-hex"|null,
     "name": "worker.solve", "ts": <epoch float, span start>,
     "dur_s": <float>, "pid": <int>, "attrs": {...}, "error": "Type: msg"?}

Render a sink with ``python -m repro.obs.report trace.jsonl``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Mapping, Optional

#: Environment switch.  Unset/"0"/"false"/"off" → disabled.  "1"/"true"/
#: "on"/"yes" → enabled, writing to ``qross-trace.jsonl`` in the CWD.  Any
#: other value is taken as the sink path itself.
TRACE_ENV = "QROSS_TRACE"

DEFAULT_TRACE_PATH = "qross-trace.jsonl"

_TRUTHY = ("1", "true", "on", "yes")
_FALSY = ("", "0", "false", "off", "no")


class TraceContext:
    """An active (trace_id, span_id) pair — what a child span attaches to."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


class _Local(threading.local):
    context: Optional[TraceContext] = None


_local = _Local()


def _new_id() -> str:
    # os.urandom, never numpy/stdlib random: ids must not perturb any seeded
    # stream (determinism contract).
    return os.urandom(8).hex()


class Tracer:
    """Owns the sink fd and emits finished spans as single atomic writes."""

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # O_APPEND + one os.write per line == atomic interleaving across
        # threads AND processes (POSIX appends are atomic per write).
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def emit(self, event: Dict[str, Any]) -> None:
        # After a fork the inherited fd is still valid and still O_APPEND,
        # but the cached pid would be stale — re-read it per event.
        event["pid"] = os.getpid()
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:  # pragma: no cover - double close
            pass


class _Span:
    """Context manager timing one operation and emitting it on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_ctx", "_prev", "_ts", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. the chosen worker)."""
        self.attrs.update(attrs)

    @property
    def context(self) -> TraceContext:
        return self._ctx

    def __enter__(self) -> "_Span":
        parent = _local.context
        trace_id = parent.trace_id if parent is not None else _new_id()
        self._ctx = TraceContext(trace_id, _new_id())
        self._prev = parent
        _local.context = self._ctx
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        _local.context = self._prev
        event: Dict[str, Any] = {
            "trace_id": self._ctx.trace_id,
            "span_id": self._ctx.span_id,
            "parent_id": self._prev.span_id if self._prev is not None else None,
            "name": self.name,
            "ts": self._ts,
            "dur_s": dur,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc is not None:
            event["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer.emit(event)
        return False


class _NoopSpan:
    """Shared do-nothing span: the entire cost of tracing-off."""

    __slots__ = ()
    context = None

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()

# Module tracer state: None = disabled, Tracer = enabled.  ``_configured``
# distinguishes "never looked at the env yet" from "explicitly configured".
_tracer: Optional[Tracer] = None
_configured = False
_config_lock = threading.Lock()


def _env_trace_path() -> Optional[str]:
    raw = os.environ.get(TRACE_ENV, "").strip()
    if raw.lower() in _FALSY:
        return None
    if raw.lower() in _TRUTHY:
        return DEFAULT_TRACE_PATH
    return raw


def _ensure_configured() -> Optional[Tracer]:
    global _tracer, _configured
    if _configured:
        return _tracer
    with _config_lock:
        if not _configured:
            path = _env_trace_path()
            _tracer = Tracer(path) if path is not None else None
            _configured = True
    return _tracer


def configure_tracing(path: "str | os.PathLike | None") -> None:
    """Enable tracing to ``path`` (or disable with ``None``), overriding env."""
    global _tracer, _configured
    with _config_lock:
        if _tracer is not None:
            _tracer.close()
        _tracer = Tracer(path) if path is not None else None
        _configured = True


def reset_tracing() -> None:
    """Back to unconfigured: the next span re-reads ``QROSS_TRACE``."""
    global _tracer, _configured
    with _config_lock:
        if _tracer is not None:
            _tracer.close()
        _tracer = None
        _configured = False
    _local.context = None


def tracing_enabled() -> bool:
    return _ensure_configured() is not None


def trace_path() -> Optional[str]:
    """The active sink path, or None when tracing is off."""
    tracer = _ensure_configured()
    return tracer.path if tracer is not None else None


def span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """A timed span context manager; a shared no-op when tracing is off.

    >>> with span("service.solve", solver="sa", seed=7) as sp:
    ...     sp.set(cache="miss")
    ...     ...
    """
    tracer = _ensure_configured()
    if tracer is None:
        return _NOOP_SPAN
    return _Span(tracer, name, attrs)


# ------------------------------------------------------ context manipulation
def current_context() -> Optional[TraceContext]:
    """The innermost active span's context on this thread, if any."""
    return _local.context


class _UseContext:
    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        self._prev = _local.context
        _local.context = self._ctx
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.context = self._prev
        return False


def use_context(ctx: Optional[TraceContext]) -> _UseContext:
    """Activate ``ctx`` on this thread for the body of a ``with`` block.

    Used to carry a request's context onto pool threads: capture
    ``current_context()`` at submit time, re-activate it inside the task.
    """
    return _UseContext(ctx)


# --------------------------------------------------------- wire propagation
def wire_context() -> Optional[Dict[str, str]]:
    """The current context as a wire-header payload, or None.

    Returns None when tracing is off or no span is active, so callers can
    leave the optional ``trace`` header field out entirely (old workers never
    see an unfamiliar key; new workers skip the adopt branch).
    """
    if not tracing_enabled():
        return None
    ctx = _local.context
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


def context_from_wire(payload: Optional[Mapping[str, Any]]) -> Optional[TraceContext]:
    """Parse a ``trace`` header field back into a context (None-tolerant)."""
    if not payload:
        return None
    trace_id = payload.get("trace_id")
    span_id = payload.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    return TraceContext(trace_id, span_id)


def adopt_wire_context(payload: Optional[Mapping[str, Any]]) -> _UseContext:
    """``use_context`` for a context received over the wire.

    Only adopts when no span is already active on this thread — when the
    remote worker's request span has already re-rooted the tree, the
    engine-call runner must nest under it rather than re-adopt the client's
    (already-ancestral) context and fork a second branch.
    """
    if _local.context is not None:
        return _UseContext(_local.context)
    return _UseContext(context_from_wire(payload))
