"""Render a JSONL trace sink into per-span latency breakdowns.

Usage::

    python -m repro.obs.report qross-trace.jsonl            # all traces
    python -m repro.obs.report qross-trace.jsonl --trace ID # one tree
    python -m repro.obs.report qross-trace.jsonl --summary  # aggregates only

For every trace the tool stitches the spans into a tree by ``parent_id`` —
spans emitted by different threads and different *processes* (worker spans
arrive via the wire-propagated trace context) interleave into one view:

.. code-block:: text

    trace 1f2e3d4c5b6a7988
    └─ service.solve                          41.8ms
       └─ remote.run                          41.2ms  worker=127.0.0.1:7071
          └─ remote.rpc                       40.9ms
             └─ worker.request                39.6ms
                ├─ worker.queue_wait           0.1ms
                └─ worker.solve               39.1ms
                   └─ engine.sample           38.7ms  solver=sa

followed by an aggregate table (count / total / mean / p50 / max per span
name).  Everything is stdlib-only; malformed lines are counted and skipped.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, TextIO


def load_events(path: str) -> tuple[List[Dict[str, Any]], int]:
    """Parse a trace sink; returns ``(events, skipped_line_count)``."""
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(event, dict) or "span_id" not in event or "name" not in event:
                skipped += 1
                continue
            events.append(event)
    return events, skipped


def build_trees(events: Iterable[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group events by trace and attach ``children`` lists by ``parent_id``.

    Returns ``{trace_id: [root_event, ...]}``; spans whose parent never made
    it into the sink (e.g. a worker trace whose client wrote elsewhere) are
    promoted to roots rather than dropped.  Children sort by start time.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for event in events:
        by_trace.setdefault(str(event.get("trace_id")), []).append(event)
    trees: Dict[str, List[Dict[str, Any]]] = {}
    for trace_id, spans in by_trace.items():
        by_id = {span["span_id"]: span for span in spans}
        roots: List[Dict[str, Any]] = []
        for span in spans:
            span.setdefault("children", [])
            parent = by_id.get(span.get("parent_id"))
            if parent is None or parent is span:
                roots.append(span)
            else:
                parent.setdefault("children", []).append(span)
        for span in spans:
            span["children"].sort(key=lambda s: s.get("ts", 0.0))
        roots.sort(key=lambda s: s.get("ts", 0.0))
        trees[trace_id] = roots
    return trees


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _format_attrs(span: Dict[str, Any]) -> str:
    parts = [f"{k}={v}" for k, v in (span.get("attrs") or {}).items()]
    if span.get("error"):
        parts.append(f"ERROR[{span['error']}]")
    return "  ".join(parts)


def render_tree(
    roots: List[Dict[str, Any]], out: TextIO, indent: str = "", name_width: int = 36
) -> None:
    for index, span in enumerate(roots):
        last = index == len(roots) - 1
        branch = "└─ " if last else "├─ " if indent or len(roots) > 1 else "└─ "
        label = f"{indent}{branch}{span.get('name', '?')}"
        dur = _format_duration(float(span.get("dur_s", 0.0)))
        attrs = _format_attrs(span)
        line = f"{label:<{name_width}} {dur:>8}"
        if attrs:
            line += f"  {attrs}"
        print(line, file=out)
        child_indent = indent + ("   " if last else "│  ")
        render_tree(span.get("children", []), out, child_indent, name_width)


def render_summary(events: List[Dict[str, Any]], out: TextIO) -> None:
    by_name: Dict[str, List[float]] = {}
    for event in events:
        by_name.setdefault(str(event.get("name", "?")), []).append(
            float(event.get("dur_s", 0.0))
        )
    print(f"{'span':<28} {'count':>6} {'total':>9} {'mean':>9} {'p50':>9} {'max':>9}", file=out)
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = sorted(by_name[name])
        total = sum(durs)
        p50 = durs[len(durs) // 2]
        print(
            f"{name:<28} {len(durs):>6} {_format_duration(total):>9} "
            f"{_format_duration(total / len(durs)):>9} {_format_duration(p50):>9} "
            f"{_format_duration(durs[-1]):>9}",
            file=out,
        )


def render_report(
    path: str,
    out: TextIO,
    trace_id: Optional[str] = None,
    summary_only: bool = False,
) -> int:
    try:
        events, skipped = load_events(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=out)
        return 1
    if trace_id is not None:
        events = [e for e in events if e.get("trace_id") == trace_id]
    if not events:
        print(f"no trace events in {path}" + (f" for trace {trace_id}" if trace_id else ""), file=out)
        return 1
    if not summary_only:
        for tid, roots in build_trees(events).items():
            print(f"trace {tid}", file=out)
            render_tree(roots, out)
            print("", file=out)
    render_summary(events, out)
    if skipped:
        print(f"\n({skipped} malformed line(s) skipped)", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a QROSS JSONL trace file into span trees and latency aggregates.",
    )
    parser.add_argument("path", help="trace sink (JSONL, one span per line)")
    parser.add_argument("--trace", help="restrict to one trace id")
    parser.add_argument(
        "--summary", action="store_true", help="aggregate table only, no trees"
    )
    args = parser.parse_args(argv)
    return render_report(args.path, sys.stdout, trace_id=args.trace, summary_only=args.summary)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
