"""Opt-in engine profiling: per-sweep rate/acceptance samples, RNG-neutral.

``QROSS_ENGINE_PROFILE=1`` makes the annealing solvers attach a
:class:`SweepProfiler` to their :class:`~repro.solvers.engine.AnnealingState`.
The engine's block-flip mutator then counts proposed/accepted flips into it,
the solver marks sweep boundaries and (for parallel tempering) ladder swap
rounds, and ``finish()`` both publishes the samples to the metrics registry
(``qross_engine_sweeps_per_second`` / ``qross_engine_sweep_acceptance`` /
``qross_engine_swap_acceptance`` histograms) and returns a summary dict that
the solvers merge into the sample-set info under ``"engine_profile"``.

The profiler observes only *counts* (sizes of accept masks the solver computed
anyway) and the wall clock — it never draws randomness and never changes what
the kernels compute, so seeded results are byte-identical with profiling on or
off.  When disabled (the default), the cost inside the engine is a single
``is None`` attribute test per block.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from repro.obs import metrics

#: Environment switch: "1"/"true"/"on"/"yes" attach a profiler per solve.
PROFILE_ENV = "QROSS_ENGINE_PROFILE"

#: Sweep-throughput buckets (sweeps/second) spanning huge dense instances
#: (~1/s) to tiny test models (tens of thousands/s).
SWEEP_RATE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 20000.0, 50000.0,
)


def profiling_enabled() -> bool:
    return os.environ.get(PROFILE_ENV, "").strip().lower() in ("1", "true", "on", "yes")


def engine_profiler(solver: str) -> Optional["SweepProfiler"]:
    """A fresh profiler when ``QROSS_ENGINE_PROFILE`` is on, else ``None``.

    Solvers attach the result directly to ``state.profiler`` — ``None`` keeps
    the engine on its zero-overhead path.
    """
    return SweepProfiler(solver) if profiling_enabled() else None


class SweepProfiler:
    """Accumulates flip/swap statistics for one solver invocation.

    Not thread-safe and not meant to be: each solve owns one instance, used
    from the single thread driving its sweep loop.
    """

    def __init__(self, solver: str) -> None:
        self.solver = solver
        self._rate_hist = metrics.histogram(
            "qross_engine_sweeps_per_second",
            labels={"solver": solver},
            buckets=SWEEP_RATE_BUCKETS,
            help="Profiled sweep throughput per solve (opt-in)",
        )
        self._accept_hist = metrics.histogram(
            "qross_engine_sweep_acceptance",
            labels={"solver": solver},
            buckets=metrics.RATE_BUCKETS,
            help="Per-sweep fraction of proposed flips accepted (opt-in)",
        )
        self._swap_hist = metrics.histogram(
            "qross_engine_swap_acceptance",
            labels={"solver": solver},
            buckets=metrics.RATE_BUCKETS,
            help="Per-round PT ladder swap acceptance (opt-in)",
        )
        self._sweeps = 0
        self._sweep_seconds = 0.0
        self._proposed = 0
        self._accepted = 0
        self._sweep_proposed = 0
        self._sweep_accepted = 0
        self._swap_proposed = 0
        self._swap_accepted = 0
        self._t_sweep = time.perf_counter()

    # ------------------------------------------------------- engine-side hook
    def count_flips(self, proposed: int, accepted: int) -> None:
        """Fold one block application's proposal/accept counts in.

        Called by ``AnnealingState.apply_block_flips`` whenever a profiler is
        attached; ``proposed`` is the accept-mask size, ``accepted`` its true
        count.
        """
        self._sweep_proposed += proposed
        self._sweep_accepted += accepted

    # ------------------------------------------------------- solver-side hooks
    def end_sweep(self) -> None:
        """Mark a sweep boundary: sample throughput and acceptance."""
        now = time.perf_counter()
        dur = now - self._t_sweep
        self._t_sweep = now
        self._sweeps += 1
        self._sweep_seconds += dur
        if dur > 0:
            self._rate_hist.observe(1.0 / dur)
        if self._sweep_proposed:
            self._accept_hist.observe(self._sweep_accepted / self._sweep_proposed)
        self._proposed += self._sweep_proposed
        self._accepted += self._sweep_accepted
        self._sweep_proposed = 0
        self._sweep_accepted = 0

    def record_swap_round(self, proposed: int, accepted: int) -> None:
        """Record one parallel-tempering neighbour-swap round."""
        self._swap_proposed += proposed
        self._swap_accepted += accepted
        if proposed:
            self._swap_hist.observe(accepted / proposed)

    def finish(self) -> Dict[str, Any]:
        """Summary for the sample-set info (``info["engine_profile"]``)."""
        out: Dict[str, Any] = {
            "solver": self.solver,
            "sweeps": self._sweeps,
            "sweep_seconds": self._sweep_seconds,
            "sweeps_per_second": (
                self._sweeps / self._sweep_seconds if self._sweep_seconds > 0 else 0.0
            ),
            "flips_proposed": self._proposed,
            "flips_accepted": self._accepted,
            "flip_acceptance": (self._accepted / self._proposed if self._proposed else 0.0),
        }
        if self._swap_proposed:
            out["swaps_proposed"] = self._swap_proposed
            out["swaps_accepted"] = self._swap_accepted
            out["swap_acceptance"] = self._swap_accepted / self._swap_proposed
        return out
