"""``repro.obs`` — zero-dependency telemetry for the solve service.

Three independent pieces, all stdlib-only and all guaranteed never to touch a
seeded random stream (observing a solve cannot change its bytes):

* :mod:`repro.obs.trace` — structured spans written as line-atomic JSONL,
  with trace-context propagation across threads and across the engine-call
  wire (``QROSS_TRACE``; render sinks with ``python -m repro.obs.report``).
* :mod:`repro.obs.metrics` — the process-wide counter/gauge/histogram
  registry underneath every ``stats()`` dict, with Prometheus-text exposition
  (``QROSS_METRICS=<path>`` dumps a snapshot at exit).
* :mod:`repro.obs.profile` — opt-in per-sweep engine profiling
  (``QROSS_ENGINE_PROFILE``).
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    METRICS_ENV,
    RATE_BUCKETS,
    STATS_SCHEMA,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    registry,
    render_prometheus,
    write_prometheus,
)
from repro.obs.profile import PROFILE_ENV, SweepProfiler, engine_profiler, profiling_enabled
from repro.obs.trace import (
    TRACE_ENV,
    TraceContext,
    adopt_wire_context,
    configure_tracing,
    context_from_wire,
    current_context,
    reset_tracing,
    span,
    trace_path,
    tracing_enabled,
    use_context,
    wire_context,
)

__all__ = [
    "LATENCY_BUCKETS",
    "METRICS_ENV",
    "PROFILE_ENV",
    "RATE_BUCKETS",
    "STATS_SCHEMA",
    "TRACE_ENV",
    "MetricsRegistry",
    "SweepProfiler",
    "TraceContext",
    "adopt_wire_context",
    "configure_tracing",
    "context_from_wire",
    "counter",
    "current_context",
    "engine_profiler",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "profiling_enabled",
    "registry",
    "render_prometheus",
    "reset_tracing",
    "span",
    "trace_path",
    "tracing_enabled",
    "use_context",
    "wire_context",
    "write_prometheus",
]
