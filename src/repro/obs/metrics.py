"""Process-wide metrics registry: named counters, gauges and histograms.

This is the *substrate* under every ``stats()`` readout in the library — the
solve service, the admission gates, the remote fleet client, the worker
control plane and the cache tiers all count into one registry, so a single
snapshot answers "what has this process done" without chasing four divergent
ad-hoc dicts.  The registry is always live (an increment is one short
lock-guarded integer add — the same cost the ad-hoc counters already paid);
the ``QROSS_METRICS`` environment variable additionally dumps a
Prometheus-text snapshot to a file at interpreter exit.

Key schema (``qross.stats/1``)
------------------------------
Metric names follow Prometheus conventions — ``qross_<component>_<what>`` with
``_total`` on monotonic counters and ``_seconds`` on latency histograms;
low-cardinality dimensions are labels:

========================================  =====================================
``qross_admission_admitted_total``        work units admitted past a gate
``qross_admission_shed_total``            work units shed at a gate bound
``qross_admission_pending``               gauge: admitted-but-unfinished units
(labels)                                  ``component="service"|"worker"``
``qross_service_tasks_total``             settled service tasks
(labels)                                  ``outcome="served"|"failed"``
``qross_service_request_seconds``         request latency histogram
(labels)                                  ``path="seeded"|"unseeded"|"merged"``
``qross_cache_lookups_total``             cache probe outcomes
(labels)                                  ``cache="call"|"sharded"``,
                                          ``result="hit"|"miss"``
``qross_cache_evictions_total``           LRU evictions (``cache="call"``)
``qross_cache_corrupt_removed_total``     corrupt disk entries dropped
``qross_remote_requests_total``           remote engine calls attempted
``qross_remote_served_total``             remote engine calls answered
``qross_remote_transport_retries_total``  retries after transport failures
``qross_remote_overload_retries_total``   retries after worker sheds
``qross_remote_model_reships_total``      full payload re-sends after ref miss
``qross_remote_dials_total``              fresh TCP connects + handshakes
``qross_remote_fallback_total``           unserialisable-solver local runs
``qross_remote_rpc_seconds``              one-attempt round-trip latency
``qross_worker_served_total``             engine calls a worker executed
``qross_worker_solve_errors_total``       engine calls that raised
``qross_worker_solve_seconds``            worker-side solve latency
``qross_engine_sample_seconds``           end-to-end ``solver.sample`` latency
(labels)                                  ``solver=<registry name>``
``qross_engine_sweeps_per_second``        profiled sweep throughput (opt-in)
``qross_engine_sweep_acceptance``         per-sweep flip acceptance (opt-in)
``qross_engine_swap_acceptance``          PT ladder swap acceptance (opt-in)
``qross_portfolio_rounds_total``          portfolio scheduling rounds
``qross_portfolio_slices_total``          member budget slices dispatched
``qross_portfolio_cancellations_total``   members cancelled by the strategy
========================================  =====================================

The legacy per-instance ``stats()`` dicts remain (their old keys are aliases
for one release — see the ``schema`` field they now carry); the registry is
the cross-instance, cross-component aggregate.

Everything here is stdlib-only and RNG-free: observing a metric can never
perturb a seeded solve.
"""

from __future__ import annotations

import atexit
import bisect
import math
import os
import threading
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: Environment variable naming a file that receives a Prometheus-text snapshot
#: of the registry at interpreter exit (unset = no dump; the registry itself
#: is always live).
METRICS_ENV = "QROSS_METRICS"

#: Version tag of the unified stats key schema carried by every ``stats()``
#: dict that has been migrated onto the registry.
STATS_SCHEMA = "qross.stats/1"

#: Latency histogram buckets (seconds): microbenchmark floor to minutes-long
#: solves.  Explicit buckets keep ``observe`` allocation-free and O(log n).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Buckets for rates in [0, 1] (acceptance / swap rates).
RATE_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)

LabelsLike = Optional[Mapping[str, str]]


def _label_key(labels: LabelsLike) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: Sequence[Tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonic counter.  ``inc`` is one lock-guarded add — safe anywhere."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (pending work, pool sizes)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Explicit-bucket histogram (cumulative, Prometheus-style exposition).

    ``observe`` is a binary search plus three lock-guarded adds — cheap enough
    for per-request latency recording on the hot path.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._lock = threading.Lock()
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, overflow slot last."""
        with self._lock:
            return tuple(self._counts)


class MetricsRegistry:
    """Named metric families, each fanning out over label sets.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the family (name, kind, help), later calls return the existing
    instance for the given label set.  Re-registering a name under a different
    kind is an error — it would render an unreadable exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, help, {label_key: metric})
        self._families: Dict[str, Tuple[str, str, Dict[tuple, object]]] = {}

    def _get(self, name: str, kind: str, help: str, labels: LabelsLike, factory):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {family[0]}, "
                    f"cannot re-register as a {kind}"
                )
            metric = family[2].get(key)
            if metric is None:
                metric = factory()
                family[2][key] = metric
            return metric

    def counter(self, name: str, labels: LabelsLike = None, help: str = "") -> Counter:
        return self._get(name, "counter", help, labels, Counter)

    def gauge(self, name: str, labels: LabelsLike = None, help: str = "") -> Gauge:
        return self._get(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: LabelsLike = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._get(name, "histogram", help, labels, lambda: Histogram(buckets))
        if metric.bounds != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(
                f"histogram {name!r} already exists with different buckets"
            )
        return metric

    # ------------------------------------------------------------------ readouts
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name{labels}: value}`` view (histograms expand to _count/_sum).

        Values are plain floats/ints, so a snapshot is JSON-serialisable —
        this is what remote workers ship in their ``stats_ack`` frames.
        """
        out: Dict[str, float] = {}
        with self._lock:
            families = [
                (name, kind, dict(children))
                for name, (kind, _, children) in self._families.items()
            ]
        for name, kind, children in families:
            for key, metric in children.items():
                suffix = _render_labels(key)
                if kind == "histogram":
                    out[f"{name}_count{suffix}"] = metric.count
                    out[f"{name}_sum{suffix}"] = metric.sum
                else:
                    out[f"{name}{suffix}"] = metric.value
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines = []
        with self._lock:
            families = [
                (name, kind, help, dict(children))
                for name, (kind, help, children) in sorted(self._families.items())
            ]
        for name, kind, help, children in families:
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(children):
                metric = children[key]
                if kind == "histogram":
                    cumulative = 0
                    counts = metric.bucket_counts()
                    for bound, count in zip(metric.bounds, counts):
                        cumulative += count
                        labels = _render_labels(key, f'le="{bound:g}"')
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    cumulative += counts[-1]
                    labels = _render_labels(key, 'le="+Inf"')
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    lines.append(f"{name}_sum{_render_labels(key)} {metric.sum:g}")
                    lines.append(f"{name}_count{_render_labels(key)} {metric.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {metric.value:g}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family.  For *private* registries in tests only — never
        call this on the global registry: modules hold direct references to
        its metric objects, which a reset would silently orphan."""
        with self._lock:
            self._families.clear()


# ------------------------------------------------------------- global registry
_REGISTRY = MetricsRegistry()
_exporter_installed = False
_exporter_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide registry every library component counts into."""
    _maybe_install_exporter()
    return _REGISTRY


def counter(name: str, labels: LabelsLike = None, help: str = "") -> Counter:
    return registry().counter(name, labels=labels, help=help)


def gauge(name: str, labels: LabelsLike = None, help: str = "") -> Gauge:
    return registry().gauge(name, labels=labels, help=help)


def histogram(
    name: str,
    labels: LabelsLike = None,
    buckets: Sequence[float] = LATENCY_BUCKETS,
    help: str = "",
) -> Histogram:
    return registry().histogram(name, labels=labels, buckets=buckets, help=help)


def metrics_snapshot() -> Dict[str, float]:
    """Flat snapshot of the global registry (JSON-safe)."""
    return registry().snapshot()


def render_prometheus() -> str:
    """Prometheus-text exposition of the global registry."""
    return registry().render_prometheus()


def write_prometheus(path: "str | os.PathLike") -> None:
    """Write the exposition snapshot atomically (temp file + ``os.replace``)."""
    from repro.utils.io import atomic_write_bytes

    atomic_write_bytes(path, render_prometheus().encode("utf-8"))


def _maybe_install_exporter() -> None:
    """Install the at-exit ``QROSS_METRICS`` file dump once, lazily."""
    global _exporter_installed
    if _exporter_installed:
        return
    with _exporter_lock:
        if _exporter_installed:
            return
        _exporter_installed = True
        target = os.environ.get(METRICS_ENV, "").strip()
        if target and target.lower() not in ("0", "false", "off"):
            @atexit.register
            def _dump() -> None:  # pragma: no cover - interpreter teardown
                try:
                    write_prometheus(target)
                except Exception:
                    pass
