"""Random MVC instance generation.

The Appendix B experiment uses Erdős–Rényi graphs with 65 vertices, 50 % edge
probability and vertex weights uniform on ``[0, 1)``; those are the defaults
here (65 being the largest complete graph embeddable on the DW_2000Q chimera
topology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.problems.mvc.instance import MVCInstance
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class RandomMVCConfig:
    """Configuration of the random graph generator."""

    num_vertices: int = 65
    edge_probability: float = 0.5
    weighted: bool = True

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ValueError("num_vertices must be at least 2")
        if not (0.0 < self.edge_probability <= 1.0):
            raise ValueError("edge_probability must lie in (0, 1]")


def generate_mvc_instance(
    config: RandomMVCConfig | None = None,
    rng: RngLike = None,
    name: str | None = None,
) -> MVCInstance:
    """Generate one Erdős–Rényi weighted MVC instance."""
    config = config or RandomMVCConfig()
    rng = ensure_rng(rng)
    n = config.num_vertices
    upper = rng.random((n, n)) < config.edge_probability
    upper = np.triu(upper, k=1)
    adjacency = upper | upper.T
    # Isolated vertices are legal but make the instance degenerate; connect them
    # to a random neighbour so every vertex participates in at least one edge.
    degrees = adjacency.sum(axis=1)
    for vertex in np.where(degrees == 0)[0]:
        other = int(rng.integers(0, n - 1))
        other = other if other < vertex else other + 1
        adjacency[vertex, other] = adjacency[other, vertex] = True
    weights = rng.random(n) if config.weighted else np.ones(n)
    instance = MVCInstance(
        adjacency=adjacency,
        weights=weights,
        name=name or f"mvc-er-{n}-{config.edge_probability:.2f}",
    )
    instance.metadata["edge_probability"] = config.edge_probability
    return instance


def generate_sparse_mvc_instance(
    num_vertices: int,
    num_edges: int | None = None,
    edge_density: float | None = None,
    weighted: bool = True,
    rng: RngLike = None,
    name: str | None = None,
) -> MVCInstance:
    """Generate a large sparse MVC instance without any dense allocation.

    Samples ``num_edges`` distinct undirected edges uniformly (a G(n, M)
    random graph) and builds the instance through
    :meth:`MVCInstance.from_edges`, so the adjacency is CSR end to end —
    suitable for instances far beyond what a dense adjacency matrix allows.
    Exactly one of ``num_edges`` / ``edge_density`` must be given
    (``edge_density`` is the fraction of the ``n * (n - 1) / 2`` vertex pairs).
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be at least 2")
    if (num_edges is None) == (edge_density is None):
        raise ValueError("provide exactly one of num_edges= or edge_density=")
    n = int(num_vertices)
    max_edges = n * (n - 1) // 2
    if num_edges is None:
        if not (0.0 < edge_density <= 1.0):
            raise ValueError("edge_density must lie in (0, 1]")
        num_edges = int(round(edge_density * max_edges))
    num_edges = int(num_edges)
    if not (0 < num_edges <= max_edges):
        raise ValueError(f"num_edges must lie in [1, {max_edges}]")
    rng = ensure_rng(rng)

    # Rejection sampling on (i, j) pairs keeps memory at O(num_edges): draw a
    # batch of ordered pairs, fold to i < j, dedupe by linear code, repeat.
    codes = np.zeros(0, dtype=np.int64)
    while codes.size < num_edges:
        batch = max(1024, int(1.5 * (num_edges - codes.size)))
        raw = rng.integers(0, n, size=(batch, 2), dtype=np.int64)
        raw = raw[raw[:, 0] != raw[:, 1]]
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        codes = np.unique(np.concatenate([codes, lo * n + hi]))
    codes = rng.permutation(codes)[:num_edges]
    edges = np.column_stack([codes // n, codes % n])
    weights = rng.random(n) if weighted else None
    instance = MVCInstance.from_edges(
        n,
        edges,
        weights=weights,
        name=name or f"mvc-sparse-{n}-{num_edges}",
    )
    instance.metadata["num_edges"] = num_edges
    return instance


def generate_mvc_dataset(
    num_instances: int,
    config: RandomMVCConfig | None = None,
    rng: RngLike = None,
) -> List[MVCInstance]:
    """Generate several independent random MVC instances."""
    if num_instances <= 0:
        raise ValueError("num_instances must be positive")
    rng = ensure_rng(rng)
    return [
        generate_mvc_instance(config=config, rng=rng, name=f"mvc-{index:03d}")
        for index in range(num_instances)
    ]
