"""Random MVC instance generation.

The Appendix B experiment uses Erdős–Rényi graphs with 65 vertices, 50 % edge
probability and vertex weights uniform on ``[0, 1)``; those are the defaults
here (65 being the largest complete graph embeddable on the DW_2000Q chimera
topology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.problems.mvc.instance import MVCInstance
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class RandomMVCConfig:
    """Configuration of the random graph generator."""

    num_vertices: int = 65
    edge_probability: float = 0.5
    weighted: bool = True

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ValueError("num_vertices must be at least 2")
        if not (0.0 < self.edge_probability <= 1.0):
            raise ValueError("edge_probability must lie in (0, 1]")


def generate_mvc_instance(
    config: RandomMVCConfig | None = None,
    rng: RngLike = None,
    name: str | None = None,
) -> MVCInstance:
    """Generate one Erdős–Rényi weighted MVC instance."""
    config = config or RandomMVCConfig()
    rng = ensure_rng(rng)
    n = config.num_vertices
    upper = rng.random((n, n)) < config.edge_probability
    upper = np.triu(upper, k=1)
    adjacency = upper | upper.T
    # Isolated vertices are legal but make the instance degenerate; connect them
    # to a random neighbour so every vertex participates in at least one edge.
    degrees = adjacency.sum(axis=1)
    for vertex in np.where(degrees == 0)[0]:
        other = int(rng.integers(0, n - 1))
        other = other if other < vertex else other + 1
        adjacency[vertex, other] = adjacency[other, vertex] = True
    weights = rng.random(n) if config.weighted else np.ones(n)
    instance = MVCInstance(
        adjacency=adjacency,
        weights=weights,
        name=name or f"mvc-er-{n}-{config.edge_probability:.2f}",
    )
    instance.metadata["edge_probability"] = config.edge_probability
    return instance


def generate_mvc_dataset(
    num_instances: int,
    config: RandomMVCConfig | None = None,
    rng: RngLike = None,
) -> List[MVCInstance]:
    """Generate several independent random MVC instances."""
    if num_instances <= 0:
        raise ValueError("num_instances must be positive")
    rng = ensure_rng(rng)
    return [
        generate_mvc_instance(config=config, rng=rng, name=f"mvc-{index:03d}")
        for index in range(num_instances)
    ]
