"""Weighted Minimum Vertex Cover instances (paper Appendix B)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.utils.sparse import scipy_sparse as _sparse


@dataclass
class MVCInstance:
    """An undirected graph with vertex weights.

    Parameters
    ----------
    adjacency:
        Symmetric boolean adjacency matrix with a ``False`` diagonal — a dense
        ndarray or a scipy sparse matrix.  Sparse adjacency keeps large sparse
        graphs (the regime the sparse QUBO encoding targets) free of any dense
        ``n x n`` allocation; :meth:`from_edges` builds one from an edge list.
    weights:
        Per-vertex weights; defaults to all ones (unweighted MVC).
    name:
        Instance label.
    """

    adjacency: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "mvc"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        adjacency = self.adjacency
        if _sparse is not None and _sparse.issparse(adjacency):
            adjacency = _sparse.csr_array(adjacency).astype(bool)
            if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
                raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
            if (adjacency != adjacency.T).nnz != 0:
                raise ValueError("adjacency must be symmetric")
            if adjacency.diagonal().any():
                raise ValueError("adjacency must have no self-loops")
        else:
            adjacency = np.asarray(adjacency, dtype=bool)
            if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
                raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
            if not np.array_equal(adjacency, adjacency.T):
                raise ValueError("adjacency must be symmetric")
            if np.any(np.diag(adjacency)):
                raise ValueError("adjacency must have no self-loops")
        self.adjacency = adjacency
        if self.weights is None:
            self.weights = np.ones(adjacency.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.shape != (adjacency.shape[0],):
                raise ValueError("weights must have one entry per vertex")
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
            self.weights = weights
        self._edge_cache: Optional[np.ndarray] = None

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Sequence[Sequence[int]] | np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "mvc",
    ) -> "MVCInstance":
        """Build an instance from an ``(m, 2)`` edge list without densifying.

        Requires scipy (the adjacency is stored as CSR).  Duplicate edges and
        either vertex order are accepted; self-loops are rejected.
        """
        if _sparse is None:
            raise RuntimeError("scipy is required for edge-list MVC instances")
        num_vertices = int(num_vertices)
        if num_vertices < 2:
            raise ValueError("num_vertices must be at least 2")
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size:
            if edges.min() < 0 or edges.max() >= num_vertices:
                raise ValueError(f"edge endpoints out of range for n={num_vertices}")
            if np.any(edges[:, 0] == edges[:, 1]):
                raise ValueError("self-loops are not allowed")
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = np.ones(rows.shape[0], dtype=np.int8)
        adjacency = _sparse.coo_array(
            (data, (rows, cols)), shape=(num_vertices, num_vertices)
        ).tocsr()
        return cls(adjacency=adjacency.astype(bool), weights=weights, name=name)

    @property
    def is_sparse(self) -> bool:
        return _sparse is not None and _sparse.issparse(self.adjacency)

    @property
    def num_vertices(self) -> int:
        return int(self.adjacency.shape[0])

    @property
    def num_edges(self) -> int:
        if self.is_sparse:
            return int(self.adjacency.nnz) // 2
        return int(self.adjacency.sum()) // 2

    def edges(self) -> np.ndarray:
        """Array of undirected edges as ``(i, j)`` pairs with ``i < j`` (cached).

        The sparse representation extracts the upper triangle directly from
        the CSR structure — no dense ``n x n`` temporary.
        """
        if self._edge_cache is None:
            if self.is_sparse:
                upper = _sparse.triu(self.adjacency, k=1).tocoo()
                i = np.asarray(upper.coords[0], dtype=np.int64)
                j = np.asarray(upper.coords[1], dtype=np.int64)
                # Canonical row-major order, matching the dense np.where scan
                # (edge order feeds the storage-invariant fingerprint).
                order = np.lexsort((j, i))
                edges = np.column_stack([i[order], j[order]])
            else:
                i, j = np.where(np.triu(self.adjacency, k=1))
                edges = np.column_stack([i, j])
            # Read-only: callers share the cached array, and the fingerprint
            # and encoders hash/read it — an in-place edit must fail loudly.
            edges.flags.writeable = False
            self._edge_cache = edges
        return self._edge_cache

    def _validated_selection(self, selection: np.ndarray, context: str) -> np.ndarray:
        """Shape- and binarity-checked boolean view of a vertex selection."""
        selection = np.asarray(selection)
        if selection.shape != (self.num_vertices,):
            raise ValueError(
                f"{context}: selection must have shape ({self.num_vertices},) — "
                f"one entry per vertex — got {selection.shape}"
            )
        if selection.dtype != bool and not np.all((selection == 0) | (selection == 1)):
            raise ValueError(f"{context}: selection must be binary (0/1 or bool values)")
        return selection.astype(bool)

    def is_vertex_cover(self, selection: np.ndarray) -> bool:
        """Whether the 0/1 vector ``selection`` covers every edge.

        Raises ``ValueError`` on a wrong-length or non-binary selection (the
        same validation contract as the TSP decoder).
        """
        selection = self._validated_selection(selection, "is_vertex_cover")
        edges = self.edges()
        if edges.size == 0:
            return True
        return bool(np.all(selection[edges[:, 0]] | selection[edges[:, 1]]))

    def cover_weight(self, selection: np.ndarray) -> float:
        """Total weight of the selected vertices."""
        selection = np.asarray(selection).astype(bool)
        return float(self.weights[selection].sum())

    def fingerprint(self) -> str:
        """Stable content hash usable as a cache key.

        Storage invariant: the hash covers the vertex count, the sorted edge
        list and the weights, so a dense instance and its sparse twin key the
        same cache entries.
        """
        digest = hashlib.sha256()
        digest.update(np.int64(self.num_vertices).tobytes())
        digest.update(np.ascontiguousarray(self.edges(), dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(self.weights).tobytes())
        return digest.hexdigest()[:16]
