"""Weighted Minimum Vertex Cover instances (paper Appendix B)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class MVCInstance:
    """An undirected graph with vertex weights.

    Parameters
    ----------
    adjacency:
        Symmetric boolean adjacency matrix with a ``False`` diagonal.
    weights:
        Per-vertex weights; defaults to all ones (unweighted MVC).
    name:
        Instance label.
    """

    adjacency: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "mvc"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        adjacency = np.asarray(self.adjacency, dtype=bool)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency must be symmetric")
        if np.any(np.diag(adjacency)):
            raise ValueError("adjacency must have no self-loops")
        self.adjacency = adjacency
        if self.weights is None:
            self.weights = np.ones(adjacency.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.shape != (adjacency.shape[0],):
                raise ValueError("weights must have one entry per vertex")
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
            self.weights = weights

    @property
    def num_vertices(self) -> int:
        return int(self.adjacency.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.adjacency.sum()) // 2

    def edges(self) -> np.ndarray:
        """Array of undirected edges as ``(i, j)`` pairs with ``i < j``."""
        i, j = np.where(np.triu(self.adjacency, k=1))
        return np.column_stack([i, j])

    def is_vertex_cover(self, selection: np.ndarray) -> bool:
        """Whether the 0/1 vector ``selection`` covers every edge."""
        selection = np.asarray(selection).astype(bool)
        if selection.shape != (self.num_vertices,):
            raise ValueError("selection must have one entry per vertex")
        edges = self.edges()
        if edges.size == 0:
            return True
        return bool(np.all(selection[edges[:, 0]] | selection[edges[:, 1]]))

    def cover_weight(self, selection: np.ndarray) -> float:
        """Total weight of the selected vertices."""
        selection = np.asarray(selection).astype(bool)
        return float(self.weights[selection].sum())

    def fingerprint(self) -> str:
        """Stable content hash usable as a cache key."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.adjacency.astype(np.int8)).tobytes())
        digest.update(np.ascontiguousarray(self.weights).tobytes())
        return digest.hexdigest()[:16]
