"""Reference algorithms for weighted Minimum Vertex Cover.

Used to normalise the Fig. 6 energies ("normalised to the minimum energy state
discovered in a run") and to provide ground truth in tests.  Not used by QROSS.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.problems.mvc.instance import MVCInstance


def greedy_weighted_cover(instance: MVCInstance) -> np.ndarray:
    """Classic greedy: repeatedly pick the vertex with the best coverage/weight ratio."""
    n = instance.num_vertices
    selection = np.zeros(n, dtype=np.int8)
    uncovered = {tuple(edge) for edge in instance.edges().tolist()}
    weights = instance.weights
    while uncovered:
        gain = np.zeros(n)
        for i, j in uncovered:
            gain[i] += 1
            gain[j] += 1
        with np.errstate(divide="ignore"):
            ratio = np.where(gain > 0, gain / np.maximum(weights, 1e-12), -np.inf)
        best = int(np.argmax(ratio))
        selection[best] = 1
        uncovered = {edge for edge in uncovered if best not in edge}
    return selection


def prune_cover(instance: MVCInstance, selection: np.ndarray) -> np.ndarray:
    """Remove redundant vertices (heaviest first) while keeping the cover valid."""
    selection = np.asarray(selection, dtype=np.int8).copy()
    order = np.argsort(-instance.weights)
    for vertex in order:
        if not selection[vertex]:
            continue
        selection[vertex] = 0
        if not instance.is_vertex_cover(selection):
            selection[vertex] = 1
    return selection


def exact_minimum_cover(instance: MVCInstance) -> np.ndarray:
    """Exhaustive minimum-weight cover; practical for graphs with <= 20 vertices."""
    n = instance.num_vertices
    if n > 20:
        raise ValueError("exact search is limited to 20 vertices")
    best_selection = np.ones(n, dtype=np.int8)
    best_weight = instance.cover_weight(best_selection)
    vertices = list(range(n))
    for size in range(n + 1):
        for subset in combinations(vertices, size):
            selection = np.zeros(n, dtype=np.int8)
            selection[list(subset)] = 1
            if instance.is_vertex_cover(selection):
                weight = instance.cover_weight(selection)
                if weight < best_weight:
                    best_weight = weight
                    best_selection = selection
        # Unweighted instances cannot improve once a cover of this size exists.
        if np.all(instance.weights == instance.weights[0]) and best_weight < np.inf and instance.is_vertex_cover(best_selection):
            if best_selection.sum() <= size:
                break
    return best_selection


def best_known_cover_weight(instance: MVCInstance) -> float:
    """Best cover weight found by the reference algorithms."""
    if instance.num_vertices <= 16:
        return instance.cover_weight(exact_minimum_cover(instance))
    cover = prune_cover(instance, greedy_weighted_cover(instance))
    return instance.cover_weight(cover)
