"""QUBO relaxation of weighted Minimum Vertex Cover (paper Appendix B).

The relaxation is ``sum_i w_i x_i + sigma * sum_{(i,j) in E} (1 - x_i - x_j + x_i x_j)``
where ``sigma`` is the penalty weight.  Any ``sigma > max_i w_i`` makes every
optimal QUBO solution a feasible cover in exact arithmetic; Appendix B shows
that on real (noisy / finite-precision) solvers, pushing ``sigma`` far beyond
that threshold degrades solution quality — which is what Fig. 6 measures.

Both the objective and the penalty are accumulated as COO triplets (one
vectorised append per term family, no Python loop over edges) and the storage
backend is chosen per matrix, so a large sparse graph encodes straight to CSR
without ever allocating a dense ``n x n`` array.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.problems.base import ConstrainedProblem
from repro.problems.mvc.instance import MVCInstance
from repro.qubo.expression import QUBOAccumulator, RelaxedEncoding


class MVCProblem(ConstrainedProblem):
    """Penalty-relaxed QUBO view of a weighted MVC instance.

    Parameters
    ----------
    instance:
        The MVC instance to relax.
    storage:
        Coefficient storage of the encoded QUBOs: ``"auto"`` (default) keeps
        CSR inside the sparse backend regime and densifies small instances,
        ``"sparse"`` / ``"dense"`` force a backend (used by the parity tests).
    """

    def __init__(self, instance: MVCInstance, storage: str = "auto") -> None:
        if storage not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown storage {storage!r}")
        self.instance = instance
        self.name = instance.name
        self.storage = storage

    # ------------------------------------------------------------------ QUBO
    @property
    def num_qubo_variables(self) -> int:
        return self.instance.num_vertices

    def _encode(self) -> RelaxedEncoding:
        n = self.instance.num_vertices
        weights = np.asarray(self.instance.weights, dtype=np.float64)
        edges = self.instance.edges()

        # Objective ``sum_i w_i x_i`` on the diagonal.
        objective = (
            QUBOAccumulator(n)
            .add_linear(np.arange(n), weights)
            .build(name=f"{self.name}-objective", storage=self.storage)
        )

        # Penalty ``sum_{(i,j) in E} (1 - x_i - x_j + x_i x_j)``: zero iff
        # every edge is covered.  One vectorised append per term family.
        accumulator = QUBOAccumulator(n)
        if edges.size:
            accumulator.add_linear(edges[:, 0], -1.0)
            accumulator.add_linear(edges[:, 1], -1.0)
            accumulator.add_quadratic(edges[:, 0], edges[:, 1], 1.0)
        penalty = accumulator.build(
            offset=float(edges.shape[0]),
            name=f"{self.name}-penalty",
            storage=self.storage,
        )
        return RelaxedEncoding(objective=objective, penalty=penalty, name=self.name)

    # ------------------------------------------------------------- solutions
    def is_feasible(self, assignment: np.ndarray) -> bool:
        return self.instance.is_vertex_cover(assignment)

    def fitness(self, assignment: np.ndarray) -> float:
        if not self.is_feasible(assignment):
            raise ValueError("assignment is not a vertex cover")
        return self.instance.cover_weight(assignment)

    # -------------------------------------------------------------- metadata
    def relaxation_scale(self) -> float:
        """The feasibility threshold ``max_i w_i`` (Appendix B)."""
        return float(self.instance.weights.max())

    def reference_fitness(self) -> Optional[float]:
        from repro.problems.mvc.heuristics import best_known_cover_weight

        return best_known_cover_weight(self.instance)
