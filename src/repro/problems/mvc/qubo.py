"""QUBO relaxation of weighted Minimum Vertex Cover (paper Appendix B).

The relaxation is ``sum_i w_i x_i + sigma * sum_{(i,j) in E} (1 - x_i - x_j + x_i x_j)``
where ``sigma`` is the penalty weight.  Any ``sigma > max_i w_i`` makes every
optimal QUBO solution a feasible cover in exact arithmetic; Appendix B shows
that on real (noisy / finite-precision) solvers, pushing ``sigma`` far beyond
that threshold degrades solution quality — which is what Fig. 6 measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.problems.base import ConstrainedProblem
from repro.problems.mvc.instance import MVCInstance
from repro.qubo.builder import PenaltyQUBOBuilder
from repro.qubo.model import QUBOModel


class MVCProblem(ConstrainedProblem):
    """Penalty-relaxed QUBO view of a weighted MVC instance."""

    def __init__(self, instance: MVCInstance) -> None:
        self.instance = instance
        self.name = instance.name
        self._builder: Optional[PenaltyQUBOBuilder] = None

    # ------------------------------------------------------------------ QUBO
    @property
    def num_qubo_variables(self) -> int:
        return self.instance.num_vertices

    def builder(self) -> PenaltyQUBOBuilder:
        if self._builder is None:
            self._builder = PenaltyQUBOBuilder(self._objective_qubo(), self._penalty_qubo())
        return self._builder

    def _objective_qubo(self) -> QUBOModel:
        """``sum_i w_i x_i`` on the diagonal."""
        Q = np.diag(self.instance.weights.astype(np.float64))
        return QUBOModel(Q, name=f"{self.name}-objective")

    def _penalty_qubo(self) -> QUBOModel:
        """``sum_{(i,j) in E} (1 - x_i - x_j + x_i x_j)``: zero iff every edge is covered."""
        n = self.instance.num_vertices
        Q = np.zeros((n, n))
        edges = self.instance.edges()
        offset = float(edges.shape[0])
        for i, j in edges:
            Q[i, i] -= 1.0
            Q[j, j] -= 1.0
            Q[i, j] += 0.5
            Q[j, i] += 0.5
        return QUBOModel(Q, offset=offset, name=f"{self.name}-penalty")

    # ------------------------------------------------------------- solutions
    def is_feasible(self, assignment: np.ndarray) -> bool:
        return self.instance.is_vertex_cover(assignment)

    def fitness(self, assignment: np.ndarray) -> float:
        if not self.is_feasible(assignment):
            raise ValueError("assignment is not a vertex cover")
        return self.instance.cover_weight(assignment)

    # -------------------------------------------------------------- metadata
    def relaxation_scale(self) -> float:
        """The feasibility threshold ``max_i w_i`` (Appendix B)."""
        return float(self.instance.weights.max())

    def reference_fitness(self) -> Optional[float]:
        from repro.problems.mvc.heuristics import best_known_cover_weight

        return best_known_cover_weight(self.instance)
