"""Minimum Vertex Cover substrate (paper Appendix B)."""

from repro.problems.mvc.generator import (
    RandomMVCConfig,
    generate_mvc_dataset,
    generate_mvc_instance,
    generate_sparse_mvc_instance,
)
from repro.problems.mvc.heuristics import (
    best_known_cover_weight,
    exact_minimum_cover,
    greedy_weighted_cover,
    prune_cover,
)
from repro.problems.mvc.instance import MVCInstance
from repro.problems.mvc.qubo import MVCProblem

__all__ = [
    "MVCInstance",
    "MVCProblem",
    "RandomMVCConfig",
    "generate_mvc_instance",
    "generate_mvc_dataset",
    "generate_sparse_mvc_instance",
    "greedy_weighted_cover",
    "prune_cover",
    "exact_minimum_cover",
    "best_known_cover_weight",
]
