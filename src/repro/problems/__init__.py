"""Problem substrates: constrained combinatorial problems with QUBO relaxations."""

from repro.problems.base import ConstrainedProblem

__all__ = ["ConstrainedProblem"]
