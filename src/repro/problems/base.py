"""Interface every penalty-relaxed problem exposes to solvers and to QROSS.

A :class:`ConstrainedProblem` bundles three things:

* how to *encode* itself as a frozen :class:`~repro.qubo.expression.RelaxedEncoding`
  (the pair ``H_B``, ``H_A``) from which the relaxed QUBO ``H_B + A * H_A`` is
  composed lazily for any relaxation parameter ``A``,
* how to check feasibility of a raw binary assignment returned by a solver, and
* how to score a feasible assignment with the *original* objective ("fitness").

QROSS, the baseline tuners and the experiment harness only talk to this
interface, so adding a new problem class (the paper mentions QAP, vehicle
routing, resource allocation) only requires implementing it.  Subclasses
implement :meth:`_encode` (preferred — build the objective and penalty through
a :class:`~repro.qubo.expression.QUBOAccumulator` so large sparse instances
never densify) or, for backwards compatibility, override :meth:`builder`.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.qubo.builder import PenaltyQUBOBuilder
from repro.qubo.expression import RelaxedEncoding
from repro.qubo.model import QUBOModel


class ConstrainedProblem(abc.ABC):
    """A constrained combinatorial problem with a penalty-based QUBO relaxation."""

    #: Human-readable instance name used in datasets and reports.
    name: str = "problem"

    # ------------------------------------------------------------------ QUBO
    @property
    @abc.abstractmethod
    def num_qubo_variables(self) -> int:
        """Number of binary variables of the relaxed QUBO."""

    def encode(self) -> RelaxedEncoding:
        """The cached ``(H_B, H_A)`` encoding of this instance.

        Built once on first use via :meth:`_encode`; every relaxation, solver
        call and feature extraction shares the same encoding, and the service
        keys request batching on its fingerprint without materialising any
        relaxed model.
        """
        cached = getattr(self, "_cached_encoding", None)
        if cached is None:
            cached = self._encode()
            self._cached_encoding = cached
        return cached

    def _encode(self) -> RelaxedEncoding:
        """Build the encoding.  Default: adapt a legacy :meth:`builder` override."""
        if type(self).builder is ConstrainedProblem.builder:
            raise NotImplementedError(
                f"{type(self).__name__} must implement _encode() (or the legacy builder())"
            )
        return self.builder().encoding

    def builder(self) -> PenaltyQUBOBuilder:
        """Penalty builder combining the objective and constraint QUBOs.

        Kept for backwards compatibility; derived from :meth:`encode` (and
        cached alongside it) unless a subclass still overrides it directly.
        """
        cached = getattr(self, "_cached_builder", None)
        if cached is None:
            cached = PenaltyQUBOBuilder.from_encoding(self.encode())
            self._cached_builder = cached
        return cached

    def build_qubo(self, relaxation_parameter: float) -> QUBOModel:
        """Relaxed QUBO ``H_B + A * H_A`` for the given parameter (lazily cached)."""
        return self.encode().relax(relaxation_parameter)

    # ------------------------------------------------------------- solutions
    @abc.abstractmethod
    def is_feasible(self, assignment: np.ndarray) -> bool:
        """Whether a binary assignment encodes a feasible solution."""

    @abc.abstractmethod
    def fitness(self, assignment: np.ndarray) -> float:
        """Original objective value of a *feasible* assignment (lower is better)."""

    # -------------------------------------------------------------- metadata
    @abc.abstractmethod
    def relaxation_scale(self) -> float:
        """Natural magnitude of the relaxation parameter for this instance.

        Used to normalise ``A`` across instances before it is fed to the
        surrogate (paper Section 3.3, "shifting or scaling moves A of different
        problems to the same order of magnitude").
        """

    def reference_fitness(self) -> Optional[float]:
        """Best-known objective value, if available (used for optimality gaps)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, n={self.num_qubo_variables})"
