"""Interface every penalty-relaxed problem exposes to solvers and to QROSS.

A :class:`ConstrainedProblem` bundles three things:

* how to build the relaxed QUBO ``H_B + A * H_A`` for a relaxation parameter ``A``,
* how to check feasibility of a raw binary assignment returned by a solver, and
* how to score a feasible assignment with the *original* objective ("fitness").

QROSS, the baseline tuners and the experiment harness only talk to this
interface, so adding a new problem class (the paper mentions QAP, vehicle
routing, resource allocation) only requires implementing it.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.qubo.builder import PenaltyQUBOBuilder
from repro.qubo.model import QUBOModel


class ConstrainedProblem(abc.ABC):
    """A constrained combinatorial problem with a penalty-based QUBO relaxation."""

    #: Human-readable instance name used in datasets and reports.
    name: str = "problem"

    # ------------------------------------------------------------------ QUBO
    @property
    @abc.abstractmethod
    def num_qubo_variables(self) -> int:
        """Number of binary variables of the relaxed QUBO."""

    @abc.abstractmethod
    def builder(self) -> PenaltyQUBOBuilder:
        """Penalty builder combining the objective and constraint QUBOs."""

    def build_qubo(self, relaxation_parameter: float) -> QUBOModel:
        """Relaxed QUBO ``H_B + A * H_A`` for the given parameter."""
        return self.builder().build(relaxation_parameter)

    # ------------------------------------------------------------- solutions
    @abc.abstractmethod
    def is_feasible(self, assignment: np.ndarray) -> bool:
        """Whether a binary assignment encodes a feasible solution."""

    @abc.abstractmethod
    def fitness(self, assignment: np.ndarray) -> float:
        """Original objective value of a *feasible* assignment (lower is better)."""

    # -------------------------------------------------------------- metadata
    @abc.abstractmethod
    def relaxation_scale(self) -> float:
        """Natural magnitude of the relaxation parameter for this instance.

        Used to normalise ``A`` across instances before it is fed to the
        surrogate (paper Section 3.3, "shifting or scaling moves A of different
        problems to the same order of magnitude").
        """

    def reference_fitness(self) -> Optional[float]:
        """Best-known objective value, if available (used for optimality gaps)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, n={self.num_qubo_variables})"
