"""TSPLIB95 file support and a bundled offline benchmark suite.

Two things live here:

* :func:`parse_tsplib` / :func:`load_tsplib_file` / :func:`write_tsplib_file` — a
  parser and writer for the TSPLIB95 format (``EUC_2D``, ``CEIL_2D``, ``ATT``,
  ``GEO`` and ``EXPLICIT`` edge weights), so genuine TSPLIB files can be used
  directly when the user has them on disk.
* :func:`bundled_tsplib_suite` — an offline substitute for the paper's
  real-world dataset.  The original evaluation uses eleven TSPLIB instances
  with 14 < n < 90; since this environment has no network access, we ship a
  deterministic suite of eleven *structured* instances in the same size range
  (clustered, ring and grid layouts named after the TSPLIB instances they stand
  in for).  The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.problems.tsp.generator import SyntheticTSPConfig, generate_instance
from repro.problems.tsp.instance import TSPInstance

_EARTH_RADIUS_KM = 6378.388


def _geo_radians(value: float) -> float:
    """TSPLIB GEO coordinates are DDD.MM (degrees and minutes)."""
    degrees = int(value)
    minutes = value - degrees
    return math.pi * (degrees + 5.0 * minutes / 3.0) / 180.0


def _geo_distance(a: np.ndarray, b: np.ndarray) -> float:
    lat1, lon1 = _geo_radians(a[0]), _geo_radians(a[1])
    lat2, lon2 = _geo_radians(b[0]), _geo_radians(b[1])
    q1 = math.cos(lon1 - lon2)
    q2 = math.cos(lat1 - lat2)
    q3 = math.cos(lat1 + lat2)
    return float(int(_EARTH_RADIUS_KM * math.acos(0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)) + 1.0))


def _coordinate_distances(coords: np.ndarray, edge_weight_type: str) -> np.ndarray:
    n = coords.shape[0]
    if edge_weight_type == "GEO":
        distances = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                distances[i, j] = distances[j, i] = _geo_distance(coords[i], coords[j])
        return distances
    deltas = coords[:, None, :] - coords[None, :, :]
    euclidean = np.sqrt((deltas**2).sum(axis=-1))
    if edge_weight_type == "EUC_2D":
        distances = np.rint(euclidean)
    elif edge_weight_type == "CEIL_2D":
        distances = np.ceil(euclidean)
    elif edge_weight_type == "ATT":
        pseudo = np.sqrt((deltas**2).sum(axis=-1) / 10.0)
        distances = np.ceil(pseudo)
    else:
        raise ValueError(f"unsupported edge weight type: {edge_weight_type}")
    np.fill_diagonal(distances, 0.0)
    return distances


def _explicit_distances(values: List[float], dimension: int, fmt: str) -> np.ndarray:
    matrix = np.zeros((dimension, dimension))
    it = iter(values)
    if fmt == "FULL_MATRIX":
        for i in range(dimension):
            for j in range(dimension):
                matrix[i, j] = next(it)
    elif fmt == "UPPER_ROW":
        for i in range(dimension):
            for j in range(i + 1, dimension):
                matrix[i, j] = matrix[j, i] = next(it)
    elif fmt == "UPPER_DIAG_ROW":
        for i in range(dimension):
            for j in range(i, dimension):
                matrix[i, j] = matrix[j, i] = next(it)
    elif fmt == "LOWER_ROW":
        for i in range(dimension):
            for j in range(i):
                matrix[i, j] = matrix[j, i] = next(it)
    elif fmt == "LOWER_DIAG_ROW":
        for i in range(dimension):
            for j in range(i + 1):
                matrix[i, j] = matrix[j, i] = next(it)
    else:
        raise ValueError(f"unsupported edge weight format: {fmt}")
    np.fill_diagonal(matrix, 0.0)
    return (matrix + matrix.T) / 2.0


def parse_tsplib(text: str) -> TSPInstance:
    """Parse the contents of a TSPLIB95 ``.tsp`` file into a :class:`TSPInstance`."""
    header: Dict[str, str] = {}
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    index = 0
    coords: List[List[float]] = []
    weights: List[float] = []

    while index < len(lines):
        line = lines[index]
        upper = line.upper()
        if upper.startswith("NODE_COORD_SECTION") or upper.startswith("DISPLAY_DATA_SECTION"):
            index += 1
            while index < len(lines) and not lines[index].upper().startswith(("EOF", "EDGE", "DEMAND")):
                parts = lines[index].split()
                coords.append([float(parts[1]), float(parts[2])])
                index += 1
            continue
        if upper.startswith("EDGE_WEIGHT_SECTION"):
            index += 1
            while index < len(lines) and not lines[index][0].isalpha():
                weights.extend(float(token) for token in lines[index].split())
                index += 1
            continue
        if upper.startswith("EOF"):
            break
        if ":" in line:
            key, value = line.split(":", 1)
            header[key.strip().upper()] = value.strip()
        index += 1

    name = header.get("NAME", "tsplib")
    dimension = int(header["DIMENSION"])
    edge_weight_type = header.get("EDGE_WEIGHT_TYPE", "EUC_2D").upper()

    if edge_weight_type == "EXPLICIT":
        fmt = header.get("EDGE_WEIGHT_FORMAT", "FULL_MATRIX").upper()
        distances = _explicit_distances(weights, dimension, fmt)
        coordinates = np.asarray(coords) if len(coords) == dimension else None
        return TSPInstance(distances=distances, coordinates=coordinates, name=name)

    coordinates = np.asarray(coords, dtype=np.float64)
    if coordinates.shape[0] != dimension:
        raise ValueError(
            f"expected {dimension} coordinates, found {coordinates.shape[0]} in {name}"
        )
    distances = _coordinate_distances(coordinates, edge_weight_type)
    return TSPInstance(distances=distances, coordinates=coordinates, name=name)


def load_tsplib_file(path: str | Path) -> TSPInstance:
    """Load a ``.tsp`` file from disk."""
    return parse_tsplib(Path(path).read_text())


def write_tsplib_file(instance: TSPInstance, path: str | Path) -> None:
    """Write an instance to disk in TSPLIB95 format.

    Coordinate-backed instances are written as ``EUC_2D``; otherwise the full
    distance matrix is written as ``EXPLICIT / FULL_MATRIX``.
    """
    path = Path(path)
    lines = [f"NAME : {instance.name}", "TYPE : TSP", f"DIMENSION : {instance.num_cities}"]
    if instance.coordinates is not None:
        lines.append("EDGE_WEIGHT_TYPE : EUC_2D")
        lines.append("NODE_COORD_SECTION")
        for i, (x, y) in enumerate(instance.coordinates, start=1):
            lines.append(f"{i} {x:.6f} {y:.6f}")
    else:
        lines.append("EDGE_WEIGHT_TYPE : EXPLICIT")
        lines.append("EDGE_WEIGHT_FORMAT : FULL_MATRIX")
        lines.append("EDGE_WEIGHT_SECTION")
        for row in instance.distances:
            lines.append(" ".join(f"{value:.6f}" for value in row))
    lines.append("EOF")
    path.write_text("\n".join(lines) + "\n")


#: (stand-in name, number of cities, layout) of the bundled real-world-like suite.
BUNDLED_SUITE_SPEC: tuple[tuple[str, int, str], ...] = (
    ("ulysses16-like", 16, "ring"),
    ("gr17-like", 17, "clustered"),
    ("gr21-like", 21, "clustered"),
    ("gr24-like", 24, "uniform"),
    ("fri26-like", 26, "grid"),
    ("bays29-like", 29, "clustered"),
    ("dantzig42-like", 42, "ring"),
    ("att48-like", 48, "clustered"),
    ("berlin52-like", 52, "uniform"),
    ("st70-like", 70, "grid"),
    ("eil76-like", 76, "clustered"),
)


def bundled_tsplib_suite(max_cities: int | None = None, seed: int = 2021) -> List[TSPInstance]:
    """Deterministic offline stand-in for the paper's eleven TSPLIB instances.

    Parameters
    ----------
    max_cities:
        Keep only instances with at most this many cities (useful for the
        scaled-down benchmark profile); ``None`` keeps all eleven.
    seed:
        Seed controlling the (deterministic) coordinates.
    """
    config = SyntheticTSPConfig(min_cities=14, max_cities=90, domain_size=100.0)
    suite = []
    for offset, (name, size, layout) in enumerate(BUNDLED_SUITE_SPEC):
        if max_cities is not None and size > max_cities:
            continue
        instance = generate_instance(
            size,
            distribution=layout,  # type: ignore[arg-type]
            config=config,
            rng=seed + offset,
            name=name,
        )
        instance.metadata["suite"] = "bundled-tsplib-like"
        suite.append(instance)
    return suite
