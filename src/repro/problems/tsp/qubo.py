"""QUBO relaxation of the TSP (Lucas 2014 formulation, paper Eqs. 4-6).

An ``n``-city instance uses ``n^2`` binary variables ``x[v, j]`` ("city ``v``
is visited at position ``j``").  The relaxed QUBO is ``H_B + A * H_A`` with

* ``H_B = sum_{u != v} d_uv sum_j x[u, j] x[v, j+1]`` — the tour length, and
* ``H_A = sum_v (1 - sum_j x[v, j])^2 + sum_j (1 - sum_v x[v, j])^2`` — the
  permutation constraints,

where position indices wrap around (``j + 1`` is taken modulo ``n``).
Variable ``x[v, j]`` is flattened to index ``v * n + j``.

``H_B`` is accumulated as COO triplets (no ``n^2 x n^2`` Kronecker product)
and the permutation constraints are built as a sparse ``C`` whose penalty
``C^T C`` is computed sparsely — a TSP instance encodes in ``O(n^3)`` memory
instead of ``O(n^4)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.problems.base import ConstrainedProblem
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.preprocessing import MVODMResult, minimise_distance_variance
from repro.qubo.builder import LinearConstraints
from repro.qubo.expression import QUBOAccumulator, RelaxedEncoding
from repro.qubo.model import QUBOModel

from repro.utils.sparse import scipy_sparse as _sparse


def decode_assignment(assignment: np.ndarray, num_cities: int) -> Optional[np.ndarray]:
    """Decode a flat binary assignment into a tour, or ``None`` if infeasible.

    The assignment is feasible when every city occupies exactly one position
    and every position holds exactly one city (a permutation matrix).  Raises
    ``ValueError`` on a wrong-length or non-binary assignment.
    """
    assignment = np.asarray(assignment)
    expected = num_cities * num_cities
    if assignment.size != expected:
        raise ValueError(
            f"assignment must have num_cities**2 = {expected} entries "
            f"(one per city/position pair), got {assignment.size}"
        )
    x = assignment.reshape(num_cities, num_cities)
    if not np.all((x == 0) | (x == 1)):
        raise ValueError("assignment must be binary")
    if not np.all(x.sum(axis=0) == 1) or not np.all(x.sum(axis=1) == 1):
        return None
    # Column j holds exactly one 1; its row index is the city visited at j.
    return np.argmax(x, axis=0).astype(np.int64)


def assignment_from_tour(tour: np.ndarray, num_cities: int) -> np.ndarray:
    """Inverse of :func:`decode_assignment`: one-hot encode a tour."""
    tour = np.asarray(tour, dtype=np.int64)
    if sorted(tour.tolist()) != list(range(num_cities)):
        raise ValueError("tour must be a permutation of all cities")
    x = np.zeros((num_cities, num_cities), dtype=np.int8)
    x[tour, np.arange(num_cities)] = 1
    return x.reshape(-1)


class TSPProblem(ConstrainedProblem):
    """Penalty-relaxed QUBO view of a :class:`TSPInstance`.

    Parameters
    ----------
    instance:
        The TSP instance to relax.
    use_mvodm_preprocessing:
        Apply Minimising-the-Variance-Of-the-Distance-Matrix preprocessing
        (paper Appendix E) before building ``H_B``.  Fitness values are always
        reported against the *original* distances.
    storage:
        Coefficient storage of the encoded QUBOs: ``"auto"`` (default) keeps
        CSR inside the sparse backend regime and densifies everything else,
        ``"sparse"`` / ``"dense"`` force a backend.
    """

    def __init__(
        self,
        instance: TSPInstance,
        use_mvodm_preprocessing: bool = False,
        storage: str = "auto",
    ) -> None:
        if storage not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown storage {storage!r}")
        self.instance = instance
        self.name = instance.name
        self.use_mvodm_preprocessing = use_mvodm_preprocessing
        self.storage = storage
        self._mvodm: Optional[MVODMResult] = None
        working = instance
        if use_mvodm_preprocessing:
            self._mvodm = minimise_distance_variance(instance)
            working = self._mvodm.transformed_instance
        self._working_instance = working

    # ------------------------------------------------------------------ QUBO
    @property
    def num_cities(self) -> int:
        return self.instance.num_cities

    @property
    def num_qubo_variables(self) -> int:
        return self.num_cities**2

    def _encode(self) -> RelaxedEncoding:
        objective = self._objective_qubo()
        penalty = self._constraints().penalty_qubo(storage=self.storage)
        return RelaxedEncoding(objective=objective, penalty=penalty, name=self.name)

    def _objective_qubo(self) -> QUBOModel:
        """``H_B``: one COO triplet per ``(u, v, position)``, no Kronecker product."""
        n = self.num_cities
        distances = np.asarray(self._working_instance.distances, dtype=np.float64)
        u, v = np.nonzero(distances)
        positions = np.arange(n, dtype=np.int64)
        rows = (u[:, None] * n + positions[None, :]).ravel()
        cols = (v[:, None] * n + (positions[None, :] + 1) % n).ravel()
        vals = np.repeat(distances[u, v], n)
        accumulator = QUBOAccumulator(n * n).add_quadratic(rows, cols, vals)
        return accumulator.build(name=f"{self.name}-objective", storage=self.storage)

    def _constraints(self) -> LinearConstraints:
        """Permutation constraints: each city once, each position once.

        Built directly in sparse COO form when scipy is available — ``C`` is
        ``2n x n^2`` with ``2 n^2`` ones (each variable appears in exactly two
        constraints).
        """
        n = self.num_cities
        if _sparse is None:
            C = np.zeros((2 * n, n * n))
            for v in range(n):
                C[v, v * n : (v + 1) * n] = 1.0  # city v at exactly one position
            for j in range(n):
                C[n + j, j::n] = 1.0  # position j holds exactly one city
            return LinearConstraints(C=C, d=np.ones(2 * n))
        variables = np.arange(n * n, dtype=np.int64)
        city_rows = variables // n  # constraint row v covers x[v, :]
        position_rows = n + variables % n  # constraint row n + j covers x[:, j]
        rows = np.concatenate([city_rows, position_rows])
        cols = np.concatenate([variables, variables])
        data = np.ones(rows.shape[0], dtype=np.float64)
        C = _sparse.coo_array((data, (rows, cols)), shape=(2 * n, n * n)).tocsr()
        return LinearConstraints(C=C, d=np.ones(2 * n))

    # ------------------------------------------------------------- solutions
    def decode(self, assignment: np.ndarray) -> Optional[np.ndarray]:
        """Tour encoded by ``assignment`` or ``None`` when infeasible."""
        return decode_assignment(assignment, self.num_cities)

    def is_feasible(self, assignment: np.ndarray) -> bool:
        return self.decode(assignment) is not None

    def fitness(self, assignment: np.ndarray) -> float:
        """Tour length *under the original distances* of a feasible assignment."""
        tour = self.decode(assignment)
        if tour is None:
            raise ValueError("assignment does not encode a feasible tour")
        return self.instance.tour_length(tour)

    # -------------------------------------------------------------- metadata
    def relaxation_scale(self) -> float:
        """Largest working distance — the order of magnitude where ``Pf`` transitions."""
        return float(np.max(self._working_instance.distances))

    def reference_fitness(self) -> Optional[float]:
        from repro.problems.tsp.heuristics import reference_tour_length

        return reference_tour_length(self.instance, rng=0)

    @property
    def mvodm_result(self) -> Optional[MVODMResult]:
        """Details of the MVODM preprocessing, when enabled."""
        return self._mvodm
