"""QUBO relaxation of the TSP (Lucas 2014 formulation, paper Eqs. 4-6).

An ``n``-city instance uses ``n^2`` binary variables ``x[v, j]`` ("city ``v``
is visited at position ``j``").  The relaxed QUBO is ``H_B + A * H_A`` with

* ``H_B = sum_{u != v} d_uv sum_j x[u, j] x[v, j+1]`` — the tour length, and
* ``H_A = sum_v (1 - sum_j x[v, j])^2 + sum_j (1 - sum_v x[v, j])^2`` — the
  permutation constraints,

where position indices wrap around (``j + 1`` is taken modulo ``n``).
Variable ``x[v, j]`` is flattened to index ``v * n + j``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.problems.base import ConstrainedProblem
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.preprocessing import MVODMResult, minimise_distance_variance
from repro.qubo.builder import LinearConstraints, PenaltyQUBOBuilder
from repro.qubo.model import QUBOModel


def decode_assignment(assignment: np.ndarray, num_cities: int) -> Optional[np.ndarray]:
    """Decode a flat binary assignment into a tour, or ``None`` if infeasible.

    The assignment is feasible when every city occupies exactly one position
    and every position holds exactly one city (a permutation matrix).
    """
    x = np.asarray(assignment).reshape(num_cities, num_cities)
    if not np.all((x == 0) | (x == 1)):
        raise ValueError("assignment must be binary")
    if not np.all(x.sum(axis=0) == 1) or not np.all(x.sum(axis=1) == 1):
        return None
    # Column j holds exactly one 1; its row index is the city visited at j.
    return np.argmax(x, axis=0).astype(np.int64)


def assignment_from_tour(tour: np.ndarray, num_cities: int) -> np.ndarray:
    """Inverse of :func:`decode_assignment`: one-hot encode a tour."""
    tour = np.asarray(tour, dtype=np.int64)
    if sorted(tour.tolist()) != list(range(num_cities)):
        raise ValueError("tour must be a permutation of all cities")
    x = np.zeros((num_cities, num_cities), dtype=np.int8)
    x[tour, np.arange(num_cities)] = 1
    return x.reshape(-1)


class TSPProblem(ConstrainedProblem):
    """Penalty-relaxed QUBO view of a :class:`TSPInstance`.

    Parameters
    ----------
    instance:
        The TSP instance to relax.
    use_mvodm_preprocessing:
        Apply Minimising-the-Variance-Of-the-Distance-Matrix preprocessing
        (paper Appendix E) before building ``H_B``.  Fitness values are always
        reported against the *original* distances.
    """

    def __init__(self, instance: TSPInstance, use_mvodm_preprocessing: bool = False) -> None:
        self.instance = instance
        self.name = instance.name
        self.use_mvodm_preprocessing = use_mvodm_preprocessing
        self._mvodm: Optional[MVODMResult] = None
        working = instance
        if use_mvodm_preprocessing:
            self._mvodm = minimise_distance_variance(instance)
            working = self._mvodm.transformed_instance
        self._working_instance = working
        self._builder: Optional[PenaltyQUBOBuilder] = None

    # ------------------------------------------------------------------ QUBO
    @property
    def num_cities(self) -> int:
        return self.instance.num_cities

    @property
    def num_qubo_variables(self) -> int:
        return self.num_cities**2

    def builder(self) -> PenaltyQUBOBuilder:
        if self._builder is None:
            objective = self._objective_qubo()
            constraints = self._constraints()
            self._builder = PenaltyQUBOBuilder(objective, constraints)
        return self._builder

    def _objective_qubo(self) -> QUBOModel:
        """``H_B`` as a Kronecker product of the distance matrix and a cyclic shift."""
        n = self.num_cities
        distances = np.asarray(self._working_instance.distances)
        shift = np.zeros((n, n))
        shift[np.arange(n), (np.arange(n) + 1) % n] = 1.0
        Q = np.kron(distances, shift)
        return QUBOModel(Q, name=f"{self.name}-objective")

    def _constraints(self) -> LinearConstraints:
        """Permutation constraints: each city once, each position once."""
        n = self.num_cities
        C = np.zeros((2 * n, n * n))
        for v in range(n):
            C[v, v * n : (v + 1) * n] = 1.0  # city v appears at exactly one position
        for j in range(n):
            C[n + j, j::n] = 1.0  # position j holds exactly one city
        d = np.ones(2 * n)
        return LinearConstraints(C=C, d=d)

    # ------------------------------------------------------------- solutions
    def decode(self, assignment: np.ndarray) -> Optional[np.ndarray]:
        """Tour encoded by ``assignment`` or ``None`` when infeasible."""
        return decode_assignment(assignment, self.num_cities)

    def is_feasible(self, assignment: np.ndarray) -> bool:
        return self.decode(assignment) is not None

    def fitness(self, assignment: np.ndarray) -> float:
        """Tour length *under the original distances* of a feasible assignment."""
        tour = self.decode(assignment)
        if tour is None:
            raise ValueError("assignment does not encode a feasible tour")
        return self.instance.tour_length(tour)

    # -------------------------------------------------------------- metadata
    def relaxation_scale(self) -> float:
        """Largest working distance — the order of magnitude where ``Pf`` transitions."""
        return float(np.max(self._working_instance.distances))

    def reference_fitness(self) -> Optional[float]:
        from repro.problems.tsp.heuristics import reference_tour_length

        return reference_tour_length(self.instance, rng=0)

    @property
    def mvodm_result(self) -> Optional[MVODMResult]:
        """Details of the MVODM preprocessing, when enabled."""
        return self._mvodm
