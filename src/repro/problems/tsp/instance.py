"""Travelling Salesman Problem instances.

An instance is a symmetric distance matrix, optionally backed by 2-D city
coordinates.  Instances are the unit of data in QROSS: the surrogate is trained
on a *collection* of instances of the same problem class and queried on new
ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import check_symmetric


@dataclass
class TSPInstance:
    """A symmetric TSP instance.

    Parameters
    ----------
    distances:
        Symmetric non-negative distance matrix with a zero diagonal.
    coordinates:
        Optional ``(n, 2)`` city coordinates the distances were derived from.
    name:
        Instance label (e.g. ``"berlin52"`` or ``"synthetic-0042"``).
    best_known_length:
        Optional best-known tour length, used to compute optimality gaps.
    """

    distances: np.ndarray
    coordinates: Optional[np.ndarray] = None
    name: str = "tsp"
    best_known_length: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        distances = check_symmetric(self.distances, "distances")
        if np.any(distances < 0):
            raise ValueError("distances must be non-negative")
        if np.any(np.diag(distances) != 0):
            raise ValueError("distance matrix must have a zero diagonal")
        if distances.shape[0] < 3:
            raise ValueError("a TSP instance needs at least 3 cities")
        self.distances = distances
        if self.coordinates is not None:
            coords = np.asarray(self.coordinates, dtype=np.float64)
            if coords.shape != (distances.shape[0], 2):
                raise ValueError(
                    f"coordinates must have shape ({distances.shape[0]}, 2), got {coords.shape}"
                )
            self.coordinates = coords

    # ------------------------------------------------------------------ basic
    @property
    def num_cities(self) -> int:
        return int(self.distances.shape[0])

    def tour_length(self, tour: np.ndarray) -> float:
        """Length of the closed tour visiting cities in the order of ``tour``."""
        tour = np.asarray(tour, dtype=np.int64)
        if sorted(tour.tolist()) != list(range(self.num_cities)):
            raise ValueError("tour must be a permutation of all cities")
        return float(self.distances[tour, np.roll(tour, -1)].sum())

    def fingerprint(self) -> str:
        """Stable content hash usable as a cache key."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.distances).tobytes())
        return digest.hexdigest()[:16]

    # -------------------------------------------------------------- factories
    @classmethod
    def from_coordinates(
        cls,
        coordinates: np.ndarray,
        name: str = "tsp",
        best_known_length: Optional[float] = None,
    ) -> "TSPInstance":
        """Build a Euclidean instance from ``(n, 2)`` coordinates."""
        coords = np.asarray(coordinates, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"coordinates must have shape (n, 2), got {coords.shape}")
        deltas = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=-1))
        np.fill_diagonal(distances, 0.0)
        return cls(
            distances=distances,
            coordinates=coords,
            name=name,
            best_known_length=best_known_length,
        )

    # ------------------------------------------------------------- statistics
    def distance_statistics(self) -> dict[str, float]:
        """Summary statistics of the off-diagonal distances (used as features)."""
        n = self.num_cities
        off_diag = self.distances[~np.eye(n, dtype=bool)]
        return {
            "num_cities": float(n),
            "mean": float(off_diag.mean()),
            "std": float(off_diag.std()),
            "min": float(off_diag.min()),
            "max": float(off_diag.max()),
            "median": float(np.median(off_diag)),
        }

    def scaled(self, factor: float) -> "TSPInstance":
        """Return a copy with every distance multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        coords = None if self.coordinates is None else self.coordinates * factor
        best = None if self.best_known_length is None else self.best_known_length * factor
        return TSPInstance(
            distances=self.distances * factor,
            coordinates=coords,
            name=self.name,
            best_known_length=best,
            metadata=dict(self.metadata),
        )
