"""Synthetic TSP instance generation (paper Appendix D).

The paper's training set is 300 synthetic instances with 20-30 cities whose
coordinates are drawn either from a uniform distribution on a bounded square or
from an exponential distribution whose rate is itself drawn uniformly from a
range.  This module reproduces that generator and provides dataset helpers for
building train/test splits of arbitrary (scaled-down) size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Sequence

import numpy as np

from repro.problems.tsp.instance import TSPInstance
from repro.utils.rng import RngLike, ensure_rng

CoordinateDistribution = Literal["uniform", "exponential", "clustered", "ring", "grid"]


@dataclass(frozen=True)
class SyntheticTSPConfig:
    """Configuration of the synthetic generator.

    Parameters
    ----------
    min_cities, max_cities:
        Inclusive range of instance sizes (paper: 20-30).
    domain_size:
        Side length of the bounding square for uniform coordinates.
    exponential_scale_range:
        Range the exponential distribution's scale is drawn from.
    distributions:
        Coordinate distributions to cycle through.
    """

    min_cities: int = 20
    max_cities: int = 30
    domain_size: float = 100.0
    exponential_scale_range: tuple[float, float] = (10.0, 50.0)
    distributions: tuple[CoordinateDistribution, ...] = ("uniform", "exponential")

    def __post_init__(self) -> None:
        if self.min_cities < 3:
            raise ValueError("min_cities must be at least 3")
        if self.max_cities < self.min_cities:
            raise ValueError("max_cities must be >= min_cities")
        if self.domain_size <= 0:
            raise ValueError("domain_size must be positive")
        low, high = self.exponential_scale_range
        if low <= 0 or high < low:
            raise ValueError("exponential_scale_range must be a positive increasing pair")
        if not self.distributions:
            raise ValueError("at least one coordinate distribution is required")


def _sample_coordinates(
    distribution: CoordinateDistribution,
    num_cities: int,
    config: SyntheticTSPConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    if distribution == "uniform":
        return rng.uniform(0.0, config.domain_size, size=(num_cities, 2))
    if distribution == "exponential":
        scale = rng.uniform(*config.exponential_scale_range)
        return rng.exponential(scale, size=(num_cities, 2))
    if distribution == "clustered":
        num_clusters = max(2, num_cities // 8)
        centres = rng.uniform(0.0, config.domain_size, size=(num_clusters, 2))
        assignment = rng.integers(0, num_clusters, size=num_cities)
        jitter = rng.normal(0.0, config.domain_size * 0.05, size=(num_cities, 2))
        return centres[assignment] + jitter
    if distribution == "ring":
        angles = np.sort(rng.uniform(0.0, 2 * np.pi, size=num_cities))
        radius = config.domain_size / 2.0
        jitter = rng.normal(0.0, radius * 0.05, size=(num_cities, 2))
        coords = radius * np.column_stack([np.cos(angles), np.sin(angles)]) + jitter
        return coords + radius
    if distribution == "grid":
        side = int(np.ceil(np.sqrt(num_cities)))
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        points = np.column_stack([xs.ravel(), ys.ravel()])[:num_cities].astype(np.float64)
        spacing = config.domain_size / max(side - 1, 1)
        jitter = rng.normal(0.0, spacing * 0.1, size=(num_cities, 2))
        return points * spacing + jitter
    raise ValueError(f"unknown coordinate distribution: {distribution!r}")


def generate_instance(
    num_cities: int,
    distribution: CoordinateDistribution = "uniform",
    config: SyntheticTSPConfig | None = None,
    rng: RngLike = None,
    name: str | None = None,
) -> TSPInstance:
    """Generate one synthetic Euclidean instance."""
    config = config or SyntheticTSPConfig()
    if num_cities < 3:
        raise ValueError("num_cities must be at least 3")
    rng = ensure_rng(rng)
    coords = _sample_coordinates(distribution, num_cities, config, rng)
    instance_name = name or f"synthetic-{distribution}-{num_cities}"
    instance = TSPInstance.from_coordinates(coords, name=instance_name)
    instance.metadata["distribution"] = distribution
    return instance


def generate_dataset(
    num_instances: int,
    config: SyntheticTSPConfig | None = None,
    rng: RngLike = None,
    name_prefix: str = "synthetic",
) -> List[TSPInstance]:
    """Generate a dataset of synthetic instances cycling through the distributions."""
    if num_instances <= 0:
        raise ValueError("num_instances must be positive")
    config = config or SyntheticTSPConfig()
    rng = ensure_rng(rng)
    instances = []
    for index in range(num_instances):
        distribution = config.distributions[index % len(config.distributions)]
        num_cities = int(rng.integers(config.min_cities, config.max_cities + 1))
        instance = generate_instance(
            num_cities,
            distribution=distribution,
            config=config,
            rng=rng,
            name=f"{name_prefix}-{index:04d}-{distribution}-{num_cities}",
        )
        instances.append(instance)
    return instances


@dataclass(frozen=True)
class TrainTestSplit:
    """A reproducible split of a dataset into training and test instances."""

    train: tuple[TSPInstance, ...]
    test: tuple[TSPInstance, ...]


def train_test_split(
    instances: Sequence[TSPInstance],
    test_fraction: float = 0.1,
    rng: RngLike = None,
) -> TrainTestSplit:
    """Shuffle ``instances`` and split off ``test_fraction`` of them for testing."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    if len(instances) < 2:
        raise ValueError("need at least two instances to split")
    rng = ensure_rng(rng)
    order = rng.permutation(len(instances))
    num_test = max(1, int(round(test_fraction * len(instances))))
    test_idx = set(order[:num_test].tolist())
    train = tuple(inst for i, inst in enumerate(instances) if i not in test_idx)
    test = tuple(inst for i, inst in enumerate(instances) if i in test_idx)
    return TrainTestSplit(train=train, test=test)


def paper_synthetic_dataset(rng: RngLike = 7, num_instances: int = 300) -> TrainTestSplit:
    """The paper's synthetic dataset: 300 instances of 20-30 cities, 270/30 split."""
    instances = generate_dataset(num_instances, config=SyntheticTSPConfig(), rng=rng)
    return train_test_split(instances, test_fraction=0.1, rng=rng)
