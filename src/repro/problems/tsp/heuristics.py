"""Classical TSP heuristics and exact solving for small instances.

These are *reference* algorithms: the experiment harness needs a near-optimal
tour length per instance to report the normalised optimality gap (Figs. 3-4,
Table 1), and the tests need ground truth for tiny instances.  None of these
are used by QROSS itself.
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional

import numpy as np

from repro.problems.tsp.instance import TSPInstance
from repro.utils.rng import RngLike, ensure_rng


def nearest_neighbour_tour(instance: TSPInstance, start: int = 0) -> np.ndarray:
    """Greedy nearest-neighbour construction starting from ``start``."""
    n = instance.num_cities
    if not (0 <= start < n):
        raise ValueError(f"start must be in [0, {n}), got {start}")
    distances = instance.distances
    unvisited = np.ones(n, dtype=bool)
    unvisited[start] = False
    tour = [start]
    current = start
    for _ in range(n - 1):
        candidates = np.where(unvisited)[0]
        nxt = candidates[np.argmin(distances[current, candidates])]
        tour.append(int(nxt))
        unvisited[nxt] = False
        current = int(nxt)
    return np.array(tour, dtype=np.int64)


def two_opt(instance: TSPInstance, tour: np.ndarray, max_rounds: int = 50) -> np.ndarray:
    """First-improvement 2-opt local search until no improving move remains."""
    tour = np.asarray(tour, dtype=np.int64).copy()
    n = instance.num_cities
    distances = instance.distances
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            a, b = tour[i], tour[i + 1]
            # j + 1 wraps around to the tour start.
            for j in range(i + 2, n):
                c, d = tour[j], tour[(j + 1) % n]
                if d == a:
                    continue
                delta = (
                    distances[a, c] + distances[b, d] - distances[a, b] - distances[c, d]
                )
                if delta < -1e-12:
                    tour[i + 1 : j + 1] = tour[i + 1 : j + 1][::-1]
                    improved = True
                    a, b = tour[i], tour[i + 1]
        if not improved:
            break
    return tour


def held_karp_optimal_tour(instance: TSPInstance) -> tuple[np.ndarray, float]:
    """Exact dynamic-programming solution (Held–Karp); practical for n <= 13."""
    n = instance.num_cities
    if n > 13:
        raise ValueError("Held-Karp is limited to 13 cities in this implementation")
    distances = instance.distances
    full_mask = (1 << (n - 1)) - 1  # subsets of cities 1..n-1
    dp = np.full((1 << (n - 1), n - 1), np.inf)
    parent = np.full((1 << (n - 1), n - 1), -1, dtype=np.int64)
    for j in range(n - 1):
        dp[1 << j, j] = distances[0, j + 1]
    for mask in range(1, full_mask + 1):
        for j in range(n - 1):
            if not mask & (1 << j) or not np.isfinite(dp[mask, j]):
                continue
            for k in range(n - 1):
                if mask & (1 << k):
                    continue
                new_mask = mask | (1 << k)
                cost = dp[mask, j] + distances[j + 1, k + 1]
                if cost < dp[new_mask, k]:
                    dp[new_mask, k] = cost
                    parent[new_mask, k] = j
    best_cost = np.inf
    best_last = -1
    for j in range(n - 1):
        cost = dp[full_mask, j] + distances[j + 1, 0]
        if cost < best_cost:
            best_cost = cost
            best_last = j
    # Reconstruct the tour backwards from the best final city.
    tour = [0]
    mask, j = full_mask, best_last
    suffix = []
    while j >= 0:
        suffix.append(j + 1)
        prev = parent[mask, j]
        mask ^= 1 << j
        j = prev
    tour.extend(reversed(suffix))
    return np.array(tour, dtype=np.int64), float(best_cost)


def brute_force_optimal_tour(instance: TSPInstance) -> tuple[np.ndarray, float]:
    """Exhaustive search; only sensible for n <= 9 (testing aid)."""
    n = instance.num_cities
    if n > 9:
        raise ValueError("brute force is limited to 9 cities")
    best_tour: Optional[np.ndarray] = None
    best_length = np.inf
    for perm in permutations(range(1, n)):
        tour = np.array((0,) + perm, dtype=np.int64)
        length = instance.tour_length(tour)
        if length < best_length:
            best_length = length
            best_tour = tour
    assert best_tour is not None
    return best_tour, float(best_length)


def reference_tour_length(
    instance: TSPInstance,
    num_starts: int = 5,
    rng: RngLike = None,
) -> float:
    """Near-optimal tour length used to normalise optimality gaps.

    Uses the instance's best-known length when available, the exact Held–Karp
    value for very small instances, and multi-start nearest-neighbour + 2-opt
    otherwise.
    """
    if instance.best_known_length is not None:
        return float(instance.best_known_length)
    if instance.num_cities <= 12:
        _, length = held_karp_optimal_tour(instance)
        return length
    rng = ensure_rng(rng)
    starts = rng.choice(instance.num_cities, size=min(num_starts, instance.num_cities), replace=False)
    best = np.inf
    for start in starts:
        tour = two_opt(instance, nearest_neighbour_tour(instance, start=int(start)))
        best = min(best, instance.tour_length(tour))
    return float(best)
