"""Travelling Salesman Problem substrate: instances, QUBO relaxation, datasets, heuristics."""

from repro.problems.tsp.generator import (
    SyntheticTSPConfig,
    TrainTestSplit,
    generate_dataset,
    generate_instance,
    paper_synthetic_dataset,
    train_test_split,
)
from repro.problems.tsp.heuristics import (
    brute_force_optimal_tour,
    held_karp_optimal_tour,
    nearest_neighbour_tour,
    reference_tour_length,
    two_opt,
)
from repro.problems.tsp.instance import TSPInstance
from repro.problems.tsp.preprocessing import MVODMResult, minimise_distance_variance
from repro.problems.tsp.qubo import TSPProblem, assignment_from_tour, decode_assignment
from repro.problems.tsp.tsplib import (
    BUNDLED_SUITE_SPEC,
    bundled_tsplib_suite,
    load_tsplib_file,
    parse_tsplib,
    write_tsplib_file,
)

__all__ = [
    "TSPInstance",
    "TSPProblem",
    "decode_assignment",
    "assignment_from_tour",
    "SyntheticTSPConfig",
    "TrainTestSplit",
    "generate_instance",
    "generate_dataset",
    "train_test_split",
    "paper_synthetic_dataset",
    "nearest_neighbour_tour",
    "two_opt",
    "held_karp_optimal_tour",
    "brute_force_optimal_tour",
    "reference_tour_length",
    "MVODMResult",
    "minimise_distance_variance",
    "parse_tsplib",
    "load_tsplib_file",
    "write_tsplib_file",
    "bundled_tsplib_suite",
    "BUNDLED_SUITE_SPEC",
]
