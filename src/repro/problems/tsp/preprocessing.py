"""MVODM distance-matrix preprocessing (paper Appendix E).

Held & Karp (1970) observed that replacing ``d_ij`` with
``d'_ij = d_ij - pi_i - pi_j`` changes every tour length by the same constant
``2 * sum_i pi_i``, so the optimal tour is unchanged.  Wang, Rao & Hong (2018)
propose choosing ``pi`` to *minimise the variance* of the transformed distance
matrix (MVODM), which empirically flattens the landscape seen by greedy and
annealing-style solvers.  The minimisation is a linear least-squares problem:
regress ``d_ij`` on a constant plus the two city potentials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.tsp.instance import TSPInstance


@dataclass(frozen=True)
class MVODMResult:
    """Output of :func:`minimise_distance_variance`."""

    transformed_instance: TSPInstance
    potentials: np.ndarray
    original_variance: float
    transformed_variance: float

    def restore_length(self, transformed_length: float) -> float:
        """Convert a tour length measured on the transformed matrix back."""
        return float(transformed_length + 2.0 * self.potentials.sum())


def minimise_distance_variance(instance: TSPInstance, shift_to_non_negative: bool = True) -> MVODMResult:
    """Compute MVODM potentials and the transformed instance.

    Parameters
    ----------
    instance:
        Instance whose distance matrix is transformed.
    shift_to_non_negative:
        QUBO objective coefficients should stay non-negative (a negative
        "distance" would reward constraint violations), so by default the
        transformed matrix is shifted up so its minimum off-diagonal entry is
        zero.  The shift adds a constant per tour edge and therefore does not
        change the optimal tour either.
    """
    distances = np.asarray(instance.distances, dtype=np.float64)
    n = instance.num_cities
    off_mask = ~np.eye(n, dtype=bool)
    pairs = np.argwhere(off_mask)
    targets = distances[off_mask]

    # Least squares: d_ij ~ mu + pi_i + pi_j.  Column 0 is the intercept.
    design = np.zeros((pairs.shape[0], n + 1))
    design[:, 0] = 1.0
    rows = np.arange(pairs.shape[0])
    design[rows, 1 + pairs[:, 0]] += 1.0
    design[rows, 1 + pairs[:, 1]] += 1.0
    solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
    potentials = solution[1:]

    transformed = distances - potentials[:, None] - potentials[None, :]
    np.fill_diagonal(transformed, 0.0)
    if shift_to_non_negative:
        off_values = transformed[off_mask]
        min_value = float(off_values.min())
        if min_value < 0:
            transformed = transformed - min_value
            np.fill_diagonal(transformed, 0.0)
    transformed = (transformed + transformed.T) / 2.0

    transformed_instance = TSPInstance(
        distances=transformed,
        coordinates=None,
        name=f"{instance.name}-mvodm",
        metadata={"preprocessing": "mvodm"},
    )
    return MVODMResult(
        transformed_instance=transformed_instance,
        potentials=potentials,
        original_variance=float(targets.var()),
        transformed_variance=float(transformed[off_mask].var()),
    )
