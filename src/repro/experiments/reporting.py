"""Plain-text rendering of experiment results (tables and simple curves).

The reproduction runs in headless environments, so every figure/table is
rendered as text: aligned tables for Table 1 and the comparison checkpoints,
and a coarse ASCII line chart for the gap-vs-trials curves.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.experiments.figures import ComparisonFigure, Figure1Result, Figure6Result
from repro.experiments.metrics import GapSummary
from repro.experiments.tables import Table1Result


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned monospace table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_gap_summaries(summaries: Dict[str, GapSummary], checkpoints: Sequence[int] = (1, 3, 20)) -> str:
    """Comparison checkpoints as a table (mean normalised gap per method)."""
    headers = ["method"] + [f"gap@{trial}" for trial in checkpoints] + ["instances"]
    rows = []
    for method, summary in summaries.items():
        rows.append(
            [method]
            + [f"{summary.at_trial(trial):.3f}" for trial in checkpoints]
            + [str(summary.num_instances)]
        )
    return format_table(headers, rows)


def format_comparison_figure(figure: ComparisonFigure, checkpoints: Sequence[int] = (1, 3, 20)) -> str:
    """Header plus checkpoint table plus an ASCII curve for each method."""
    summaries = figure.result.summaries()
    lines = [figure.title, f"solver backend: {figure.solver_backend}, dataset: {figure.dataset_name}", ""]
    lines.append(format_gap_summaries(summaries, checkpoints))
    lines.append("")
    for method, summary in summaries.items():
        lines.append(f"{method}: " + sparkline(summary.mean))
    return "\n".join(lines)


def format_table1(result: Table1Result) -> str:
    """Render Table 1 with the same layout as the paper."""
    early, late = result.trial_checkpoints
    headers = [
        "solver",
        "method",
        f"synthetic #{early}",
        f"synthetic #{late}",
        f"tsplib #{early}",
        f"tsplib #{late}",
    ]
    rows = [
        [
            row.solver,
            row.method,
            f"{row.synthetic_gap_at_3:.1%}",
            f"{row.synthetic_gap_at_20:.1%}",
            f"{row.tsplib_gap_at_3:.1%}",
            f"{row.tsplib_gap_at_20:.1%}",
        ]
        for row in result.rows
    ]
    return format_table(headers, rows)


def format_figure1(result: Figure1Result) -> str:
    """Render the Fig. 1 sweeps as per-solver tables."""
    lines = [f"Figure 1 landscape for instance {result.instance_name}"]
    for label, series in result.series.items():
        lines.append("")
        lines.append(label)
        rows = [
            [f"{a:.3g}", f"{pf:.2f}", f"{emin:.4g}", "-" if np.isnan(fit) else f"{fit:.4g}"]
            for a, pf, emin, fit in zip(
                series.parameters,
                series.probability_of_feasibility,
                series.min_energy,
                series.best_fitness,
            )
        ]
        lines.append(format_table(["A", "Pf", "min energy", "best fitness"], rows))
    return "\n".join(lines)


def format_figure6(result: Figure6Result) -> str:
    """Render the Fig. 6 penalty-weight sweep."""
    headers = ["penalty weight"] + list(result.normalized_energy)
    rows = []
    for index, weight in enumerate(result.penalty_weights):
        rows.append(
            [f"{weight:g}"]
            + [f"{values[index]:.4f}" for values in result.normalized_energy.values()]
        )
    return "Figure 6: MVC penalty weight vs normalised energy\n" + format_table(headers, rows)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Coarse ASCII sparkline of a curve (higher block = larger value)."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # Downsample by averaging consecutive chunks.
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    low, high = float(values.min()), float(values.max())
    if high - low < 1e-12:
        return blocks[0] * values.size
    scaled = (values - low) / (high - low)
    indices = np.clip((scaled * (len(blocks) - 1)).round().astype(int), 0, len(blocks) - 1)
    return "".join(blocks[i] for i in indices)
