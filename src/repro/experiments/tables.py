"""Generator for Table 1: optimality gap at trial 3 and trial 20.

The table crosses two solvers (DA-style and Qbsolv-style), two datasets
(synthetic test set and the TSPLIB-like suite) and four methods (QROSS, TPE,
BO, Random), reporting the mean normalised optimality gap after 3 and after 20
trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.datasets import build_problems, train_surrogate_for_solver
from repro.experiments.figures import ComparisonFigure, _comparison_on
from repro.experiments.profiles import ExperimentProfile, resolve_profile
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    solver: str
    method: str
    synthetic_gap_at_3: float
    synthetic_gap_at_20: float
    tsplib_gap_at_3: float
    tsplib_gap_at_20: float


@dataclass(frozen=True)
class Table1Result:
    """All rows plus the raw comparison objects they were derived from."""

    rows: List[Table1Row]
    comparisons: Dict[str, ComparisonFigure]
    trial_checkpoints: tuple[int, int]


def table1_optimality_gap(
    profile: ExperimentProfile | None = None,
    backends: Sequence[str] = ("da", "qbsolv"),
    rng: RngLike = None,
) -> Table1Result:
    """Regenerate Table 1 on the configured profile.

    The paper reports checkpoints at trials 3 and 20; when the profile's trial
    budget is smaller than 20 the second checkpoint clamps to the budget (the
    reported column header still says which trial was used via
    ``trial_checkpoints``).
    """
    profile = profile or resolve_profile()
    rng = ensure_rng(rng if rng is not None else profile.seed + 1)
    datasets = build_problems(profile)
    checkpoint_early = min(3, profile.num_trials)
    checkpoint_late = min(20, profile.num_trials)

    rows: List[Table1Row] = []
    comparisons: Dict[str, ComparisonFigure] = {}
    for backend in backends:
        surrogate, _, _ = train_surrogate_for_solver(profile, backend, datasets.train_problems)
        synthetic = _comparison_on(
            datasets.test_problems,
            profile,
            backend,
            surrogate,
            dataset_name="synthetic",
            title=f"Table 1 ({backend}, synthetic)",
            rng=rng,
        )
        tsplib = _comparison_on(
            datasets.tsplib_problems,
            profile,
            backend,
            surrogate,
            dataset_name="tsplib",
            title=f"Table 1 ({backend}, tsplib)",
            rng=rng,
        )
        comparisons[f"{backend}-synthetic"] = synthetic
        comparisons[f"{backend}-tsplib"] = tsplib

        synthetic_summaries = synthetic.result.summaries()
        tsplib_summaries = tsplib.result.summaries()
        for method in synthetic.result.methods:
            rows.append(
                Table1Row(
                    solver=backend,
                    method=method,
                    synthetic_gap_at_3=synthetic_summaries[method].at_trial(checkpoint_early),
                    synthetic_gap_at_20=synthetic_summaries[method].at_trial(checkpoint_late),
                    tsplib_gap_at_3=tsplib_summaries[method].at_trial(checkpoint_early),
                    tsplib_gap_at_20=tsplib_summaries[method].at_trial(checkpoint_late),
                )
            )
    return Table1Result(
        rows=rows,
        comparisons=comparisons,
        trial_checkpoints=(checkpoint_early, checkpoint_late),
    )
