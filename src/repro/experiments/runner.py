"""Tuning-comparison runner: QROSS vs the generic baselines, trial by trial.

This is the engine behind Figs. 3-5 and Table 1.  For each test instance and
each method it plays the same game the paper describes: the tuner proposes a
relaxation parameter, the QUBO solver evaluates it with a batch of reads, the
outcome is recorded, and the running best feasible fitness defines the
optimality-gap curve.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.features import model_feature_vector
from repro.core.strategies.composed import ComposedStrategyConfig
from repro.core.surrogate import SolverSurrogate
from repro.core.tuner import QROSSTuner
from repro.experiments.cache import SolverCallCache
from repro.experiments.metrics import GapSummary, gap_curve, summarise_gap_curves
from repro.portfolio.outcomes import OutcomeLog, OutcomeRecord, solver_spec_or_label
from repro.problems.base import ConstrainedProblem
from repro.service.distributed.backends import BackendLike
from repro.service.service import SolveService, default_service
from repro.solvers.base import QUBOSolver
from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory, TrialResult
from repro.tuning.bayesian_optimisation import BayesianOptimisationTuner
from repro.tuning.random_search import RandomSearchTuner
from repro.tuning.tpe import TPETuner
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def _service_for(
    service: Optional[SolveService], backend: BackendLike
) -> tuple[SolveService, bool]:
    """Resolve the ``service``/``backend`` pair of the runner entry points.

    ``backend`` is sugar for "the default service wiring, but on this
    execution backend"; passing both would be ambiguous.  Returns the service
    plus whether the caller owns (and must close) it — true exactly when a
    service was constructed here for the backend.  Closing such a service
    releases only its thread pool: backends resolved from spec strings are
    process-wide shared instances that stay warm for the next run.
    """
    if backend is None:
        return (service or default_service()), False
    if service is not None:
        raise ValueError("pass either service= or backend=, not both")
    return SolveService(backend=backend), True

#: Signature of a factory producing a tuner for one instance.
TunerFactory = Callable[[ConstrainedProblem, ParameterBounds, np.random.Generator], ParameterTuner]

#: A solver argument: a registry spec, a live solver, or ``None`` for the
#: environment-selected default.
SolverLike = Union[str, QUBOSolver, None]

#: Environment variable naming the comparison runs' default solver spec.
COMPARISON_SOLVER_ENV = "QROSS_COMPARISON_SOLVER"


def default_comparison_solver() -> str:
    """The solver spec used when a runner is called with ``solver=None``.

    Reads ``QROSS_COMPARISON_SOLVER`` (any registry spec, including
    ``portfolio?...`` composites — the CI canary leg runs the whole fast
    suite with a portfolio spec this way) and falls back to the paper's
    Digital Annealer baseline.
    """
    return os.environ.get(COMPARISON_SOLVER_ENV, "").strip() or "da"


def _solver_budget(solver: QUBOSolver) -> Optional[float]:
    """The solver's budget-knob value, if it has one (for outcome records)."""
    config = getattr(solver, "config", None)
    for name in ("num_sweeps", "num_steps", "sweep_budget"):
        value = getattr(config, name, None)
        if value is not None:
            return float(value)
    return None


def default_bounds(problem: ConstrainedProblem, low_multiplier: float = 0.05, high_multiplier: float = 4.0) -> ParameterBounds:
    """Per-instance search bounds expressed as multiples of the relaxation scale.

    The paper restricts the baselines to ``A in [1, 100]``, a range containing
    every optimal parameter of its synthetic dataset; expressing the range
    relative to each instance's natural scale achieves the same thing across
    differently-sized instances.
    """
    scale = problem.relaxation_scale()
    return ParameterBounds(low=low_multiplier * scale, high=high_multiplier * scale)


def baseline_tuner_factories(rng_offset: int = 0) -> Dict[str, TunerFactory]:
    """The paper's three baselines: TPE, Bayesian Optimisation and Random Search."""

    def tpe(problem: ConstrainedProblem, bounds: ParameterBounds, rng: np.random.Generator) -> ParameterTuner:
        return TPETuner(bounds, rng=rng)

    def bo(problem: ConstrainedProblem, bounds: ParameterBounds, rng: np.random.Generator) -> ParameterTuner:
        return BayesianOptimisationTuner(bounds, rng=rng)

    def random(problem: ConstrainedProblem, bounds: ParameterBounds, rng: np.random.Generator) -> ParameterTuner:
        return RandomSearchTuner(bounds, rng=rng)

    return {"TPE": tpe, "BO": bo, "Random": random}


def qross_tuner_factory(
    surrogate: SolverSurrogate,
    config: ComposedStrategyConfig | None = None,
) -> TunerFactory:
    """Factory producing a :class:`QROSSTuner` bound to a trained surrogate."""

    def factory(problem: ConstrainedProblem, bounds: ParameterBounds, rng: np.random.Generator) -> ParameterTuner:
        return QROSSTuner(surrogate, problem, bounds, config=config, rng=rng)

    return factory


@dataclass
class InstanceRunResult:
    """Trial history and gap curve of one method on one instance."""

    instance_name: str
    method: str
    history: TrialHistory
    gaps: np.ndarray
    reference_fitness: float


@dataclass
class ComparisonResult:
    """Everything produced by a tuning comparison over a set of instances."""

    methods: List[str]
    num_trials: int
    runs: List[InstanceRunResult] = field(default_factory=list)

    def curves(self, method: str) -> List[np.ndarray]:
        return [run.gaps for run in self.runs if run.method == method]

    def summaries(self) -> Dict[str, GapSummary]:
        return {
            method: summarise_gap_curves(method, self.curves(method)) for method in self.methods
        }

    def summary(self, method: str) -> GapSummary:
        return summarise_gap_curves(method, self.curves(method))


def tune_instance(
    problem: ConstrainedProblem,
    solver: SolverLike,
    tuner: ParameterTuner,
    num_trials: int,
    num_reads: int,
    rng: RngLike = None,
    cache: Optional[SolverCallCache] = None,
    service: Optional[SolveService] = None,
    backend: BackendLike = None,
    outcome_log: Optional[OutcomeLog] = None,
) -> TrialHistory:
    """Run one tuner on one instance for ``num_trials`` solver calls.

    Every evaluation flows through the solve service (the shared default one
    unless ``service`` is given); the RNG is passed through unchanged, so on
    an in-process backend seeded results are identical to the historical
    direct-call path.  ``backend`` selects where the engine calls execute
    (``"thread"``, ``"process"``, or an
    :class:`~repro.service.distributed.backends.ExecutionBackend`) without
    constructing a service by hand.

    ``solver`` accepts a registry spec string (including ``portfolio?...``
    composites) or a live solver; ``None`` resolves the
    ``QROSS_COMPARISON_SOLVER`` default.  With an ``outcome_log``, every trial
    appends a ``tuning_trial`` :class:`~repro.portfolio.outcomes.OutcomeRecord`
    (instance features, solver spec, budget, per-trial statistics) — the raw
    material portfolio models are fit from.
    """
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    rng = ensure_rng(rng)
    cache = cache or SolverCallCache()
    service, owns_service = _service_for(service, backend)
    solver = service.resolve_solver(
        default_comparison_solver() if solver is None else solver
    )
    if outcome_log is not None:
        solver_spec = solver_spec_or_label(solver)
        solver_budget = _solver_budget(solver)
    try:
        history = TrialHistory()
        for _ in range(num_trials):
            parameter = tuner.bounds.clip(tuner.suggest(history))
            outcome = service.evaluate(problem, solver, parameter, num_reads, rng=rng, cache=cache)
            trial = TrialResult(
                parameter=parameter,
                probability_of_feasibility=outcome.probability_of_feasibility,
                best_fitness=outcome.best_fitness,
                energy_mean=outcome.energy_mean,
                energy_std=outcome.energy_std,
            )
            history.append(trial)
            tuner.observe(trial, history)
            if outcome_log is not None:
                features = model_feature_vector(problem.build_qubo(parameter))
                outcome_log.append(
                    OutcomeRecord(
                        instance=problem.name,
                        features=tuple(float(v) for v in features),
                        solver_spec=solver_spec,
                        budget=solver_budget,
                        best_energy=None,
                        num_reads=num_reads,
                        relaxation_parameter=float(parameter),
                        probability_of_feasibility=float(
                            trial.probability_of_feasibility
                        ),
                        best_fitness=float(trial.best_fitness),
                        kind="tuning_trial",
                    )
                )
        return history
    finally:
        if owns_service:
            service.close()


def run_comparison(
    problems: Sequence[ConstrainedProblem],
    solver: SolverLike,
    tuner_factories: Dict[str, TunerFactory],
    num_trials: int,
    num_reads: int,
    rng: RngLike = None,
    cache: Optional[SolverCallCache] = None,
    bounds_fn: Callable[[ConstrainedProblem], ParameterBounds] = default_bounds,
    service: Optional[SolveService] = None,
    backend: BackendLike = None,
    max_parallel: Optional[int] = None,
    outcome_log: Optional[OutcomeLog] = None,
) -> ComparisonResult:
    """Run every method on every instance and collect gap curves.

    Each (instance, method) pair gets its own child random stream, so adding a
    method or an instance does not perturb the results of the others — and the
    pairs are therefore *independent tuning loops* that can run concurrently.
    ``backend`` selects the execution backend (``"process"`` fans the
    Python-heavy annealing loops out across cores); when it is given, the
    pairs are dispatched over the service pool (width ``max_parallel``,
    default: the service's worker count) instead of sequentially.  With the
    default per-pair caches (``cache=None``), results are identical either
    way: the per-pair streams are pre-spawned, so scheduling order cannot
    perturb them.  A *shared* ``cache=`` weakens that — which pair wins a
    concurrent miss on a common evaluation key decides whose stream advances,
    so parallel runs may then differ from sequential ones.

    ``solver`` may be a spec string (``"da"``, ``"portfolio?members=sa,tabu"``)
    or ``None`` for the ``QROSS_COMPARISON_SOLVER`` default; ``outcome_log``
    threads through to :func:`tune_instance`, collecting one ``tuning_trial``
    record per trial across every (instance, method) pair (the log's appends
    are lock-protected, so parallel pairs interleave safely).
    """
    if not problems:
        raise ValueError("at least one problem is required")
    if not tuner_factories:
        raise ValueError("at least one tuner factory is required")
    service, owns_service = _service_for(service, backend)
    solver = service.resolve_solver(
        default_comparison_solver() if solver is None else solver
    )
    result = ComparisonResult(methods=list(tuner_factories), num_trials=num_trials)

    def run_pair(job) -> InstanceRunResult:
        problem, bounds, reference, method, factory, stream = job
        tuner = factory(problem, bounds, stream)
        history = tune_instance(
            problem,
            solver,
            tuner,
            num_trials=num_trials,
            num_reads=num_reads,
            rng=stream,
            cache=cache,
            service=service,
            outcome_log=outcome_log,
        )
        return InstanceRunResult(
            instance_name=problem.name,
            method=method,
            history=history,
            gaps=gap_curve(history, reference, num_trials),
            reference_fitness=reference,
        )

    if max_parallel is None:
        max_parallel = service.max_workers if backend is not None else 1
    try:
        streams = spawn_rngs(rng, len(problems) * len(tuner_factories))
        stream_index = 0
        jobs = []
        for problem in problems:
            bounds = bounds_fn(problem)
            reference = problem.reference_fitness()
            if reference is None or reference <= 0:
                raise ValueError(f"instance {problem.name!r} has no usable reference fitness")
            for method, factory in tuner_factories.items():
                stream = streams[stream_index]
                stream_index += 1
                jobs.append((problem, bounds, reference, method, factory, stream))

        if max_parallel <= 1 or len(jobs) <= 1:
            result.runs.extend(run_pair(job) for job in jobs)
        else:
            # Fan the independent (instance, method) loops out; each loop's
            # solver calls still flow through the shared service (and its
            # backend).
            with ThreadPoolExecutor(
                max_workers=min(max_parallel, len(jobs)), thread_name_prefix="qross-compare"
            ) as pool:
                result.runs.extend(pool.map(run_pair, jobs))
    finally:
        if owns_service:
            service.close()
    return result
