"""Experiment profiles: how large each reproduction run is.

The paper's experiments use 300 synthetic instances of 20-30 cities, 128 reads
per solver call and 20 tuning trials per instance.  Re-running that verbatim on
a laptop-scale pure-Python annealer takes hours, so every experiment accepts a
profile and three presets are provided:

* ``SMOKE``  — minutes-scale; used by the benchmark suite and CI.
* ``SMALL``  — tens of minutes; closer to the paper's shapes.
* ``PAPER``  — the paper's sizes (run only when you have the time budget).

Select a profile by name with :func:`resolve_profile`; the benchmark harness
reads the ``QROSS_PROFILE`` environment variable (default ``smoke``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.solvers.digital_annealer import DigitalAnnealerConfig
from repro.solvers.parallel_tempering import ParallelTemperingConfig
from repro.solvers.qbsolv import QbsolvConfig
from repro.solvers.quantum_annealer import QuantumAnnealerConfig
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig
from repro.solvers.tabu import TabuSearchConfig


@dataclass(frozen=True)
class ExperimentProfile:
    """All knobs that control the size of a reproduction run."""

    name: str
    # Dataset sizes.
    num_train_instances: int
    num_test_instances: int
    min_cities: int
    max_cities: int
    tsplib_max_cities: int
    # Solver effort.
    num_reads: int
    da_steps_per_variable: int
    sa_num_sweeps: int
    qbsolv_subproblem_size: int
    qbsolv_tabu_steps: int
    # Tuning budget.
    num_trials: int
    # Surrogate training.
    surrogate_epochs: int
    coarse_multipliers: tuple[float, ...] = (0.1, 0.25, 0.4, 0.6, 0.8, 1.0, 1.25, 1.6, 2.2, 3.0)
    num_refinement_points: int = 6
    # MVC workload sizing (Appendix B study and the sparse-encoding path).
    mvc_num_vertices: int = 24
    mvc_edge_probability: float = 0.5
    # Execution: where the tuning-comparison engine calls run.  ``None``
    # inherits the process default (the ``QROSS_EXECUTION_BACKEND`` env var,
    # ``"thread"`` out of the box); ``"process"`` fans the Python-heavy
    # annealing loops of the comparison runs out across cores — worthwhile at
    # ``small``/``paper`` scale, pure overhead for the smoke profile.
    # ``"remote"`` (with a fleet from ``QROSS_REMOTE_WORKERS`` or an explicit
    # ``remote?workers=host:port,...`` spec) ships the same calls to TCP
    # worker servers on other machines — the ``paper``-scale option when one
    # host is not enough.  Seeded runs are byte-identical on every choice.
    execution_backend: str | None = None
    # Parallel tempering (replica exchange): ladder rungs per read and sweeps
    # between swap rounds.  The sweep budget is shared with SA
    # (``sa_num_sweeps``) so PT-vs-SA comparisons are same-budget by default.
    pt_num_replicas: int = 8
    pt_swap_interval: int = 5
    # Digital annealer: accepted flips applied per step (1 = published
    # single-flip algorithm; >1 = the parallel multi-flip variant).
    da_max_parallel_flips: int = 1
    # Portfolio solving: member specs, scheduling strategy and total sweep
    # budget of the ``portfolio`` registry backend this profile builds.  The
    # members deliberately reuse the profile's own solver configs (same
    # sweeps/replica shapes), so portfolio-vs-member comparisons are
    # same-budget-per-slice by construction.
    portfolio_members: str = "sa,tabu"
    portfolio_strategy: str = "ucb"
    portfolio_sweep_budget: int = 320
    # Compute: array backend and float precision the engine kernels run on for
    # every solver this profile builds.  ``None`` inherits the process default
    # (the ``QROSS_ARRAY_BACKEND`` / ``QROSS_ENGINE_DTYPE`` env vars, i.e. the
    # numpy/float64 reference out of the box); ``array_backend="torch"`` +
    # ``engine_dtype="float32"`` moves the sweeps to torch tensors in single
    # precision where that pays (GPU hosts, large instances).
    array_backend: str | None = None
    engine_dtype: str | None = None
    # Reproducibility.
    seed: int = 2021

    def digital_annealer_config(self) -> DigitalAnnealerConfig:
        return DigitalAnnealerConfig(
            steps_per_variable=self.da_steps_per_variable,
            max_parallel_flips=self.da_max_parallel_flips,
            array_backend=self.array_backend,
            dtype=self.engine_dtype,
        )

    def parallel_tempering_config(self) -> ParallelTemperingConfig:
        return ParallelTemperingConfig(
            num_sweeps=self.sa_num_sweeps,
            num_replicas=self.pt_num_replicas,
            swap_interval=self.pt_swap_interval,
            array_backend=self.array_backend,
            dtype=self.engine_dtype,
        )

    def simulated_annealing_config(self) -> SimulatedAnnealingConfig:
        return SimulatedAnnealingConfig(
            num_sweeps=self.sa_num_sweeps,
            array_backend=self.array_backend,
            dtype=self.engine_dtype,
        )

    def qbsolv_config(self) -> QbsolvConfig:
        return QbsolvConfig(
            subproblem_size=self.qbsolv_subproblem_size,
            subsolver_config=self.tabu_search_config(),
        )

    def tabu_search_config(self) -> TabuSearchConfig:
        return TabuSearchConfig(
            num_steps=self.qbsolv_tabu_steps,
            restart_after=max(20, self.qbsolv_tabu_steps // 3),
            array_backend=self.array_backend,
            dtype=self.engine_dtype,
        )

    def quantum_annealer_config(self) -> QuantumAnnealerConfig:
        return QuantumAnnealerConfig(base_config=self.simulated_annealing_config())

    def portfolio_config(self) -> "PortfolioConfig":
        from repro.portfolio.solver import PortfolioConfig

        return PortfolioConfig(
            members=self.portfolio_members,
            strategy=self.portfolio_strategy,
            sweep_budget=self.portfolio_sweep_budget,
        )

    def scaled(self, **overrides) -> "ExperimentProfile":
        """Return a copy with selected fields overridden."""
        return replace(self, **overrides)


SMOKE = ExperimentProfile(
    name="smoke",
    num_train_instances=16,
    num_test_instances=3,
    min_cities=6,
    max_cities=8,
    tsplib_max_cities=17,
    num_reads=16,
    da_steps_per_variable=12,
    sa_num_sweeps=40,
    qbsolv_subproblem_size=24,
    qbsolv_tabu_steps=80,
    num_trials=8,
    surrogate_epochs=250,
    coarse_multipliers=(0.1, 0.3, 0.5, 0.7, 0.9, 1.2, 1.8, 2.6),
    num_refinement_points=4,
    mvc_num_vertices=24,
    portfolio_sweep_budget=120,
)

SMALL = ExperimentProfile(
    name="small",
    num_train_instances=40,
    num_test_instances=8,
    min_cities=10,
    max_cities=14,
    tsplib_max_cities=24,
    num_reads=32,
    da_steps_per_variable=20,
    sa_num_sweeps=80,
    qbsolv_subproblem_size=36,
    qbsolv_tabu_steps=160,
    num_trials=20,
    surrogate_epochs=250,
    mvc_num_vertices=48,
    portfolio_sweep_budget=320,
)

PAPER = ExperimentProfile(
    name="paper",
    num_train_instances=270,
    num_test_instances=30,
    min_cities=20,
    max_cities=30,
    tsplib_max_cities=89,
    num_reads=128,
    da_steps_per_variable=30,
    sa_num_sweeps=150,
    qbsolv_subproblem_size=48,
    qbsolv_tabu_steps=300,
    num_trials=20,
    surrogate_epochs=400,
    mvc_num_vertices=65,
    portfolio_sweep_budget=600,
)

_PROFILES = {profile.name: profile for profile in (SMOKE, SMALL, PAPER)}


def resolve_profile(name: str | None = None) -> ExperimentProfile:
    """Look up a profile by name, falling back to the ``QROSS_PROFILE`` env var."""
    if name is None:
        name = os.environ.get("QROSS_PROFILE", "smoke")
    key = name.strip().lower()
    if key not in _PROFILES:
        raise ValueError(f"unknown profile {name!r}; available: {sorted(_PROFILES)}")
    return _PROFILES[key]


#: The identifiers of the bundled "TSPLIB-like" suite used in the tsplib figure.
available_profiles = tuple(sorted(_PROFILES))
