"""Cache of solver evaluations keyed by (instance, solver, parameter, reads).

Both the surrogate training data collection and the tuning comparison evaluate
many ``(instance, A)`` pairs; repeated evaluations (e.g. two methods proposing
the same parameter, or re-running a figure) can reuse the cached statistics.
The cache stores only aggregate statistics — never raw assignments — so it
stays small and can be persisted to JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.dataset import evaluate_parameter
from repro.problems.base import ConstrainedProblem
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CachedEvaluation:
    """Aggregate outcome of one solver call."""

    probability_of_feasibility: float
    energy_mean: float
    energy_std: float
    best_fitness: Optional[float]


class SolverCallCache:
    """In-memory (optionally JSON-persisted) cache of solver-call statistics."""

    def __init__(self) -> None:
        self._entries: Dict[str, CachedEvaluation] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(problem: ConstrainedProblem, solver: QUBOSolver, parameter: float, num_reads: int) -> str:
        fingerprint = getattr(problem, "instance", problem)
        fingerprint = getattr(fingerprint, "fingerprint", lambda: problem.name)()
        # The solver name alone is ambiguous: two instances of the same backend
        # with different configs (e.g. SA with 100 vs 1000 sweeps) produce very
        # different statistics, so the config fingerprint is part of the key.
        solver_id = f"{solver.name}:{solver.config_fingerprint()}"
        return f"{fingerprint}|{solver_id}|{parameter:.9g}|{num_reads}"

    def __len__(self) -> int:
        return len(self._entries)

    def evaluate(
        self,
        problem: ConstrainedProblem,
        solver: QUBOSolver,
        parameter: float,
        num_reads: int,
        rng: RngLike = None,
    ) -> CachedEvaluation:
        """Evaluate a parameter through the cache."""
        key = self._key(problem, solver, parameter, num_reads)
        if key in self._entries:
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        rng = ensure_rng(rng)
        pf, energy_mean, energy_std, best_fitness = evaluate_parameter(
            problem, solver, parameter, num_reads, rng=rng
        )
        entry = CachedEvaluation(
            probability_of_feasibility=pf,
            energy_mean=energy_mean,
            energy_std=energy_std,
            best_fitness=best_fitness,
        )
        self._entries[key] = entry
        return entry

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Write the cache to a JSON file."""
        payload = {
            key: {
                "pf": entry.probability_of_feasibility,
                "energy_mean": entry.energy_mean,
                "energy_std": entry.energy_std,
                "best_fitness": entry.best_fitness,
            }
            for key, entry in self._entries.items()
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SolverCallCache":
        """Restore a cache written by :meth:`save`."""
        cache = cls()
        payload = json.loads(Path(path).read_text())
        for key, entry in payload.items():
            cache._entries[key] = CachedEvaluation(
                probability_of_feasibility=float(entry["pf"]),
                energy_mean=float(entry["energy_mean"]),
                energy_std=float(entry["energy_std"]),
                best_fitness=None if entry["best_fitness"] is None else float(entry["best_fitness"]),
            )
        return cache
