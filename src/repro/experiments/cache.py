"""Deprecation shim: the solver-call cache moved to :mod:`repro.service.cache`.

The cache started life as an experiment-harness helper; with the public solve
service it became a service-layer component (the service dedupes whole seeded
solver calls through it).  Importing from here keeps working.
"""

from repro.service.cache import CachedEvaluation, SolverCallCache

__all__ = ["CachedEvaluation", "SolverCallCache"]
