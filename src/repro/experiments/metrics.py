"""Optimality-gap metrics used by every comparison figure and Table 1.

The paper reports the *normalised optimality gap*: the relative difference
between the best feasible fitness found after a number of trials and the
near-optimal fitness of the instance, averaged over instances.  Until a method
finds its first feasible solution its gap is undefined; we follow the
convention of charging a 100 % gap (1.0) so that methods proposing infeasible
parameters are penalised rather than silently dropped from the average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.tuning.base import TrialHistory

#: Gap charged to a trial count at which no feasible solution has been found yet.
INFEASIBLE_GAP = 1.0


def optimality_gap(best_fitness: Optional[float], reference_fitness: float) -> float:
    """Normalised gap ``(best - reference) / reference``; 1.0 when infeasible."""
    if reference_fitness <= 0:
        raise ValueError("reference_fitness must be positive")
    if best_fitness is None:
        return INFEASIBLE_GAP
    return max(0.0, (best_fitness - reference_fitness) / reference_fitness)


def gap_curve(history: TrialHistory, reference_fitness: float, num_trials: int) -> np.ndarray:
    """Per-trial running optimality gap for one instance.

    The curve has length ``num_trials``; if the history is shorter, the last
    value is carried forward.
    """
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    running = history.best_fitness_curve()
    curve = np.empty(num_trials)
    last = INFEASIBLE_GAP
    for index in range(num_trials):
        if index < len(running):
            last = optimality_gap(running[index], reference_fitness)
        curve[index] = last
    return curve


@dataclass(frozen=True)
class GapSummary:
    """Mean gap curve with a 95 % confidence band across instances."""

    method: str
    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    num_instances: int

    def at_trial(self, trial_number: int) -> float:
        """Mean gap after ``trial_number`` trials (1-based, clamped to the budget)."""
        if trial_number < 1:
            raise ValueError("trial_number is 1-based")
        index = min(trial_number, self.mean.size) - 1
        return float(self.mean[index])


def summarise_gap_curves(method: str, curves: Sequence[np.ndarray]) -> GapSummary:
    """Aggregate per-instance gap curves into mean and 95 % confidence band."""
    if not curves:
        raise ValueError("at least one curve is required")
    matrix = np.vstack(curves)
    mean = matrix.mean(axis=0)
    if matrix.shape[0] > 1:
        stderr = matrix.std(axis=0, ddof=1) / np.sqrt(matrix.shape[0])
    else:
        stderr = np.zeros_like(mean)
    margin = 1.96 * stderr
    return GapSummary(
        method=method,
        mean=mean,
        lower=np.maximum(mean - margin, 0.0),
        upper=mean + margin,
        num_instances=matrix.shape[0],
    )


def gap_table_rows(
    summaries: Dict[str, GapSummary],
    trial_numbers: Sequence[int] = (3, 20),
) -> List[dict]:
    """Rows for a Table-1-style report: one row per method, one column per trial count."""
    rows = []
    for method, summary in summaries.items():
        row = {"method": method}
        for trial in trial_numbers:
            row[f"gap@{trial}"] = summary.at_trial(trial)
        rows.append(row)
    return rows
