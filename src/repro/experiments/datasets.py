"""Dataset and surrogate construction helpers shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.dataset import SamplingPlan, SurrogateDataset, collect_training_data
from repro.core.features import TSPStatisticsExtractor
from repro.core.surrogate import SolverSurrogate, SurrogateConfig
from repro.experiments.profiles import ExperimentProfile
from repro.problems.mvc.generator import (
    RandomMVCConfig,
    generate_mvc_dataset,
    generate_sparse_mvc_instance,
)
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.generator import SyntheticTSPConfig, generate_dataset
from repro.problems.tsp.qubo import TSPProblem
from repro.problems.tsp.tsplib import bundled_tsplib_suite
from repro.service.registry import SolverRegistry
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng


def make_solver(profile: ExperimentProfile, backend: str) -> QUBOSolver:
    """Construct a solver backend sized according to ``profile``.

    Deprecation shim: construction now goes through the
    :class:`~repro.service.registry.SolverRegistry` — ``backend`` is any
    registry name or alias (``"da"``, ``"pt"``, ``"qbsolv"``, ``"sa"``,
    ``"tabu"``, ``"qa"``, ``"random"``) and the profile supplies the sized
    config.
    """
    registry = SolverRegistry.default()
    name = registry.canonical_name(backend)
    config_factories = {
        "da": profile.digital_annealer_config,
        "pt": profile.parallel_tempering_config,
        "qbsolv": profile.qbsolv_config,
        "sa": profile.simulated_annealing_config,
        "tabu": profile.tabu_search_config,
        "qa": profile.quantum_annealer_config,
        "portfolio": profile.portfolio_config,
    }
    factory = config_factories.get(name)
    return registry.create(name, config=factory() if factory is not None else None)


def solver_spec(profile: ExperimentProfile, backend: str) -> str:
    """Registry spec string of the profile-sized solver for ``backend``.

    The spec form is what crosses process boundaries: the distributed
    execution backends ship it to their workers — the process pool's spawned
    interpreters and the remote TCP fleet (``QROSS_EXECUTION_BACKEND=remote``
    with ``QROSS_REMOTE_WORKERS=host:port,...``) alike — which re-resolve a
    solver with the identical config fingerprint.  Handy for configuring
    remote / multiprocess runs from a profile without shipping solver
    objects.
    """
    return SolverRegistry.default().spec_for(make_solver(profile, backend))


@dataclass(frozen=True)
class ExperimentDatasets:
    """Train/test problem splits used by the comparison experiments."""

    train_problems: tuple[TSPProblem, ...]
    test_problems: tuple[TSPProblem, ...]
    tsplib_problems: tuple[TSPProblem, ...]


def build_problems(profile: ExperimentProfile) -> ExperimentDatasets:
    """Generate the synthetic train/test split and the TSPLIB-like suite."""
    config = SyntheticTSPConfig(min_cities=profile.min_cities, max_cities=profile.max_cities)
    total = profile.num_train_instances + profile.num_test_instances
    instances = generate_dataset(total, config=config, rng=profile.seed)
    train = instances[: profile.num_train_instances]
    test = instances[profile.num_train_instances :]
    tsplib = bundled_tsplib_suite(max_cities=profile.tsplib_max_cities, seed=profile.seed)
    return ExperimentDatasets(
        train_problems=tuple(TSPProblem(instance) for instance in train),
        test_problems=tuple(TSPProblem(instance) for instance in test),
        tsplib_problems=tuple(TSPProblem(instance) for instance in tsplib),
    )


def build_mvc_problems(
    profile: ExperimentProfile,
    num_instances: int = 4,
    rng: RngLike = None,
) -> tuple[MVCProblem, ...]:
    """Generate MVC problems sized by the profile (Appendix B workload).

    Instances use the profile's ``mvc_num_vertices`` / ``mvc_edge_probability``
    and encode through the sparse-first accumulator path (storage is chosen
    automatically per instance size and density).
    """
    instances = generate_mvc_dataset(
        num_instances,
        config=RandomMVCConfig(
            num_vertices=profile.mvc_num_vertices,
            edge_probability=profile.mvc_edge_probability,
        ),
        rng=rng if rng is not None else profile.seed,
    )
    return tuple(MVCProblem(instance) for instance in instances)


def build_sparse_mvc_problem(
    num_vertices: int,
    edge_density: float,
    rng: RngLike = None,
    storage: str = "auto",
) -> MVCProblem:
    """One large sparse MVC problem, CSR end to end (scaling studies, benchmarks)."""
    instance = generate_sparse_mvc_instance(
        num_vertices, edge_density=edge_density, rng=rng
    )
    return MVCProblem(instance, storage=storage)


def sampling_plan(profile: ExperimentProfile) -> SamplingPlan:
    """Sampling plan for surrogate data collection derived from the profile."""
    return SamplingPlan(
        coarse_multipliers=profile.coarse_multipliers,
        num_refinement_points=profile.num_refinement_points,
        num_reads=profile.num_reads,
    )


def collect_surrogate_dataset(
    problems: Sequence[TSPProblem],
    solver: QUBOSolver,
    profile: ExperimentProfile,
    rng: RngLike = None,
) -> SurrogateDataset:
    """Run the solver over the training instances to build the surrogate dataset."""
    rng = ensure_rng(rng if rng is not None else profile.seed)
    extractor = TSPStatisticsExtractor()
    return collect_training_data(
        list(problems), solver, extractor=extractor, plan=sampling_plan(profile), rng=rng
    )


def train_surrogate(
    dataset: SurrogateDataset,
    profile: ExperimentProfile,
    rng: RngLike = None,
) -> SolverSurrogate:
    """Train a solver surrogate on a collected dataset."""
    surrogate = SolverSurrogate(
        TSPStatisticsExtractor(),
        config=SurrogateConfig(num_epochs=profile.surrogate_epochs),
        rng=profile.seed if rng is None else rng,
    )
    surrogate.fit(dataset, rng=profile.seed if rng is None else rng)
    return surrogate


def train_surrogate_for_solver(
    profile: ExperimentProfile,
    backend: str,
    train_problems: Sequence[TSPProblem] | None = None,
    rng: RngLike = None,
) -> tuple[SolverSurrogate, QUBOSolver, SurrogateDataset]:
    """End-to-end helper: build datasets, collect solver data, train the surrogate."""
    solver = make_solver(profile, backend)
    if train_problems is None:
        train_problems = build_problems(profile).train_problems
    dataset = collect_surrogate_dataset(train_problems, solver, profile, rng=rng)
    surrogate = train_surrogate(dataset, profile, rng=rng)
    return surrogate, solver, dataset
