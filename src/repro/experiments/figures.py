"""Generators for every figure in the paper.

Each ``figureN_*`` function returns a plain dataclass holding the data series
the corresponding figure plots; the benchmark harness and the examples render
them as text.  Absolute values differ from the paper (the solvers are
simulated, the instances are generated offline), but the *shapes* — the ``Pf``
sigmoid, the energy dipper, QROSS leading the baselines, the cross-solver
ablation penalty, the MVC penalty-weight degradation — are what these
reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import evaluate_parameter
from repro.core.strategies.composed import ComposedStrategyConfig
from repro.experiments.datasets import (
    ExperimentDatasets,
    build_problems,
    make_solver,
    train_surrogate_for_solver,
)
from repro.experiments.profiles import ExperimentProfile, resolve_profile
from repro.experiments.runner import (
    ComparisonResult,
    baseline_tuner_factories,
    qross_tuner_factory,
    run_comparison,
)
from repro.problems.mvc.generator import RandomMVCConfig, generate_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.precision import AnalogNoiseModel, QuantizationModel
from repro.service.service import SolveService, default_service
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingSolver
from repro.utils.rng import RngLike, ensure_rng


# --------------------------------------------------------------------- Fig. 1
@dataclass(frozen=True)
class LandscapeSeries:
    """``Pf`` and batch-minimum energy versus the relaxation parameter for one solver."""

    solver_name: str
    parameters: np.ndarray
    probability_of_feasibility: np.ndarray
    min_energy: np.ndarray
    best_fitness: np.ndarray


@dataclass(frozen=True)
class Figure1Result:
    """Data behind Fig. 1: the feasibility sigmoid and the energy dipper."""

    instance_name: str
    series: Dict[str, LandscapeSeries]


def figure1_landscape(
    profile: ExperimentProfile | None = None,
    problem: Optional[TSPProblem] = None,
    multipliers: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 2.5),
    rng: RngLike = None,
    service: Optional[SolveService] = None,
) -> Figure1Result:
    """Sweep the relaxation parameter for the DA-style and SA solvers (paper Fig. 1)."""
    profile = profile or resolve_profile()
    rng = ensure_rng(rng if rng is not None else profile.seed)
    service = service or default_service()
    if problem is None:
        problem = build_problems(profile).test_problems[0]
    scale = problem.relaxation_scale()
    parameters = np.array([m * scale for m in multipliers])

    series: Dict[str, LandscapeSeries] = {}
    for backend, label in (("da", "Digital Annealer"), ("sa", "Simulated Annealing on CPU")):
        solver = make_solver(profile, backend)
        pf_values, min_energies, best_fitnesses = [], [], []
        for parameter in parameters:
            model = problem.build_qubo(float(parameter))
            samples = service.sample(model, solver, num_reads=profile.num_reads, rng=rng)
            pf_values.append(samples.probability_of_feasibility(problem.is_feasible))
            min_energies.append(float(samples.energies.min()))
            fitnesses = [
                problem.fitness(a) for a in samples.assignments if problem.is_feasible(a)
            ]
            best_fitnesses.append(float(min(fitnesses)) if fitnesses else np.nan)
        series[label] = LandscapeSeries(
            solver_name=label,
            parameters=parameters,
            probability_of_feasibility=np.array(pf_values),
            min_energy=np.array(min_energies),
            best_fitness=np.array(best_fitnesses),
        )
    return Figure1Result(instance_name=problem.name, series=series)


# ---------------------------------------------------------------- Figs. 3 / 4
@dataclass(frozen=True)
class ComparisonFigure:
    """A gap-vs-trials comparison (Figs. 3, 4 and 5)."""

    title: str
    solver_backend: str
    dataset_name: str
    result: ComparisonResult


def _comparison_on(
    problems: Sequence[TSPProblem],
    profile: ExperimentProfile,
    backend: str,
    surrogate,
    dataset_name: str,
    title: str,
    rng: RngLike,
) -> ComparisonFigure:
    solver = make_solver(profile, backend)
    qross_config = ComposedStrategyConfig(batch_size=profile.num_reads)
    factories = {"QROSS": qross_tuner_factory(surrogate, config=qross_config)}
    factories.update(baseline_tuner_factories())
    result = run_comparison(
        problems,
        solver,
        factories,
        num_trials=profile.num_trials,
        num_reads=profile.num_reads,
        rng=rng,
        backend=profile.execution_backend,
    )
    return ComparisonFigure(title=title, solver_backend=backend, dataset_name=dataset_name, result=result)


def figure3_synthetic_comparison(
    profile: ExperimentProfile | None = None,
    backend: str = "da",
    datasets: ExperimentDatasets | None = None,
    surrogate=None,
    rng: RngLike = None,
) -> ComparisonFigure:
    """QROSS vs TPE / BO / Random on the synthetic test set (paper Fig. 3)."""
    profile = profile or resolve_profile()
    rng = ensure_rng(rng if rng is not None else profile.seed + 3)
    datasets = datasets or build_problems(profile)
    if surrogate is None:
        surrogate, _, _ = train_surrogate_for_solver(profile, backend, datasets.train_problems)
    return _comparison_on(
        datasets.test_problems,
        profile,
        backend,
        surrogate,
        dataset_name="synthetic",
        title="Figure 3: synthetic test instances",
        rng=rng,
    )


def figure4_tsplib_comparison(
    profile: ExperimentProfile | None = None,
    backend: str = "da",
    datasets: ExperimentDatasets | None = None,
    surrogate=None,
    rng: RngLike = None,
) -> ComparisonFigure:
    """Same comparison on the out-of-distribution TSPLIB-like suite (paper Fig. 4)."""
    profile = profile or resolve_profile()
    rng = ensure_rng(rng if rng is not None else profile.seed + 4)
    datasets = datasets or build_problems(profile)
    if surrogate is None:
        surrogate, _, _ = train_surrogate_for_solver(profile, backend, datasets.train_problems)
    return _comparison_on(
        datasets.tsplib_problems,
        profile,
        backend,
        surrogate,
        dataset_name="tsplib",
        title="Figure 4: TSPLIB-like real-world suite",
        rng=rng,
    )


# -------------------------------------------------------------------- Fig. 5
@dataclass(frozen=True)
class Figure5Result:
    """Cross-solver ablation: DA-trained surrogate evaluated on both solvers."""

    same_solver: ComparisonFigure
    cross_solver: ComparisonFigure


def figure5_cross_solver(
    profile: ExperimentProfile | None = None,
    datasets: ExperimentDatasets | None = None,
    rng: RngLike = None,
) -> Figure5Result:
    """Ablation of paper Fig. 5: train QROSS on DA data, test it with Qbsolv.

    The expected shape is a *performance lag*: the DA-trained surrogate loses
    (part of) its advantage when its proposals are evaluated by a different
    solver, because the learned ``Pf`` / energy landscapes no longer match.
    """
    profile = profile or resolve_profile()
    rng = ensure_rng(rng if rng is not None else profile.seed + 5)
    datasets = datasets or build_problems(profile)
    surrogate, _, _ = train_surrogate_for_solver(profile, "da", datasets.train_problems)
    same = _comparison_on(
        datasets.test_problems,
        profile,
        "da",
        surrogate,
        dataset_name="synthetic",
        title="Figure 5 (solid): DA-trained QROSS on DA",
        rng=rng,
    )
    cross = _comparison_on(
        datasets.test_problems,
        profile,
        "qbsolv",
        surrogate,
        dataset_name="synthetic",
        title="Figure 5 (dashed): DA-trained QROSS on Qbsolv",
        rng=rng,
    )
    return Figure5Result(same_solver=same, cross_solver=cross)


# -------------------------------------------------------------------- Fig. 6
@dataclass(frozen=True)
class Figure6Result:
    """Penalty weight versus normalised MVC energy for the noisy-QA and SA solvers."""

    penalty_weights: np.ndarray
    normalized_energy: Dict[str, np.ndarray]
    num_runs: int


def figure6_mvc_penalty(
    profile: ExperimentProfile | None = None,
    penalty_weights: Sequence[float] = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0),
    num_vertices: int | None = None,
    num_runs: int = 4,
    rng: RngLike = None,
) -> Figure6Result:
    """Reproduce Appendix B / Fig. 6: larger penalty weights degrade solution energy.

    The "QA" series uses the analog-noise + quantisation wrapped annealer; the
    "SA" series uses the plain simulated annealer whose only degradation channel
    is the relative flattening of the objective.  Energies are normalised to the
    best energy discovered across the whole run, as in the paper.
    """
    profile = profile or resolve_profile()
    if num_vertices is None:
        num_vertices = profile.mvc_num_vertices
    rng = ensure_rng(rng if rng is not None else profile.seed + 6)
    weights = np.asarray(penalty_weights, dtype=np.float64)
    if np.any(weights <= 0):
        raise ValueError("penalty weights must be positive")

    solvers = {
        "sa": SimulatedAnnealingSolver(profile.simulated_annealing_config()),
        "qa": QuantumAnnealerSolver(
            QuantumAnnealerConfig(
                noise=AnalogNoiseModel(relative_error=0.03, absolute_error=0.01),
                quantization=QuantizationModel(num_bits=8),
                base_config=profile.simulated_annealing_config(),
            )
        ),
    }
    accumulated = {name: np.zeros(weights.size) for name in solvers}

    for _ in range(num_runs):
        instance = generate_mvc_instance(
            RandomMVCConfig(
                num_vertices=num_vertices,
                edge_probability=profile.mvc_edge_probability,
            ),
            rng=rng,
        )
        problem = MVCProblem(instance)
        for name, solver in solvers.items():
            best_weights = []
            for weight in weights:
                pf, _, _, best_fitness = evaluate_parameter(
                    problem, solver, float(weight), profile.num_reads, rng=rng
                )
                if best_fitness is None:
                    # No feasible cover found: charge the cost of the full vertex set.
                    best_fitness = float(instance.weights.sum())
                best_weights.append(best_fitness)
            best_weights = np.array(best_weights)
            baseline = best_weights.min()
            accumulated[name] += best_weights / max(baseline, 1e-12)

    normalized = {name: values / num_runs for name, values in accumulated.items()}
    return Figure6Result(penalty_weights=weights, normalized_energy=normalized, num_runs=num_runs)
