"""Per-instance algorithm portfolio: budget-aware solver scheduling.

The registry holds many solver families, but a caller usually does not know
which one is cheapest for *this* instance.  The portfolio layer closes that
gap in the borg-portfolio style:

* :mod:`repro.portfolio.outcomes` — an append-only JSONL :class:`OutcomeLog`
  recording what each solver achieved on each instance (feature vector, spec,
  budget, best energy, time-to-target), harvested from experiment runs;
* :mod:`repro.portfolio.strategies` — the scheduling seam:
  :class:`FixedStrategy`, :class:`SequenceStrategy` and the
  feature-conditioned :class:`ModelingStrategy` (per-spec success model +
  UCB / epsilon-greedy selection with mid-budget replanning);
* :mod:`repro.portfolio.solver` — :class:`PortfolioSolver`, the ``portfolio``
  registry backend, whose ``_sample`` fans member
  :class:`~repro.service.requests.SolveRequest` slices out through a
  :class:`~repro.service.service.SolveService` in interleaved rounds.

>>> from repro.service import make_solver
>>> solver = make_solver("portfolio?members=sa,pt&strategy=ucb&sweep_budget=400")
"""

from repro.portfolio.members import (
    BUDGET_FIELDS,
    budget_field,
    join_member_list,
    slice_solver,
    split_member_list,
)
from repro.portfolio.outcomes import (
    OutcomeLog,
    OutcomeRecord,
    harvest_outcomes,
    solver_spec_or_label,
    time_to_target,
)
from repro.portfolio.solver import PortfolioConfig, PortfolioSolver
from repro.portfolio.strategies import (
    FixedStrategy,
    ModelingStrategy,
    PortfolioModel,
    SequenceStrategy,
    SliceOutcome,
    Strategy,
)

__all__ = [
    "BUDGET_FIELDS",
    "budget_field",
    "join_member_list",
    "slice_solver",
    "split_member_list",
    "OutcomeLog",
    "OutcomeRecord",
    "harvest_outcomes",
    "solver_spec_or_label",
    "time_to_target",
    "PortfolioConfig",
    "PortfolioSolver",
    "FixedStrategy",
    "ModelingStrategy",
    "PortfolioModel",
    "SequenceStrategy",
    "SliceOutcome",
    "Strategy",
]
