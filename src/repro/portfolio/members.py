"""Member plumbing for the portfolio: spec lists and budget slicing.

A portfolio member is any registry backend whose config exposes a *budget
knob* — the field that says how much work one call performs.  The annealers
count sweeps (``num_sweeps``), the local searches count steps (``num_steps``);
either way the portfolio treats the field's unit as the member's budget
currency and schedules (member, budget) slices against it.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields, is_dataclass, replace
from typing import Sequence, Tuple, Union

from repro.solvers.base import QUBOSolver

#: Config fields recognised as a member's budget knob, in probe order.
BUDGET_FIELDS = ("num_sweeps", "num_steps")

#: Registry names a portfolio refuses as members (no nested portfolios: the
#: budget accounting and determinism contract would not compose).
_FORBIDDEN_MEMBERS = ("portfolio", "algorithm-portfolio")

MemberList = Union[str, Sequence[str]]


def split_member_list(members: MemberList) -> Tuple[str, ...]:
    """Normalise a member list (comma string or sequence) into spec tuples.

    ``"sa,pt?num_replicas=4"`` and ``["sa", "pt?num_replicas=4"]`` are
    equivalent.  Inside a *parent* spec string, member specs that contain
    ``?``/``=``/``&`` must be URL-escaped (the registry grammar unquotes them
    on parse); by the time this function sees the value it is plain text.
    """
    if isinstance(members, str):
        parts = members.split(",")
    else:
        parts = [str(part) for part in members]
    specs = tuple(part.strip() for part in parts if part.strip())
    if not specs:
        raise ValueError("a portfolio needs at least one member spec")
    for spec in specs:
        head = spec.partition("?")[0].strip().lower()
        if head in _FORBIDDEN_MEMBERS:
            raise ValueError(
                f"portfolio member {spec!r} is itself a portfolio; "
                f"portfolios do not nest"
            )
    return specs


def join_member_list(members: MemberList) -> str:
    """The canonical comma-joined form of a member list."""
    return ",".join(split_member_list(members))


def budget_field(solver: QUBOSolver) -> str:
    """The config field carrying this member's sweep/step budget."""
    config = getattr(solver, "config", None)
    if is_dataclass(config) and not isinstance(config, type):
        names = {f.name for f in dataclass_fields(config)}
        for name in BUDGET_FIELDS:
            if name in names:
                return name
    raise ValueError(
        f"solver {solver.name!r} exposes none of {BUDGET_FIELDS}; it cannot "
        f"be scheduled under a sweep budget — pick members with a budget knob "
        f"(sa, pt, da, tabu, ...)"
    )


def slice_solver(
    solver: QUBOSolver, budget: int, track_trajectory: bool = True
) -> QUBOSolver:
    """A copy of ``solver`` configured to spend exactly ``budget`` units.

    The slice asks for a best-energy trajectory when the member supports one,
    so the portfolio can refine time-to-target *within* a slice instead of
    charging the whole slice budget.
    """
    budget = int(budget)
    if budget <= 0:
        raise ValueError(f"slice budget must be positive, got {budget}")
    field = budget_field(solver)
    overrides = {field: budget}
    names = {f.name for f in dataclass_fields(solver.config)}
    if track_trajectory and "track_trajectory" in names:
        overrides["track_trajectory"] = True
    return type(solver)(replace(solver.config, **overrides))
