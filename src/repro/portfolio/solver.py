""":class:`PortfolioSolver` — the ``portfolio`` registry backend.

One solver that *schedules* other solvers: ``_sample`` runs the configured
:class:`~repro.portfolio.strategies.Strategy` loop, fanning each round's
(member, budget) slices out through a :class:`~repro.service.service.SolveService`
as seeded :class:`~repro.service.requests.SolveRequest` objects, so the
member solves transparently run on the thread, process, or remote-fleet
execution backends.  Between rounds the strategy observes per-slice outcomes
and replans; members it cancels receive no further budget.

Determinism contract (matching every other registry backend): a seeded
portfolio solve is byte-identical across pool widths and execution backends.
The ingredients —

* per-member child RNG streams and the strategy stream are spawned from the
  caller's generator in fixed member order *before* any solving;
* every slice runs as a *seeded* request (seed drawn from its member's
  stream), so the service's execution backend cannot perturb it;
* slice results are collected and merged in fixed (round, action) submission
  order, never completion order;
* budgets are sweeps/steps, not wall-clock.  ``wall_clock_budget_s`` is the
  opt-in exception: it stops *between* rounds once the deadline passed, which
  couples the schedule to machine speed and is therefore documented as
  nondeterministic (each completed round remains byte-reproducible).

The fan-out uses a private, unbounded, module-level service — never the
process-default one — so a portfolio running *on* a service pool thread
cannot deadlock waiting for its own members, and member slices are never
shed by the default service's admission gate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.features import model_feature_vector
from repro.portfolio.members import (
    budget_field,
    join_member_list,
    slice_solver,
    split_member_list,
)
from repro.portfolio.strategies import PortfolioModel, SliceOutcome, make_strategy
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver

_STRATEGIES = ("fixed", "sequence", "ucb", "epsilon")

#: Private fan-out services, one per execution-backend spec.  Unbounded
#: admission and separate from :func:`repro.service.service.default_service`
#: by design (see module docstring).
_FANOUT_SERVICES: Dict[str, "SolveService"] = {}
_FANOUT_LOCK = threading.Lock()


def _fanout_service(backend: Optional[str]):
    from repro.service.service import SolveService

    key = backend or "thread"
    with _FANOUT_LOCK:
        service = _FANOUT_SERVICES.get(key)
        if service is None:
            service = SolveService(backend=key, max_pending=None)
            _FANOUT_SERVICES[key] = service
        return service


@dataclass(frozen=True)
class PortfolioConfig:
    """Configuration of :class:`PortfolioSolver`.

    Parameters
    ----------
    members:
        Comma-joined member registry specs (``"sa,pt?num_replicas=8"``).
        Inside a parent ``portfolio?members=...`` spec string, member specs
        containing ``?``/``=``/``&`` must be URL-escaped; the registry
        grammar unquotes them on parse.
    strategy:
        ``"fixed"`` | ``"sequence"`` | ``"ucb"`` | ``"epsilon"``.
    sweep_budget:
        Total budget in the members' own budget units (sweeps for the
        annealers, steps for the local searches).
    round_sweeps:
        Slice size per round for the modeling strategies (default:
        ``sweep_budget // 8``).
    width:
        How many members a modeling round runs concurrently.
    member_reads:
        Reads per member slice (default: the caller's ``num_reads``).
    outcome_log:
        Path to an :class:`~repro.portfolio.outcomes.OutcomeLog` JSONL file;
        when set, the modeling strategies fit a feature-conditioned
        :class:`~repro.portfolio.strategies.PortfolioModel` from it.
    knn:
        Neighbourhood size of that model.
    track_trajectory:
        Record ``portfolio_trajectory`` ([cumulative_budget, best_energy]
        pairs) in the sample-set info.
    execution_backend:
        Execution backend spec for the member fan-out (``"thread"``,
        ``"process"``, ...).  ``None`` pins the in-process thread backend —
        deliberately *not* the ``QROSS_EXECUTION_BACKEND`` default, so a
        portfolio running inside a process worker never nests pools
        accidentally.
    wall_clock_budget_s:
        Opt-in wall-clock stop, checked between rounds.  NONDETERMINISTIC:
        how many rounds fit depends on machine speed.
    """

    members: str = "sa,tabu"
    strategy: str = "ucb"
    sweep_budget: int = 400
    round_sweeps: Optional[int] = None
    width: int = 2
    epsilon: float = 0.1
    exploration: float = 0.5
    member_reads: Optional[int] = None
    outcome_log: Optional[str] = None
    knn: int = 4
    track_trajectory: bool = False
    execution_backend: Optional[str] = None
    wall_clock_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", join_member_list(self.members))
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.sweep_budget <= 0:
            raise ValueError("sweep_budget must be positive")
        if self.round_sweeps is not None and self.round_sweeps <= 0:
            raise ValueError("round_sweeps must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if self.member_reads is not None and self.member_reads <= 0:
            raise ValueError("member_reads must be positive")
        if self.knn <= 0:
            raise ValueError("knn must be positive")
        if self.wall_clock_budget_s is not None and self.wall_clock_budget_s <= 0:
            raise ValueError("wall_clock_budget_s must be positive")

    @property
    def member_specs(self) -> Tuple[str, ...]:
        return split_member_list(self.members)


class PortfolioSolver(QUBOSolver):
    """Budget-aware scheduling over the registry's solver families."""

    name = "portfolio"

    def __init__(self, config: Optional[PortfolioConfig] = None) -> None:
        self.config = config or PortfolioConfig()
        self._model_lock = threading.Lock()
        self._model: Optional[PortfolioModel] = None
        self._model_loaded = False

    # ----------------------------------------------------------------- pieces
    def _portfolio_model(self) -> Optional[PortfolioModel]:
        """The outcome-log-fitted success model, loaded once per instance."""
        if self.config.outcome_log is None:
            return None
        with self._model_lock:
            if not self._model_loaded:
                from repro.portfolio.outcomes import OutcomeLog

                log = OutcomeLog.load(self.config.outcome_log)
                self._model = PortfolioModel(knn=self.config.knn).fit(
                    log, self.config.member_specs
                )
                self._model_loaded = True
            return self._model

    def _make_strategy(self):
        return make_strategy(
            self.config.strategy,
            self.config.member_specs,
            model=self._portfolio_model(),
            round_budget=self.config.round_sweeps,
            width=self.config.width,
            epsilon=self.config.epsilon,
            exploration=self.config.exploration,
        )

    # ------------------------------------------------------------------ solve
    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        from repro.service.registry import make_solver
        from repro.service.requests import SolveRequest

        cfg = self.config
        specs = cfg.member_specs
        members = {spec: make_solver(spec) for spec in specs}
        for solver in members.values():
            budget_field(solver)  # fail fast on budget-less members

        # All randomness is drawn here, in fixed member order, before any
        # solving: backends and completion order cannot perturb the streams.
        member_streams = {
            spec: np.random.default_rng(int(rng.integers(0, 2**63 - 1)))
            for spec in specs
        }
        strategy_rng = np.random.default_rng(int(rng.integers(0, 2**63 - 1)))

        strategy = self._make_strategy()
        strategy.begin(
            specs, float(cfg.sweep_budget), features=model_feature_vector(model)
        )
        service = _fanout_service(cfg.execution_backend)
        reads = cfg.member_reads if cfg.member_reads is not None else num_reads
        deadline = (
            None
            if cfg.wall_clock_budget_s is None
            else time.monotonic() + cfg.wall_clock_budget_s
        )

        remaining = float(cfg.sweep_budget)
        spent = 0.0
        incumbent = float("inf")
        rounds = 0
        num_slices = 0
        member_budget = {spec: 0.0 for spec in specs}
        sample_sets: List[SampleSet] = []
        trajectory: List[List[float]] = []

        while remaining > 0:
            actions = strategy.allocate(remaining, strategy_rng)
            if not actions:
                break
            # Clip the round to the remaining budget, in action order.
            committed = 0.0
            clipped: List[Tuple[str, int]] = []
            for spec, budget in actions:
                slice_budget = int(min(budget, remaining - committed))
                if slice_budget <= 0:
                    continue
                committed += slice_budget
                clipped.append((spec, slice_budget))
            if not clipped:
                break

            # The round span wraps submission, so the member slices' own
            # service.solve spans (captured at submit time) nest under it.
            with obs.span(
                "portfolio.round",
                strategy=cfg.strategy,
                round=rounds,
                allocation=",".join(f"{spec}:{budget}" for spec, budget in clipped),
            ) as round_span:
                submitted = []
                for spec, slice_budget in clipped:
                    seed = int(member_streams[spec].integers(0, 2**63 - 1))
                    request = SolveRequest(
                        solver=slice_solver(members[spec], slice_budget),
                        model=model,
                        num_reads=reads,
                        seed=seed,
                        label=f"portfolio:{spec}",
                    )
                    submitted.append((spec, slice_budget, service.submit(request)))

                outcomes: List[SliceOutcome] = []
                for spec, slice_budget, future in submitted:  # fixed order, not completion
                    with obs.span(
                        "portfolio.slice", member=spec, budget=slice_budget
                    ) as slice_span:
                        samples = future.result().samples
                        best = float(np.min(samples.energies))
                        slice_span.set(best_energy=best, improved=best < incumbent)
                    start = spent
                    spent += slice_budget
                    remaining -= slice_budget
                    member_budget[spec] += slice_budget
                    num_slices += 1
                    obs.counter(
                        "qross_portfolio_slices_total",
                        labels={"member": spec},
                        help="Member slices the portfolio scheduler dispatched",
                    ).inc()
                    improved = best < incumbent
                    if improved:
                        slice_traj = samples.info.get("best_energy_trajectory")
                        if slice_traj:
                            for index, energy in enumerate(slice_traj):
                                energy = float(energy)
                                if energy < incumbent:
                                    incumbent = energy
                                    trajectory.append([start + index + 1, energy])
                        # Members without trajectories charge the whole slice.
                        if best < incumbent:
                            incumbent = best
                            trajectory.append([start + slice_budget, best])
                    sample_sets.append(samples)
                    outcomes.append(
                        SliceOutcome(
                            spec=spec,
                            budget=float(slice_budget),
                            best_energy=best,
                            improved=improved,
                            round_index=rounds,
                            cumulative_budget=spent,
                        )
                    )
                strategy.observe_round(outcomes)
                round_span.set(budget_spent=spent, best_energy=incumbent)
            obs.counter(
                "qross_portfolio_rounds_total",
                labels={"strategy": cfg.strategy},
                help="Strategy rounds the portfolio scheduler completed",
            ).inc()
            rounds += 1
            if deadline is not None and time.monotonic() >= deadline:
                break

        merged = SampleSet.concatenate(sample_sets)
        assignments = merged.truncated(num_reads).assignments
        if assignments.shape[0] < num_reads:
            # Fewer reads than asked for (member_reads < num_reads with few
            # slices): tile the best rows cyclically to honour the contract.
            tiles = -(-num_reads // assignments.shape[0])
            assignments = np.tile(assignments, (tiles, 1))[:num_reads]

        info: dict = {
            "portfolio_members": list(specs),
            "portfolio_strategy": cfg.strategy,
            "portfolio_budget": float(cfg.sweep_budget),
            "portfolio_budget_spent": spent,
            "portfolio_rounds": rounds,
            "portfolio_slices": num_slices,
            "portfolio_member_budget": {k: float(v) for k, v in member_budget.items()},
            "portfolio_best_energy": incumbent,
        }
        cancelled = getattr(strategy, "cancelled", ())
        if cancelled:
            info["portfolio_cancelled"] = list(cancelled)
            obs.counter(
                "qross_portfolio_cancellations_total",
                labels={"strategy": cfg.strategy},
                help="Members cancelled by the portfolio strategy",
            ).inc(len(cancelled))
        if cfg.track_trajectory:
            info["portfolio_trajectory"] = [
                [float(b), float(e)] for b, e in trajectory
            ]
        return assignments, info
