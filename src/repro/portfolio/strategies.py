"""Scheduling strategies: who runs next, and with how much budget.

A :class:`Strategy` turns a total sweep budget into a sequence of *rounds*;
each round is a list of ``(member_spec, slice_budget)`` actions the
:class:`~repro.portfolio.solver.PortfolioSolver` fans out concurrently.
After every round the strategy observes one :class:`SliceOutcome` per action
and may replan — reweight members, drop (cancel) hopeless ones, or stop.

Three strategies mirror the borg portfolio solver's trio:

* :class:`FixedStrategy` — the whole budget on one member (baseline / oracle
  probe);
* :class:`SequenceStrategy` — a static schedule of (spec, budget) actions,
  run one per round until exhausted;
* :class:`ModelingStrategy` — feature-conditioned selection: an optional
  :class:`PortfolioModel` fit from an :class:`~repro.portfolio.outcomes.OutcomeLog`
  seeds per-member priors, then UCB or epsilon-greedy bandit updates steer the
  remaining rounds, with mid-budget replanning and member cancellation.

Strategies are deterministic given the rng handed to :meth:`Strategy.allocate`
(epsilon-greedy is the only consumer of randomness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.portfolio.members import split_member_list
from repro.portfolio.outcomes import OutcomeLog


@dataclass(frozen=True)
class SliceOutcome:
    """What one (member, budget) slice achieved within its round."""

    spec: str
    budget: float
    best_energy: float
    improved: bool
    round_index: int
    cumulative_budget: float


class Strategy:
    """The scheduling seam; subclasses override the three hooks below."""

    def begin(
        self,
        members: Sequence[str],
        total_budget: float,
        features: Optional[Sequence[float]] = None,
    ) -> None:
        """Reset state for one solve over ``members`` with ``total_budget``."""
        self._members: Tuple[str, ...] = tuple(members)
        self._total_budget = float(total_budget)

    def allocate(
        self, remaining: float, rng: np.random.Generator
    ) -> List[Tuple[str, float]]:
        """The next round's ``(spec, budget)`` actions; empty list stops."""
        raise NotImplementedError

    def observe_round(self, outcomes: Sequence[SliceOutcome]) -> None:
        """Feedback for the actions the last :meth:`allocate` produced."""


class FixedStrategy(Strategy):
    """Spend the entire budget in one slice of one member.

    ``spec=None`` takes the portfolio's first member, so
    ``portfolio?members=pt&strategy=fixed`` degrades to a plain (but
    service-routed) single-solver run.
    """

    def __init__(self, spec: Optional[str] = None) -> None:
        self.spec = spec

    def begin(self, members, total_budget, features=None):
        super().begin(members, total_budget, features)
        spec = self.spec if self.spec is not None else self._members[0]
        if spec not in self._members:
            raise ValueError(f"fixed spec {spec!r} is not a member of {self._members}")
        self._schedule: List[Tuple[str, float]] = [(spec, self._total_budget)]

    def allocate(self, remaining, rng):
        if not self._schedule or remaining <= 0:
            return []
        spec, budget = self._schedule.pop(0)
        return [(spec, min(budget, remaining))]


class SequenceStrategy(Strategy):
    """A static (spec, budget) schedule, one action per round.

    With no explicit ``schedule`` the total budget is split evenly over the
    members in portfolio order — the classic round-robin restart schedule.
    """

    def __init__(self, schedule: Optional[Sequence[Tuple[str, float]]] = None) -> None:
        self.schedule = None if schedule is None else [
            (str(spec), float(budget)) for spec, budget in schedule
        ]

    def begin(self, members, total_budget, features=None):
        super().begin(members, total_budget, features)
        if self.schedule is not None:
            for spec, budget in self.schedule:
                if spec not in self._members:
                    raise ValueError(
                        f"schedule spec {spec!r} is not a member of {self._members}"
                    )
                if budget <= 0:
                    raise ValueError(f"schedule budget must be positive, got {budget}")
            self._pending = list(self.schedule)
        else:
            share = max(1.0, self._total_budget / len(self._members))
            self._pending = [(spec, share) for spec in self._members]

    def allocate(self, remaining, rng):
        if not self._pending or remaining <= 0:
            return []
        spec, budget = self._pending.pop(0)
        return [(spec, min(budget, remaining))]


class PortfolioModel:
    """Per-spec success model fit from an :class:`OutcomeLog`.

    For each training instance and member, the record's outcome is scored in
    ``[0, 1]``: a member that hit the target earns ``1 - 0.5 * ttt/budget``
    (faster is better), a miss earns 0.  Prediction is k-nearest-neighbour
    over z-scored instance feature vectors: the prior for a member is its mean
    score over the ``k`` instances most similar to the query, and
    ``expected_cost`` is the median time-to-target over the successful
    neighbour runs (``None`` when no neighbour succeeded).  Deterministic —
    no randomness anywhere in fit or predict.
    """

    def __init__(self, knn: int = 4, tolerance: float = 1e-9) -> None:
        self.knn = int(knn)
        self.tolerance = float(tolerance)
        self._features: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._scores: List[Dict[str, float]] = []
        self._costs: List[Dict[str, float]] = []
        self.members: Tuple[str, ...] = ()

    @property
    def fitted(self) -> bool:
        return self._features is not None and len(self._scores) > 0

    def fit(self, log: OutcomeLog, members: Sequence[str]) -> "PortfolioModel":
        self.members = tuple(members)
        wanted = set(self.members)
        by_instance: Dict[str, Dict[str, "OutcomeRecordLike"]] = {}
        feature_of: Dict[str, Tuple[float, ...]] = {}
        for record in log:
            if record.solver_spec not in wanted or record.best_energy is None:
                continue
            by_instance.setdefault(record.instance, {})[record.solver_spec] = record
            feature_of.setdefault(record.instance, record.features)

        rows, scores, costs = [], [], []
        for instance in sorted(by_instance):
            records = by_instance[instance]
            targets = [
                r.target_energy for r in records.values() if r.target_energy is not None
            ]
            target = min(targets) if targets else min(
                r.best_energy for r in records.values()
            )
            tol = self.tolerance * max(1.0, abs(target))
            row_scores: Dict[str, float] = {}
            row_costs: Dict[str, float] = {}
            for spec, record in records.items():
                hit = (
                    record.time_to_target is not None
                    or record.best_energy <= target + tol
                )
                if hit:
                    if record.time_to_target is not None and record.budget:
                        frac = min(1.0, record.time_to_target / record.budget)
                        row_costs[spec] = float(record.time_to_target)
                    else:
                        frac = 1.0
                    row_scores[spec] = 1.0 - 0.5 * frac
                else:
                    row_scores[spec] = 0.0
            rows.append(feature_of[instance])
            scores.append(row_scores)
            costs.append(row_costs)

        if rows:
            features = np.asarray(rows, dtype=np.float64)
            self._mean = features.mean(axis=0)
            self._std = features.std(axis=0)
            self._std[self._std < 1e-12] = 1.0
            self._features = (features - self._mean) / self._std
            self._scores = scores
            self._costs = costs
        return self

    def predict(
        self, features: Optional[Sequence[float]]
    ) -> Dict[str, Tuple[float, Optional[float]]]:
        """Per-member ``(prior_score, expected_cost)`` for a query instance.

        Without features (or an unfitted model) every member gets the neutral
        prior 0.5 with unknown cost.
        """
        neutral = {spec: (0.5, None) for spec in self.members}
        if not self.fitted:
            return neutral
        if features is None:
            neighbour_indices = list(range(len(self._scores)))
        else:
            query = (np.asarray(features, dtype=np.float64) - self._mean) / self._std
            distances = np.linalg.norm(self._features - query, axis=1)
            order = np.argsort(distances, kind="stable")
            neighbour_indices = list(order[: max(1, self.knn)])

        out: Dict[str, Tuple[float, Optional[float]]] = {}
        for spec in self.members:
            votes = [
                self._scores[i][spec] for i in neighbour_indices if spec in self._scores[i]
            ]
            cost_votes = sorted(
                self._costs[i][spec] for i in neighbour_indices if spec in self._costs[i]
            )
            prior = float(np.mean(votes)) if votes else 0.5
            cost = float(np.median(cost_votes)) if cost_votes else None
            out[spec] = (prior, cost)
        return out


class ModelingStrategy(Strategy):
    """Feature-conditioned bandit scheduling with mid-budget replanning.

    Round 0 either *exploits* (one large slice of the model's favourite when
    the prior gap is confident) or *probes* every member with a small slice.
    Later rounds pick the top ``width`` members by UCB score (``mode="ucb"``)
    or epsilon-greedy (``mode="epsilon"``), and *cancel* members whose upper
    confidence bound has fallen ``cancel_margin`` below the best mean after
    ``min_observations`` looks — cancelled members receive no further budget.

    Rewards are round-relative: the best member of a round earns 1, the rest
    a linear share of the spread, so the bandit adapts when a prior
    (or a lucky first slice) turns out to be wrong — replanning, not a fixed
    schedule.
    """

    def __init__(
        self,
        mode: str = "ucb",
        model: Optional[PortfolioModel] = None,
        round_budget: Optional[float] = None,
        width: int = 2,
        epsilon: float = 0.1,
        exploration: float = 0.5,
        prior_weight: float = 2.0,
        cost_margin: float = 2.0,
        cancel_margin: float = 0.25,
        min_observations: int = 2,
    ) -> None:
        if mode not in ("ucb", "epsilon"):
            raise ValueError(f"mode must be 'ucb' or 'epsilon', got {mode!r}")
        self.mode = mode
        self.model = model
        self.round_budget = round_budget
        self.width = int(width)
        self.epsilon = float(epsilon)
        self.exploration = float(exploration)
        self.prior_weight = float(prior_weight)
        self.cost_margin = float(cost_margin)
        self.cancel_margin = float(cancel_margin)
        self.min_observations = int(min_observations)

    # ------------------------------------------------------------------ hooks
    def begin(self, members, total_budget, features=None):
        super().begin(members, total_budget, features)
        predictions = (
            self.model.predict(features)
            if self.model is not None and self.model.fitted
            else {}
        )
        self._priors = {
            spec: predictions.get(spec, (0.5, None))[0] for spec in self._members
        }
        self._costs = {
            spec: predictions.get(spec, (0.5, None))[1] for spec in self._members
        }
        self._counts = {spec: 0 for spec in self._members}
        self._rewards = {spec: 0.0 for spec in self._members}
        self._active = list(self._members)
        self._cancelled: List[str] = []
        self._round = 0
        self._round_size = float(
            self.round_budget
            if self.round_budget is not None
            else max(1.0, self._total_budget // 8)
        )
        self._confident = bool(predictions) and self._prior_gap() >= 0.1

    def _prior_gap(self) -> float:
        ranked = sorted((self._priors[s] for s in self._members), reverse=True)
        return ranked[0] - ranked[1] if len(ranked) > 1 else 1.0

    def _mean(self, spec: str) -> float:
        return (self.prior_weight * self._priors[spec] + self._rewards[spec]) / (
            self.prior_weight + self._counts[spec]
        )

    def _ucb(self, spec: str) -> float:
        bonus = self.exploration * math.sqrt(
            math.log(self._round + 2) / (self._counts[spec] + 1)
        )
        return self._mean(spec) + bonus

    @property
    def cancelled(self) -> Tuple[str, ...]:
        return tuple(self._cancelled)

    def allocate(self, remaining, rng):
        if remaining <= 0 or not self._active:
            return []
        if self._round == 0:
            if self._confident:
                best = max(self._active, key=lambda s: (self._priors[s], -self._members.index(s)))
                cost = self._costs.get(best)
                size = (
                    min(remaining, max(self._round_size, self.cost_margin * cost))
                    if cost is not None
                    else remaining
                )
                return [(best, float(size))]
            share = max(1.0, min(self._round_size, remaining // len(self._active)))
            return [(spec, float(share)) for spec in self._active]

        unprobed = [spec for spec in self._active if self._counts[spec] == 0]
        if unprobed:
            chosen = unprobed[: max(1, self.width)]
        elif self.mode == "epsilon" and float(rng.random()) < self.epsilon:
            picks = rng.choice(len(self._active), size=min(self.width, len(self._active)), replace=False)
            chosen = [self._active[int(i)] for i in sorted(picks)]
        else:
            score = self._ucb if self.mode == "ucb" else self._mean
            ranked = sorted(
                self._active, key=lambda s: (-score(s), self._members.index(s))
            )
            chosen = ranked[: max(1, self.width)]
        share = max(1.0, min(self._round_size, remaining / len(chosen)))
        return [(spec, float(min(share, remaining))) for spec in chosen]

    def observe_round(self, outcomes):
        outcomes = list(outcomes)
        if not outcomes:
            return
        self._round += 1
        energies = [o.best_energy for o in outcomes]
        best, worst = min(energies), max(energies)
        spread = worst - best
        for outcome in outcomes:
            if len(outcomes) == 1:
                reward = 1.0 if outcome.improved else 0.0
            elif spread <= 1e-12:
                reward = 1.0 if outcome.improved else 0.5
            else:
                reward = (worst - outcome.best_energy) / spread
            self._counts[outcome.spec] += 1
            self._rewards[outcome.spec] += float(reward)

        if len(self._active) > 1:
            best_mean = max(self._mean(spec) for spec in self._active)
            survivors = []
            for spec in self._active:
                drop = (
                    self._counts[spec] >= self.min_observations
                    and self._ucb(spec) < best_mean - self.cancel_margin
                )
                if drop and len(self._active) - len(self._cancelled) > 1:
                    self._cancelled.append(spec)
                else:
                    survivors.append(spec)
            if survivors:
                self._active = survivors


def make_strategy(
    name: str,
    members,
    model: Optional[PortfolioModel] = None,
    round_budget: Optional[float] = None,
    width: int = 2,
    epsilon: float = 0.1,
    exploration: float = 0.5,
) -> Strategy:
    """Strategy factory for the registry-facing names.

    ``fixed`` / ``sequence`` / ``ucb`` / ``epsilon`` — the latter two are the
    two faces of :class:`ModelingStrategy`.
    """
    specs = split_member_list(members)
    if name == "fixed":
        return FixedStrategy(specs[0])
    if name == "sequence":
        return SequenceStrategy()
    if name in ("ucb", "epsilon"):
        return ModelingStrategy(
            mode=name,
            model=model,
            round_budget=round_budget,
            width=width,
            epsilon=epsilon,
            exploration=exploration,
        )
    raise ValueError(
        f"unknown portfolio strategy {name!r}; expected one of "
        f"'fixed', 'sequence', 'ucb', 'epsilon'"
    )
