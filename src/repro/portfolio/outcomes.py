"""The outcome log: what each solver achieved on each instance, durably.

An :class:`OutcomeLog` is an append-only JSONL file (or a purely in-memory
list) of :class:`OutcomeRecord` lines.  Each record pairs an instance's
*model-level* feature vector (:func:`~repro.core.features.model_feature_vector`
— the portfolio sees relaxed QUBOs, not problems) with one solver spec, the
budget it ran under, the best energy it reached and — when a best-energy
trajectory was available — the budget position at which it first reached the
target.  :class:`~repro.portfolio.strategies.ModelingStrategy` fits its
per-spec success model from these records.

Appends are atomic at the line level: each record is one ``os.write`` on an
``O_APPEND`` descriptor, so concurrent appenders (threads or processes
sharing the file) interleave whole lines, never fragments.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import model_feature_vector
from repro.portfolio.members import slice_solver, split_member_list
from repro.utils.rng import spawn_rngs

#: Format marker written into every line; bump on incompatible field changes.
RECORD_VERSION = 1


@dataclass(frozen=True)
class OutcomeRecord:
    """One (instance, solver) outcome.

    ``kind`` distinguishes the two producer paths: ``"harvest"`` records come
    from :func:`harvest_outcomes` (full-budget runs with trajectories — the
    portfolio model's training data), ``"tuning_trial"`` records are emitted
    by the experiment runner's tuning loops (aggregate statistics per trial).
    """

    instance: str
    features: Tuple[float, ...]
    solver_spec: str
    budget: Optional[float]
    best_energy: Optional[float]
    time_to_target: Optional[float] = None
    target_energy: Optional[float] = None
    num_reads: int = 1
    seed: Optional[int] = None
    relaxation_parameter: Optional[float] = None
    wall_time_s: Optional[float] = None
    probability_of_feasibility: Optional[float] = None
    best_fitness: Optional[float] = None
    kind: str = "harvest"

    def to_json(self) -> str:
        payload = asdict(self)
        payload["features"] = [float(value) for value in self.features]
        payload["version"] = RECORD_VERSION
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "OutcomeRecord":
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError(f"outcome record line is not an object: {line!r}")
        payload.pop("version", None)
        known = {f for f in cls.__dataclass_fields__}  # tolerate future fields
        payload = {key: value for key, value in payload.items() if key in known}
        payload["features"] = tuple(float(v) for v in payload.get("features", ()))
        return cls(**payload)


class OutcomeLog:
    """Append-only store of :class:`OutcomeRecord` lines.

    ``path=None`` keeps the log purely in memory; with a path, existing
    records are loaded eagerly and every append is written through with an
    atomic single-``write`` line append.
    """

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = None if path is None else str(path)
        self._lock = threading.Lock()
        self._records: List[OutcomeRecord] = []
        if self.path is not None and os.path.exists(self.path):
            self._records = list(_read_records(self.path))

    # ----------------------------------------------------------------- writing
    def append(self, record: OutcomeRecord) -> None:
        line = record.to_json() + "\n"
        with self._lock:
            if self.path is not None:
                fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                try:
                    os.write(fd, line.encode("utf-8"))
                finally:
                    os.close(fd)
            self._records.append(record)

    def extend(self, records: Iterable[OutcomeRecord]) -> None:
        for record in records:
            self.append(record)

    # ----------------------------------------------------------------- reading
    @property
    def records(self) -> Tuple[OutcomeRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[OutcomeRecord]:
        return iter(self.records)

    def instances(self) -> Tuple[str, ...]:
        """Distinct instance names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.instance, None)
        return tuple(seen)

    def for_specs(self, specs: Sequence[str]) -> "OutcomeLog":
        """In-memory sub-log keeping only records of the given solver specs."""
        wanted = set(specs)
        out = OutcomeLog()
        out.extend(r for r in self.records if r.solver_spec in wanted)
        return out

    # --------------------------------------------------------------- factories
    @classmethod
    def load(cls, path: "str | os.PathLike") -> "OutcomeLog":
        """Load a JSONL log from disk (missing file -> empty log bound to it)."""
        return cls(path)

    @classmethod
    def merge(cls, *logs: "OutcomeLog") -> "OutcomeLog":
        """In-memory concatenation of several logs, in argument order."""
        out = cls()
        for log in logs:
            out.extend(log.records)
        return out

    def train_test_split(
        self, test_fraction: float = 0.25, seed: int = 0
    ) -> Tuple["OutcomeLog", "OutcomeLog"]:
        """Deterministic split *by instance* (no leakage across the cut).

        Instances are shuffled with ``default_rng(seed)`` and the last
        ``test_fraction`` of them become the test log; all records of one
        instance land on the same side.
        """
        if not 0.0 <= test_fraction <= 1.0:
            raise ValueError("test_fraction must be in [0, 1]")
        names = sorted(self.instances())
        order = np.random.default_rng(seed).permutation(len(names))
        num_test = int(round(test_fraction * len(names)))
        test_names = {names[i] for i in order[len(names) - num_test :]}
        train, test = OutcomeLog(), OutcomeLog()
        for record in self.records:
            (test if record.instance in test_names else train).append(record)
        return train, test


def _read_records(path: str) -> Iterator[OutcomeRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield OutcomeRecord.from_json(line)
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{number}: malformed outcome record: {exc}"
                ) from exc


# ------------------------------------------------------------------ producers
def time_to_target(
    samples, target: float, budget: float, tolerance: float = 1e-9
) -> Optional[float]:
    """Budget units until a batch first reached ``target`` (``None`` = never).

    When the sample set carries a ``best_energy_trajectory`` (one entry per
    sweep/step), the crossing point is located within the run; otherwise a
    successful run is charged its full ``budget``.
    """
    tol = tolerance * max(1.0, abs(float(target)))
    best = float(np.min(samples.energies))
    if best > target + tol:
        return None
    trajectory = samples.info.get("best_energy_trajectory")
    if trajectory:
        for index, energy in enumerate(trajectory):
            if float(energy) <= target + tol:
                return float(index + 1)
    return float(budget)


def solver_spec_or_label(solver) -> str:
    """A stable identity string for a solver: its registry spec if expressible.

    Falls back to ``name:fingerprint`` for solvers the spec grammar cannot
    carry, so logging never fails on an exotic configuration.
    """
    from repro.service.registry import SolverRegistry, SpecSerializationError

    if isinstance(solver, str):
        return solver
    try:
        return SolverRegistry.default().spec_for(solver)
    except SpecSerializationError:
        return f"{solver.name}:{solver.config_fingerprint()}"


def harvest_outcomes(
    problems: Sequence,
    members,
    budget: int,
    num_reads: int = 1,
    seed: int = 0,
    relaxation_parameter: Optional[float] = None,
    targets: Optional[Mapping[str, float]] = None,
    tolerance: float = 1e-9,
    log: Optional[OutcomeLog] = None,
    service=None,
) -> OutcomeLog:
    """Run every member at the full budget on every problem and log outcomes.

    This is how a portfolio's training data is produced: each (instance,
    member) pair runs once with a seeded child stream and a trajectory-enabled
    config, and its record carries the best energy plus the time-to-target
    against ``targets[instance]`` (or, by default, the best energy any member
    reached on that instance — the self-relative target).

    ``relaxation_parameter=None`` uses each problem's ``relaxation_scale()``.
    ``service`` optionally routes the solves through a
    :class:`~repro.service.service.SolveService` (thread/process/remote fan
    out); the default runs them inline.  Either way results are seeded and
    deterministic.
    """
    from repro.service.registry import make_solver
    from repro.service.requests import SolveRequest

    specs = split_member_list(members)
    log = log if log is not None else OutcomeLog()
    streams = spawn_rngs(seed, len(problems) * len(specs))
    runs = []
    stream_index = 0
    for problem in problems:
        parameter = (
            float(problem.relaxation_scale())
            if relaxation_parameter is None
            else float(relaxation_parameter)
        )
        model = problem.build_qubo(parameter)
        features = tuple(float(v) for v in model_feature_vector(model))
        for spec in specs:
            solver = slice_solver(make_solver(spec), budget)
            child_seed = int(streams[stream_index].integers(0, 2**63 - 1))
            stream_index += 1
            if service is not None:
                request = SolveRequest(
                    model=model, solver=solver, num_reads=num_reads, seed=child_seed
                )
                samples = service.submit(request).result().samples
            else:
                samples = solver.sample(
                    model, num_reads, rng=np.random.default_rng(child_seed)
                )
            runs.append((problem, parameter, features, spec, child_seed, samples))

    best_seen: Dict[str, float] = {}
    for problem, _, _, _, _, samples in runs:
        best = float(np.min(samples.energies))
        best_seen[problem.name] = min(best_seen.get(problem.name, best), best)

    for problem, parameter, features, spec, child_seed, samples in runs:
        target = (
            float(targets[problem.name])
            if targets is not None and problem.name in targets
            else best_seen[problem.name]
        )
        log.append(
            OutcomeRecord(
                instance=problem.name,
                features=features,
                solver_spec=spec,
                budget=float(budget),
                best_energy=float(np.min(samples.energies)),
                time_to_target=time_to_target(samples, target, budget, tolerance),
                target_energy=target,
                num_reads=num_reads,
                seed=child_seed,
                relaxation_parameter=parameter,
                wall_time_s=samples.info.get("wall_time_s"),
                kind="harvest",
            )
        )
    return log
