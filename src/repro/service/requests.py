"""Request / response types of the solve service.

A :class:`SolveRequest` is everything needed to reproduce one solver call:
the QUBO (given directly, or as a problem plus relaxation parameter), the
solver (a registry spec or an instance), the batch size and an optional seed.
A :class:`SolveResult` pairs the request with the :class:`SampleSet` it
produced plus provenance (solver fingerprint, cache/batching metadata).

Both are frozen: a request can be hashed into a cache key, retried, or
shipped to a worker without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.problems.base import ConstrainedProblem
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleRecord, SampleSet
from repro.solvers.base import QUBOSolver, validate_reads


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """One solver call: model-or-problem + solver spec + reads + seed.

    Parameters
    ----------
    model:
        The QUBO to solve.  Mutually exclusive with ``problem``.
    problem:
        A constrained problem; the QUBO is built as
        ``problem.build_qubo(relaxation_parameter)``.
    relaxation_parameter:
        Required with ``problem``; the penalty weight ``A``.
    solver:
        Registry spec string (``"da"``, ``"tabu?tenure=16"``) or an existing
        :class:`QUBOSolver` instance.
    num_reads:
        Batch size of the call.
    seed:
        ``None`` draws a fresh child stream from the service; an ``int`` makes
        the request fully deterministic (and thereby cacheable): the result is
        byte-identical to ``solver.sample(model, num_reads,
        rng=np.random.default_rng(seed))``.
    label:
        Free-form tag carried through to the result (for callers correlating
        batched submissions).
    """

    solver: Union[str, QUBOSolver] = "sa"
    model: Optional[QUBOModel] = None
    problem: Optional[ConstrainedProblem] = None
    relaxation_parameter: Optional[float] = None
    num_reads: int = 1
    seed: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.model is None) == (self.problem is None):
            raise ValueError("provide exactly one of model= or problem=")
        if self.problem is not None and self.relaxation_parameter is None:
            raise ValueError("relaxation_parameter is required with problem=")
        if self.model is not None and self.relaxation_parameter is not None:
            raise ValueError("relaxation_parameter only applies with problem=")
        validate_reads(self.num_reads)
        if self.seed is not None and not isinstance(self.seed, (int, np.integer)):
            raise ValueError(f"seed must be an int or None, got {self.seed!r}")

    def model_key(self) -> str:
        """Stable identity of the model this request solves, *without materialising it*.

        Model-based requests key on the model fingerprint; problem-based
        requests key on the instance's encoding fingerprint plus the
        relaxation parameter.  The encoding (``H_B``, ``H_A``) is built once
        per problem and cached there — no relaxed ``H_B + A * H_A`` model is
        composed until a worker actually needs it, so the service can group
        and deduplicate requests lazily.
        """
        if self.model is not None:
            return self.model.fingerprint()
        # float.hex() is exact — distinct parameters can never collide into
        # one merged group the way a rounded decimal format could.
        return (
            f"{self.problem.encode().fingerprint()}"
            f"|A={float(self.relaxation_parameter).hex()}"
        )

    def resolve_model(self) -> QUBOModel:
        """The QUBO this request solves (building it from the problem if needed).

        Problem-based requests materialise through the problem's cached
        :class:`~repro.qubo.expression.RelaxedEncoding`, so concurrent requests
        at the same relaxation parameter share one composed model.
        """
        if self.model is not None:
            return self.model
        return self.problem.build_qubo(float(self.relaxation_parameter))

    def rng(self) -> Optional[np.random.Generator]:
        """The request's deterministic stream, or ``None`` when unseeded."""
        if self.seed is None:
            return None
        return np.random.default_rng(int(self.seed))


@dataclass(frozen=True, eq=False)
class SolveResult:
    """Outcome of one :class:`SolveRequest`.

    ``from_cache`` marks results served without running the solver;
    ``batched_group_size`` > 1 marks reads carved out of a merged engine call
    (the sample set's ``wall_time_s`` then covers the whole merged batch).
    """

    request: SolveRequest
    samples: SampleSet
    solver_name: str
    solver_fingerprint: str
    from_cache: bool = False
    batched_group_size: int = 1

    # --------------------------------------------------------------- shortcuts
    @property
    def best(self) -> SampleRecord:
        """Lowest-energy read of the batch."""
        return self.samples.best

    @property
    def best_energy(self) -> float:
        return float(self.samples.best.energy)

    @property
    def best_assignment(self) -> np.ndarray:
        return self.samples.best.assignment

    @property
    def energies(self) -> np.ndarray:
        return self.samples.energies

    @property
    def num_samples(self) -> int:
        return self.samples.num_samples
