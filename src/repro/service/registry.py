"""Declarative registry of QUBO solver backends with string-spec construction.

The registry is the public seam between "I want a solver" and the backend
classes: every backend registers once (canonical name, aliases, solver class,
config class) and callers construct solvers from *specs* instead of importing
config dataclasses:

>>> make_solver("sa", num_sweeps=2000)
>>> make_solver("tabu?tenure=16&num_steps=300")
>>> make_solver("da")

The spec grammar is URL-style: ``name`` or ``name?key=value&key=value`` where
``name`` is a canonical backend name or alias (case-insensitive) and values
parse as int, float, bool (``true``/``false``/``yes``/``no``), ``none``/
``null`` or fall back to strings.  Keyword arguments passed alongside a spec
override the spec's own options.

Two solvers built from the same spec share a ``config_fingerprint()`` — the
stable hash cache layers key on — so a spec round-trips: parse it twice, or
construct the config dataclass by hand, and the fingerprints agree.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Iterable, Optional, Tuple, Type

from repro.solvers.base import QUBOSolver
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


@dataclass(frozen=True)
class RegisteredBackend:
    """One solver backend known to a :class:`SolverRegistry`."""

    name: str
    solver_cls: Type[QUBOSolver]
    config_cls: Optional[type]
    aliases: Tuple[str, ...] = ()
    description: str = ""

    def option_names(self) -> Tuple[str, ...]:
        """Names of the config fields a spec may set (empty for config-less)."""
        if self.config_cls is None:
            return ()
        return tuple(f.name for f in dataclass_fields(self.config_cls))

    def create(self, config: Any = None, **options: Any) -> QUBOSolver:
        """Instantiate the backend from a ready config object or flat options."""
        if config is not None:
            if options:
                raise ValueError(
                    f"backend {self.name!r}: pass either a config object or "
                    f"keyword options, not both"
                )
            return self.solver_cls(config)
        if self.config_cls is None:
            if options:
                raise ValueError(
                    f"backend {self.name!r} takes no options, got {sorted(options)}"
                )
            return self.solver_cls()
        known = set(self.option_names())
        unknown = sorted(set(options) - known)
        if unknown:
            raise ValueError(
                f"unknown option(s) {unknown} for backend {self.name!r}; "
                f"valid options: {sorted(known)}"
            )
        return self.solver_cls(self.config_cls(**options))


class _hybridmethod:
    """Descriptor: on an instance, bind to it; on the class, bind to the
    default registry — so ``SolverRegistry.from_spec("sa")`` works without
    first fetching :meth:`SolverRegistry.default`."""

    def __init__(self, func):
        self.func = func
        self.__doc__ = func.__doc__

    def __get__(self, obj, objtype=None):
        target = obj if obj is not None else objtype.default()
        return self.func.__get__(target, type(target))


class SolverRegistry:
    """Name -> backend mapping with spec parsing and construction.

    Most code uses the process-wide default registry (every bundled backend
    pre-registered); private registries are useful for tests and plugins.
    The construction entry points (:meth:`from_spec`, :meth:`create`, ...)
    are hybrid: calling them on the *class* operates on the default registry.
    """

    _default: Optional["SolverRegistry"] = None

    def __init__(self) -> None:
        self._backends: Dict[str, RegisteredBackend] = {}
        self._by_alias: Dict[str, str] = {}

    # -------------------------------------------------------------- registration
    def register(
        self,
        name: str,
        solver_cls: Type[QUBOSolver],
        config_cls: Optional[type] = None,
        aliases: Iterable[str] = (),
        description: str = "",
    ) -> RegisteredBackend:
        """Register a backend under ``name`` (plus case-insensitive aliases)."""
        key = name.strip().lower()
        if key in self._backends:
            raise ValueError(f"backend {key!r} is already registered")
        backend = RegisteredBackend(
            name=key,
            solver_cls=solver_cls,
            config_cls=config_cls,
            aliases=tuple(a.strip().lower() for a in aliases),
            description=description,
        )
        labels = (key, *backend.aliases)
        # Validate every label before mutating, so a conflict cannot leave the
        # registry half-registered.
        for label in labels:
            existing = self._by_alias.get(label)
            if existing is not None and existing != key:
                raise ValueError(
                    f"name {label!r} already registered for backend {existing!r}"
                )
        for label in labels:
            self._by_alias[label] = key
        self._backends[key] = backend
        return backend

    @classmethod
    def default(cls) -> "SolverRegistry":
        """The process-wide registry with every bundled backend registered."""
        if cls._default is None:
            cls._default = _build_default_registry()
        return cls._default

    # ------------------------------------------------------------------- lookup
    @_hybridmethod
    def names(self) -> Tuple[str, ...]:
        """Canonical backend names, sorted."""
        return tuple(sorted(self._backends))

    @_hybridmethod
    def backends(self) -> Tuple[RegisteredBackend, ...]:
        """All registered backends, sorted by canonical name."""
        return tuple(self._backends[name] for name in sorted(self._backends))

    @_hybridmethod
    def canonical_name(self, name: str) -> str:
        """Resolve a name or alias to the canonical backend name."""
        key = name.strip().lower()
        try:
            return self._by_alias[key]
        except KeyError:
            raise ValueError(
                f"unknown solver backend {name!r}; known backends: "
                f"{', '.join(sorted(self._by_alias))}"
            ) from None

    @_hybridmethod
    def backend(self, name: str) -> RegisteredBackend:
        """The :class:`RegisteredBackend` for a name or alias."""
        return self._backends[self.canonical_name(name)]

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._by_alias

    @_hybridmethod
    def describe(self) -> str:
        """Human-readable table of backends, aliases and options."""
        lines = []
        for backend in self.backends():
            aliases = f" (aliases: {', '.join(backend.aliases)})" if backend.aliases else ""
            options = ", ".join(backend.option_names()) or "-"
            lines.append(f"{backend.name}{aliases}: {backend.description}")
            lines.append(f"    options: {options}")
        return "\n".join(lines)

    # ------------------------------------------------------------- construction
    @_hybridmethod
    def create(self, name: str, config: Any = None, **options: Any) -> QUBOSolver:
        """Construct a backend by name from a config object or flat options."""
        return self.backend(name).create(config=config, **options)

    @_hybridmethod
    def from_spec(self, spec: "str | QUBOSolver", **overrides: Any) -> QUBOSolver:
        """Construct a solver from a spec string (``"tabu?tenure=16"``).

        An existing :class:`QUBOSolver` instance passes straight through
        (no overrides allowed), which lets APIs accept "spec or solver"
        uniformly.
        """
        if isinstance(spec, QUBOSolver):
            if overrides:
                raise ValueError(
                    "options cannot be applied to an already-constructed solver"
                )
            return spec
        name, options = parse_spec(spec)
        options.update(overrides)
        return self.create(name, **options)


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name?key=value&..."`` into ``(name, {key: parsed_value})``."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"solver spec must be a non-empty string, got {spec!r}")
    name, _, query = spec.partition("?")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"solver spec {spec!r} has no backend name")
    options: Dict[str, Any] = {}
    if query:
        for item in query.split("&"):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed option {item!r} in spec {spec!r}; expected key=value"
                )
            options[key] = parse_value(raw.strip())
    return name, options


def parse_value(raw: str) -> Any:
    """Parse a spec option value: int, float, bool, none, else string."""
    lowered = raw.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _build_default_registry() -> SolverRegistry:
    registry = SolverRegistry()
    registry.register(
        "sa",
        SimulatedAnnealingSolver,
        SimulatedAnnealingConfig,
        aliases=("simulated-annealing",),
        description="blocked single-flip Metropolis simulated annealing (CPU)",
    )
    registry.register(
        "da",
        DigitalAnnealerSolver,
        DigitalAnnealerConfig,
        aliases=("digital-annealer",),
        description="Digital-Annealer-style parallel-trial annealer with dynamic offset",
    )
    registry.register(
        "tabu",
        TabuSearchSolver,
        TabuSearchConfig,
        aliases=("tabu-search",),
        description="best-improvement single-flip tabu search, batched over replicas",
    )
    registry.register(
        "qbsolv",
        QbsolvSolver,
        QbsolvConfig,
        description="qbsolv-style decomposing hybrid with tabu sub-solver",
    )
    registry.register(
        "qa",
        QuantumAnnealerSolver,
        QuantumAnnealerConfig,
        aliases=("quantum-annealer",),
        description="annealer with analog control error and quantised coefficients",
    )
    registry.register(
        "random",
        RandomSolver,
        None,
        description="uniform random sampling baseline",
    )
    return registry


def make_solver(spec: "str | QUBOSolver", **options: Any) -> QUBOSolver:
    """Construct a solver from a spec against the default registry.

    ``make_solver("sa", num_sweeps=2000)`` and
    ``make_solver("tabu?tenure=16")`` are equivalent entry points; an existing
    solver instance passes through unchanged.
    """
    return SolverRegistry.default().from_spec(spec, **options)
