"""Declarative registry of QUBO solver backends with string-spec construction.

The registry is the public seam between "I want a solver" and the backend
classes: every backend registers once (canonical name, aliases, solver class,
config class) and callers construct solvers from *specs* instead of importing
config dataclasses:

>>> make_solver("sa", num_sweeps=2000)
>>> make_solver("tabu?tenure=16&num_steps=300")
>>> make_solver("da")

The spec grammar is URL-style: ``name`` or ``name?key=value&key=value`` where
``name`` is a canonical backend name or alias (case-insensitive) and values
parse as int, float, bool (``true``/``false``/``yes``/``no``), ``none``/
``null`` or fall back to strings.  Nested config dataclasses are addressed
with dotted keys (``qbsolv?subsolver_config.num_steps=80``).  Keyword
arguments passed alongside a spec override the spec's own options.

Composite backends need richer string values: list-valued options are plain
comma-joined strings (``portfolio?members=sa,tabu``), and a *nested spec*
inside such a list URL-escapes its reserved ``?``/``&``/``=`` characters
(``portfolio?members=sa,pt%3Fnum_replicas%3D8`` carries the member
``pt?num_replicas=8``).  ``parse_value`` unquotes percent-escaped strings on
the way in and :meth:`SolverRegistry.spec_for` re-quotes them on the way out,
so composite specs round-trip like flat ones.

Two solvers built from the same spec share a ``config_fingerprint()`` — the
stable hash cache layers key on — so a spec round-trips: parse it twice, or
construct the config dataclass by hand, and the fingerprints agree.  The
inverse direction, :meth:`SolverRegistry.spec_for`, turns a live solver back
into a spec string; it is how the distributed execution backends ship solver
identity across process boundaries without pickling solver objects.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type
from urllib.parse import quote, unquote

from repro.solvers.base import QUBOSolver
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.parallel_tempering import (
    ParallelTemperingConfig,
    ParallelTemperingSolver,
)
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


class SpecSerializationError(ValueError):
    """A solver's configuration cannot be expressed as a spec string.

    Raised by :meth:`SolverRegistry.spec_for` for configs holding values the
    flat ``key=value`` grammar cannot carry (e.g. a custom temperature
    schedule object) or for solver classes no registry backend claims.
    Callers that need a graceful degradation (the process-pool execution
    backend) catch this and fall back to running the solver in-process.
    """


@dataclass(frozen=True)
class RegisteredBackend:
    """One solver backend known to a :class:`SolverRegistry`."""

    name: str
    solver_cls: Type[QUBOSolver]
    config_cls: Optional[type]
    aliases: Tuple[str, ...] = ()
    description: str = ""

    def option_names(self) -> Tuple[str, ...]:
        """Names of the config fields a spec may set (empty for config-less)."""
        if self.config_cls is None:
            return ()
        return tuple(f.name for f in dataclass_fields(self.config_cls))

    def create(self, config: Any = None, **options: Any) -> QUBOSolver:
        """Instantiate the backend from a ready config object or flat options.

        Dotted option names address fields of nested config dataclasses:
        ``subsolver_config.num_steps=80`` builds the nested dataclass from its
        own defaults plus the dotted overrides.
        """
        if config is not None:
            if options:
                raise ValueError(
                    f"backend {self.name!r}: pass either a config object or "
                    f"keyword options, not both"
                )
            return self.solver_cls(config)
        if self.config_cls is None:
            if options:
                raise ValueError(
                    f"backend {self.name!r} takes no options, got {sorted(options)}"
                )
            return self.solver_cls()
        flat, nested = _split_dotted_options(options)
        known = set(self.option_names())
        unknown = sorted((set(flat) | set(nested)) - known)
        if unknown:
            raise ValueError(
                f"unknown option(s) {unknown} for backend {self.name!r}; "
                f"valid options: {sorted(known)}"
            )
        for field_name, overrides in nested.items():
            if field_name in flat:
                raise ValueError(
                    f"option {field_name!r} for backend {self.name!r} given both "
                    f"flat and dotted"
                )
            flat[field_name] = _build_nested_config(
                self.config_cls, field_name, overrides
            )
        return self.solver_cls(self.config_cls(**flat))


class _hybridmethod:
    """Descriptor: on an instance, bind to it; on the class, bind to the
    default registry — so ``SolverRegistry.from_spec("sa")`` works without
    first fetching :meth:`SolverRegistry.default`."""

    def __init__(self, func):
        self.func = func
        self.__doc__ = func.__doc__

    def __get__(self, obj, objtype=None):
        target = obj if obj is not None else objtype.default()
        return self.func.__get__(target, type(target))


class SolverRegistry:
    """Name -> backend mapping with spec parsing and construction.

    Most code uses the process-wide default registry (every bundled backend
    pre-registered); private registries are useful for tests and plugins.
    The construction entry points (:meth:`from_spec`, :meth:`create`, ...)
    are hybrid: calling them on the *class* operates on the default registry.
    """

    _default: Optional["SolverRegistry"] = None

    def __init__(self) -> None:
        self._backends: Dict[str, RegisteredBackend] = {}
        self._by_alias: Dict[str, str] = {}

    # -------------------------------------------------------------- registration
    def register(
        self,
        name: str,
        solver_cls: Type[QUBOSolver],
        config_cls: Optional[type] = None,
        aliases: Iterable[str] = (),
        description: str = "",
    ) -> RegisteredBackend:
        """Register a backend under ``name`` (plus case-insensitive aliases)."""
        key = name.strip().lower()
        if key in self._backends:
            raise ValueError(f"backend {key!r} is already registered")
        backend = RegisteredBackend(
            name=key,
            solver_cls=solver_cls,
            config_cls=config_cls,
            aliases=tuple(a.strip().lower() for a in aliases),
            description=description,
        )
        labels = (key, *backend.aliases)
        # Validate every label before mutating, so a conflict cannot leave the
        # registry half-registered.
        for label in labels:
            existing = self._by_alias.get(label)
            if existing is not None and existing != key:
                raise ValueError(
                    f"name {label!r} already registered for backend {existing!r}"
                )
        for label in labels:
            self._by_alias[label] = key
        self._backends[key] = backend
        return backend

    @classmethod
    def default(cls) -> "SolverRegistry":
        """The process-wide registry with every bundled backend registered."""
        if cls._default is None:
            cls._default = _build_default_registry()
        return cls._default

    # ------------------------------------------------------------------- lookup
    @_hybridmethod
    def names(self) -> Tuple[str, ...]:
        """Canonical backend names, sorted."""
        return tuple(sorted(self._backends))

    @_hybridmethod
    def backends(self) -> Tuple[RegisteredBackend, ...]:
        """All registered backends, sorted by canonical name."""
        return tuple(self._backends[name] for name in sorted(self._backends))

    @_hybridmethod
    def canonical_name(self, name: str) -> str:
        """Resolve a name or alias to the canonical backend name."""
        key = name.strip().lower()
        try:
            return self._by_alias[key]
        except KeyError:
            raise ValueError(
                f"unknown solver backend {name!r}; known backends: "
                f"{', '.join(sorted(self._by_alias))}"
            ) from None

    @_hybridmethod
    def backend(self, name: str) -> RegisteredBackend:
        """The :class:`RegisteredBackend` for a name or alias."""
        return self._backends[self.canonical_name(name)]

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._by_alias

    @_hybridmethod
    def describe(self) -> str:
        """Human-readable table of backends, aliases and options."""
        lines = []
        for backend in self.backends():
            aliases = f" (aliases: {', '.join(backend.aliases)})" if backend.aliases else ""
            options = ", ".join(backend.option_names()) or "-"
            lines.append(f"{backend.name}{aliases}: {backend.description}")
            lines.append(f"    options: {options}")
        return "\n".join(lines)

    # ------------------------------------------------------------- construction
    @_hybridmethod
    def create(self, name: str, config: Any = None, **options: Any) -> QUBOSolver:
        """Construct a backend by name from a config object or flat options."""
        return self.backend(name).create(config=config, **options)

    @_hybridmethod
    def from_spec(self, spec: "str | QUBOSolver", **overrides: Any) -> QUBOSolver:
        """Construct a solver from a spec string (``"tabu?tenure=16"``).

        An existing :class:`QUBOSolver` instance passes straight through
        (no overrides allowed), which lets APIs accept "spec or solver"
        uniformly.
        """
        if isinstance(spec, QUBOSolver):
            if overrides:
                raise ValueError(
                    "options cannot be applied to an already-constructed solver"
                )
            return spec
        name, options = parse_spec(spec)
        options.update(overrides)
        return self.create(name, **options)

    @_hybridmethod
    def spec_for(self, solver: "str | QUBOSolver") -> str:
        """The spec string reconstructing ``solver`` (inverse of :meth:`from_spec`).

        Only non-default config fields are emitted, nested config dataclasses
        become dotted options, and the result is *verified*: the spec is parsed
        back and must reproduce the solver's ``config_fingerprint()`` exactly,
        so a spec shipped to another process resolves to a byte-identical
        solver.  Raises :class:`SpecSerializationError` for solvers the flat
        grammar cannot express (unregistered classes, non-scalar config values
        such as custom schedule objects).
        """
        if isinstance(solver, str):
            # Validate and normalise a caller-supplied spec.
            self.from_spec(solver)
            return solver
        backend = None
        for candidate in self._backends.values():
            if candidate.solver_cls is type(solver):
                backend = candidate
                break
        if backend is None:
            raise SpecSerializationError(
                f"no registered backend constructs {type(solver).__qualname__}; "
                f"register it (or pass a spec string) to run it on a "
                f"distributed execution backend"
            )
        if backend.config_cls is None:
            spec = backend.name
        else:
            config = getattr(solver, "config", None)
            if not (dataclasses.is_dataclass(config) and not isinstance(config, type)):
                raise SpecSerializationError(
                    f"backend {backend.name!r}: solver has no config dataclass to serialise"
                )
            pairs = _emit_config_options(backend.config_cls, config)
            query = "&".join(f"{key}={raw}" for key, raw in pairs)
            spec = f"{backend.name}?{query}" if query else backend.name
        try:
            rebuilt = self.from_spec(spec)
        except SpecSerializationError:
            raise
        except (ValueError, TypeError) as exc:
            # E.g. an emitted dotted option addressing a field whose default
            # is not a dataclass (Optional nested configs).  Callers rely on
            # SpecSerializationError as the "fall back in-process" signal, so
            # every not-expressible shape must surface as it.
            raise SpecSerializationError(
                f"spec {spec!r} emitted for {type(solver).__qualname__} does "
                f"not parse back: {exc}"
            ) from exc
        if rebuilt.config_fingerprint() != solver.config_fingerprint():
            raise SpecSerializationError(
                f"spec {spec!r} does not round-trip the configuration of "
                f"{type(solver).__qualname__} (fingerprint mismatch); the config "
                f"holds state the spec grammar cannot express"
            )
        return spec


_MISSING = object()


def _field_default(field: "dataclasses.Field") -> Any:
    """The default value of a dataclass field (``_MISSING`` when required)."""
    if field.default is not dataclasses.MISSING:
        return field.default
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return field.default_factory()  # type: ignore[misc]
    return _MISSING


def _split_dotted_options(
    options: Dict[str, Any]
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Separate ``{"a": 1, "b.c": 2}`` into flat and one-level nested groups."""
    flat: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for key, value in options.items():
        if "." not in key:
            flat[key] = value
            continue
        head, _, rest = key.partition(".")
        if not head or not rest or "." in rest:
            raise ValueError(
                f"malformed dotted option {key!r}; one level of nesting "
                f"(field.subfield) is supported"
            )
        nested.setdefault(head, {})[rest] = value
    return flat, nested


def _build_nested_config(config_cls: type, field_name: str, overrides: Dict[str, Any]) -> Any:
    """Construct the nested config dataclass a dotted option group addresses.

    The nested class is taken from the field's default (or default factory)
    value, so only fields that default to a config dataclass accept dotted
    options; the instance is built from the nested class's own defaults plus
    the overrides — matching how :func:`_emit_config_options` emits them.
    """
    field = next(
        (f for f in dataclass_fields(config_cls) if f.name == field_name), None
    )
    if field is None:  # pragma: no cover - caller validated the name
        raise ValueError(f"unknown option {field_name!r}")
    default = _field_default(field)
    if not (dataclasses.is_dataclass(default) and not isinstance(default, type)):
        raise ValueError(
            f"option {field_name!r} does not default to a config dataclass; "
            f"dotted options cannot address it"
        )
    nested_cls = type(default)
    valid = {f.name for f in dataclass_fields(nested_cls)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ValueError(
            f"unknown nested option(s) {unknown} for {field_name!r}; "
            f"valid options: {sorted(valid)}"
        )
    return nested_cls(**overrides)


def _format_option_value(key: str, value: Any) -> str:
    """Render one option value into the spec grammar, verifying it parses back."""
    import numpy as _np

    if isinstance(value, (_np.integer, _np.floating, _np.bool_)):
        value = value.item()
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        raw = repr(value)
    elif isinstance(value, str):
        # Strings get a second chance through the URL-escape layer: nested
        # specs inside list-valued options (portfolio members) carry the
        # reserved ?/&/= characters, which percent-encoding smuggles through
        # the flat grammar.  Whichever form is tried must parse back exactly.
        for candidate in (value, quote(value, safe=",")):
            if not any(ch in candidate for ch in "?&=") and parse_value(candidate) == value:
                return candidate
        raise SpecSerializationError(
            f"option {key!r} value {value!r} does not survive the spec grammar"
        )
    else:
        raise SpecSerializationError(
            f"option {key!r} holds a {type(value).__name__} value; only "
            f"scalars (and one level of nested config dataclasses) are "
            f"spec-serialisable"
        )
    if any(ch in raw for ch in "?&=") or parse_value(raw) != value:
        raise SpecSerializationError(
            f"option {key!r} value {value!r} does not survive the spec grammar"
        )
    return raw


def _emit_config_options(config_cls: type, config: Any) -> List[Tuple[str, str]]:
    """``(key, raw)`` pairs reconstructing ``config`` from its class defaults.

    Fields equal to their default are omitted (reconstruction falls back to
    the default / default factory).  A nested dataclass value that differs
    from its field default is emitted as dotted options covering every nested
    field that differs from the *nested class's* own defaults — exactly what
    :func:`_build_nested_config` re-applies on top of those defaults.
    """
    pairs: List[Tuple[str, str]] = []
    for field in dataclass_fields(config_cls):
        value = getattr(config, field.name)
        default = _field_default(field)
        if default is not _MISSING and value == default:
            continue
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            nested_cls = type(value)
            nested_pairs: List[Tuple[str, str]] = []
            for sub in dataclass_fields(nested_cls):
                sub_value = getattr(value, sub.name)
                sub_default = _field_default(sub)
                if sub_default is not _MISSING and sub_value == sub_default:
                    continue
                if dataclasses.is_dataclass(sub_value) and not isinstance(sub_value, type):
                    raise SpecSerializationError(
                        f"option {field.name}.{sub.name} nests a second config "
                        f"dataclass; only one level of nesting is spec-serialisable"
                    )
                key = f"{field.name}.{sub.name}"
                nested_pairs.append((key, _format_option_value(key, sub_value)))
            if not nested_pairs:
                # The value differs from the field's default-*factory* result
                # while matching the nested class's own defaults (e.g. a plain
                # TabuSearchConfig() where the factory customises steps).  An
                # empty group would rebuild via the factory, so emit one field
                # explicitly to force construction from the class defaults.
                subs = dataclass_fields(nested_cls)
                if not subs:
                    raise SpecSerializationError(
                        f"option {field.name!r} holds a field-less dataclass "
                        f"differing from its default; not spec-serialisable"
                    )
                key = f"{field.name}.{subs[0].name}"
                nested_pairs.append(
                    (key, _format_option_value(key, getattr(value, subs[0].name)))
                )
            pairs.extend(nested_pairs)
        else:
            pairs.append((field.name, _format_option_value(field.name, value)))
    return pairs


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name?key=value&..."`` into ``(name, {key: parsed_value})``."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"solver spec must be a non-empty string, got {spec!r}")
    name, _, query = spec.partition("?")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"solver spec {spec!r} has no backend name")
    options: Dict[str, Any] = {}
    if query:
        for item in query.split("&"):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed option {item!r} in spec {spec!r}; expected key=value"
                )
            options[key] = parse_value(raw.strip())
    return name, options


def parse_value(raw: str) -> Any:
    """Parse a spec option value: int, float, bool, none, else string."""
    lowered = raw.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if "%" in raw:
        return unquote(raw)
    return raw


def _build_default_registry() -> SolverRegistry:
    registry = SolverRegistry()
    registry.register(
        "sa",
        SimulatedAnnealingSolver,
        SimulatedAnnealingConfig,
        aliases=("simulated-annealing",),
        description="blocked single-flip Metropolis simulated annealing (CPU)",
    )
    registry.register(
        "da",
        DigitalAnnealerSolver,
        DigitalAnnealerConfig,
        aliases=("digital-annealer",),
        description="Digital-Annealer-style parallel-trial annealer with dynamic offset",
    )
    registry.register(
        "pt",
        ParallelTemperingSolver,
        ParallelTemperingConfig,
        aliases=("parallel-tempering", "replica-exchange"),
        description="replica-exchange Monte Carlo over a geometric temperature ladder",
    )
    registry.register(
        "tabu",
        TabuSearchSolver,
        TabuSearchConfig,
        aliases=("tabu-search",),
        description="best-improvement single-flip tabu search, batched over replicas",
    )
    registry.register(
        "qbsolv",
        QbsolvSolver,
        QbsolvConfig,
        description="qbsolv-style decomposing hybrid with tabu sub-solver",
    )
    registry.register(
        "qa",
        QuantumAnnealerSolver,
        QuantumAnnealerConfig,
        aliases=("quantum-annealer",),
        description="annealer with analog control error and quantised coefficients",
    )
    registry.register(
        "random",
        RandomSolver,
        None,
        description="uniform random sampling baseline",
    )
    # Imported here, not at module top: the portfolio package builds on the
    # service layer, which imports this module.
    from repro.portfolio.solver import PortfolioConfig, PortfolioSolver

    registry.register(
        "portfolio",
        PortfolioSolver,
        PortfolioConfig,
        aliases=("algorithm-portfolio",),
        description="budget-aware per-instance scheduling over member solver specs",
    )
    return registry


def make_solver(spec: "str | QUBOSolver", **options: Any) -> QUBOSolver:
    """Construct a solver from a spec against the default registry.

    ``make_solver("sa", num_sweeps=2000)`` and
    ``make_solver("tabu?tenure=16")`` are equivalent entry points; an existing
    solver instance passes through unchanged.
    """
    return SolverRegistry.default().from_spec(spec, **options)
