"""The solve service: batching, deduplicating, thread-pooled QUBO solving.

This is the production entry point the paper's setting implies — many
instances hitting the same solver backends under different relaxation
parameters.  The service accepts :class:`~repro.service.requests.SolveRequest`
objects and

* executes them across a configurable thread pool (:meth:`SolveService.submit`
  returns a future; :meth:`SolveService.map_requests` resolves a whole batch),
* groups same-(model, solver-fingerprint) unseeded requests into a *single
  batched engine call* — the replica-vectorised solvers make one call with
  ``sum(num_reads)`` reads far cheaper than separate calls — and deals the
  merged reads back to the requests through an unbiased random permutation,
* dedupes *seeded* requests through :class:`SolverCallCache`: identical
  requests run the engine exactly once, and
* derives deterministic RNG streams: a seeded request is byte-identical to
  ``solver.sample(model, num_reads, rng=np.random.default_rng(seed))``
  regardless of pool width or submission order; unseeded requests draw child
  streams from the service's root generator.

The aggregate-statistics path used by the tuners
(:meth:`SolveService.evaluate`) and the raw passthrough
(:meth:`SolveService.sample`) run on the same pool, so every solver call in
the library flows through one seam.

Where the engine call itself executes is delegated to an
:class:`~repro.service.distributed.backends.ExecutionBackend`: the default
``"thread"`` backend runs it on the service's pool threads (byte-identical to
the historical behaviour), while ``"process"`` ships it to a pool of worker
processes over the wire format — the Python-level portions of the annealing
loops then scale across cores instead of serialising on the GIL.  Select a
backend per service (``SolveService(backend="process")``) or globally via the
``QROSS_EXECUTION_BACKEND`` environment variable.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.dataset import summarise_samples
from repro.problems.base import ConstrainedProblem
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.service.admission import AdmissionGate, max_pending_from_env
from repro.service.cache import CachedEvaluation, SolverCallCache
from repro.service.distributed.backends import BackendLike, resolve_backend
from repro.service.executor import default_worker_count
from repro.service.registry import SolverRegistry
from repro.service.requests import SolveRequest, SolveResult
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng

SolverLike = Union[str, QUBOSolver]

#: Sentinel: the ``max_pending`` bound was not given, read ``QROSS_MAX_PENDING``.
_MAX_PENDING_FROM_ENV = object()


class SolveService:
    """Thread-pooled executor of :class:`SolveRequest` batches.

    Parameters
    ----------
    max_workers:
        Width of the request pool (default: modest, CPU-count-capped).
    cache:
        :class:`SolverCallCache` used to dedupe seeded requests and, via
        :meth:`evaluate`, aggregate statistics.  A private cache is created
        when omitted.
    registry:
        Solver registry resolving spec strings (default: the global one).
    seed:
        Root seed for the child streams handed to *unseeded* requests.
    backend:
        Where engine calls execute: an
        :class:`~repro.service.distributed.backends.ExecutionBackend`
        instance, a spec string (``"thread"``, ``"process"``,
        ``"process?max_workers=4"``), or ``None`` to read
        ``QROSS_EXECUTION_BACKEND`` (default ``"thread"``).  Backends given
        as spec strings are shared process-wide, so many short-lived services
        reuse one warm worker pool.
    max_pending:
        Admission bound: how many requests may be in flight (queued or
        running) at once.  Beyond the bound, submissions raise the typed
        :class:`~repro.service.admission.ServiceOverloaded` instead of
        queueing unboundedly — a traffic spike degrades into explicit sheds
        the caller can retry, not into unbounded memory and latency.  When
        omitted the ``QROSS_MAX_PENDING`` environment variable applies;
        ``None`` disables the bound explicitly (the historical behaviour).
        Traffic and shed counters are readable via :meth:`stats`.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[SolverCallCache] = None,
        registry: Optional[SolverRegistry] = None,
        seed: RngLike = None,
        backend: BackendLike = None,
        max_pending=_MAX_PENDING_FROM_ENV,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if max_pending is _MAX_PENDING_FROM_ENV:
            max_pending = max_pending_from_env()
        self.backend, self._owns_backend = resolve_backend(backend)
        if max_workers is None:
            # An out-of-process backend is fed by this service's threads, so
            # the thread pool must be at least as wide as the worker pool or
            # workers would idle behind the dispatch bottleneck.
            max_workers = max(
                default_worker_count(), getattr(self.backend, "max_workers", 0)
            )
        self.max_workers = max_workers
        self.cache = cache if cache is not None else SolverCallCache()
        self.registry = registry or SolverRegistry.default()
        self._root_rng = ensure_rng(seed)
        self._lock = threading.Lock()
        # Striped locks for seeded-request dedup: a fixed array keyed by hash
        # gives the same exactly-once guarantee as one lock per key without
        # growing with the number of distinct requests (collisions merely
        # serialise two unrelated keys occasionally).
        self._key_locks = tuple(threading.Lock() for _ in range(64))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._gate = AdmissionGate(max_pending=max_pending, name="service")
        self._served = 0
        self._failed = 0
        # Exact per-service outcome counts stay above; the registry aggregates
        # the same events across every service instance in the process.
        self._served_metric = obs.counter(
            "qross_service_tasks_total",
            labels={"outcome": "served"},
            help="Settled service tasks by outcome",
        )
        self._failed_metric = obs.counter(
            "qross_service_tasks_total", labels={"outcome": "failed"}
        )
        self._latency = {
            path: obs.histogram(
                "qross_service_request_seconds",
                labels={"path": path},
                help="Service request latency by execution path",
            )
            for path in ("seeded", "unseeded", "merged")
        }

    # ---------------------------------------------------------------- plumbing
    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("SolveService is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="qross-service"
                )
            return self._executor

    def close(self) -> None:
        """Shut the request pool down; further submissions raise.

        Shared execution backends (resolved from spec strings) are left
        running for other services; only a backend this service exclusively
        owns is closed with it.
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def resolve_solver(self, solver: SolverLike) -> QUBOSolver:
        """Spec string -> solver instance (instances pass through)."""
        return self.registry.from_spec(solver)

    def _spawn_seed(self) -> int:
        """Thread-safe child seed for an unseeded request.

        A concrete integer (not a live generator) is what crosses the backend
        boundary: the executing side — this process or a pool worker — runs
        ``default_rng(seed)``, so results do not depend on where the engine
        call lands.
        """
        with self._lock:
            return int(self._root_rng.integers(0, 2**63 - 1))

    def _spawn_rng(self) -> np.random.Generator:
        """Thread-safe child stream for an unseeded request."""
        return np.random.default_rng(self._spawn_seed())

    def _key_lock(self, key: str) -> threading.Lock:
        return self._key_locks[hash(key) % len(self._key_locks)]

    def _admit_submit(self, fn, *args) -> "Future":
        """Admission-gated pool submission: every request path funnels here.

        Acquiring the gate may raise
        :class:`~repro.service.admission.ServiceOverloaded`; an admitted task
        releases its slot (and is counted served/failed) when its future
        settles, whatever thread resolves it.

        When tracing is enabled, the submitting thread's trace context is
        carried onto the pool thread, so spans opened inside the task nest
        under the caller's span instead of starting orphan traces.
        """
        self._gate.acquire()
        if obs.tracing_enabled():
            ctx = obs.current_context()
            if ctx is not None:
                inner = fn

                def fn(*call_args, _inner=inner, _ctx=ctx):
                    with obs.use_context(_ctx):
                        return _inner(*call_args)

        try:
            future = self._pool().submit(fn, *args)
        except BaseException:
            self._gate.release()
            raise
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, future: "Future") -> None:
        try:
            failed = future.cancelled() or future.exception() is not None
            with self._lock:
                if failed:
                    self._failed += 1
                else:
                    self._served += 1
            (self._failed_metric if failed else self._served_metric).inc()
        finally:
            self._gate.release()

    def stats(self) -> dict:
        """Traffic counters: admission, outcomes and the backend's own stats.

        Returns the :class:`AdmissionGate` snapshot (``max_pending`` /
        ``admitted`` / ``pending`` / ``peak_pending`` / ``shed``) plus
        ``served`` / ``failed`` task outcomes, a ``retried`` total (transport
        and overload retries, when the backend performs any) and the
        backend's counter snapshot under ``"backend"``.  Keys follow the
        unified :data:`repro.obs.STATS_SCHEMA`; the historical bare names
        remain as aliases for one release.
        """
        data: dict = self._gate.stats()
        with self._lock:
            data["served"] = self._served
            data["failed"] = self._failed
        backend_stats = getattr(self.backend, "stats", None)
        backend = (
            backend_stats() if callable(backend_stats) else {"name": self.backend.name}
        )
        data["backend"] = backend
        data["retried"] = int(backend.get("transport_retries", 0)) + int(
            backend.get("overload_retries", 0)
        )
        data["served_total"] = data["served"]
        data["failed_total"] = data["failed"]
        data["retried_total"] = data["retried"]
        return data

    # ------------------------------------------------------------- single shot
    def submit(self, request: SolveRequest) -> "Future[SolveResult]":
        """Schedule one request; returns a future resolving to its result.

        The request's QUBO is *not* materialised here: problem-based requests
        carry their ``(encoding, A)`` identity and the relaxed model is
        composed lazily by the pool worker (once per parameter, through the
        problem's encoding cache).
        """
        solver = self.resolve_solver(request.solver)
        return self._submit_request(request, solver)

    def _submit_request(
        self, request: SolveRequest, solver: QUBOSolver
    ) -> "Future[SolveResult]":
        if request.seed is not None:
            return self._admit_submit(self._run_seeded, request, solver)
        seed = self._spawn_seed()
        return self._admit_submit(self._run_unseeded, request, solver, seed)

    def _run_seeded(self, request: SolveRequest, solver: QUBOSolver) -> SolveResult:
        started = time.perf_counter()
        with obs.span(
            "service.solve",
            path="seeded",
            solver=solver.name,
            num_reads=int(request.num_reads),
            seed=int(request.seed),
        ) as sp:
            model = request.resolve_model()
            key = SolverCallCache.sample_key(model, solver, request.num_reads, int(request.seed))
            # Per-key lock: concurrent duplicates wait for the first execution
            # and are then served from the cache — the engine runs exactly once.
            with self._key_lock(key):
                samples = self.cache.lookup_samples(key)
                if samples is not None:
                    sp.set(cache="hit")
                    result = self._result(request, samples, solver, from_cache=True)
                else:
                    sp.set(cache="miss")
                    samples = self.backend.run(model, solver, request.num_reads, int(request.seed))
                    self.cache.store_samples(key, samples)
                    result = self._result(request, samples, solver)
        self._latency["seeded"].observe(time.perf_counter() - started)
        return result

    def _run_unseeded(
        self,
        request: SolveRequest,
        solver: QUBOSolver,
        seed: int,
    ) -> SolveResult:
        started = time.perf_counter()
        with obs.span(
            "service.solve", path="unseeded", solver=solver.name, num_reads=int(request.num_reads)
        ):
            samples = self.backend.run(request.resolve_model(), solver, request.num_reads, seed)
            result = self._result(request, samples, solver)
        self._latency["unseeded"].observe(time.perf_counter() - started)
        return result

    @staticmethod
    def _result(
        request: SolveRequest,
        samples: SampleSet,
        solver: QUBOSolver,
        from_cache: bool = False,
        batched_group_size: int = 1,
    ) -> SolveResult:
        return SolveResult(
            request=request,
            samples=samples,
            solver_name=solver.name,
            solver_fingerprint=solver.config_fingerprint(),
            from_cache=from_cache,
            batched_group_size=batched_group_size,
        )

    # ------------------------------------------------------------------ batches
    def map_requests(self, requests: Iterable[SolveRequest]) -> List[SolveResult]:
        """Execute a batch of requests, preserving input order in the results.

        Requests are grouped by ``(model key, solver fingerprint)`` — the
        model key (:meth:`SolveRequest.model_key`) identifies problem-based
        requests by their encoding fingerprint and relaxation parameter, so
        grouping never materialises a relaxed QUBO.  Within a group, unseeded
        requests are merged into one engine call with the summed read count
        (the model is composed once, inside the worker); seeded requests keep
        their own deterministic streams (and cache dedup) and run individually.
        """
        requests = list(requests)
        resolved: List[Tuple[SolveRequest, QUBOSolver]] = []
        groups: Dict[Tuple[str, str], List[int]] = defaultdict(list)
        for index, request in enumerate(requests):
            solver = self.resolve_solver(request.solver)
            resolved.append((request, solver))
            groups[(request.model_key(), f"{solver.name}:{solver.config_fingerprint()}")].append(index)

        futures: Dict[int, "Future"] = {}
        merged: List[Tuple[List[int], "Future[List[SolveResult]]"]] = []
        for indices in groups.values():
            unseeded = [i for i in indices if requests[i].seed is None]
            for i in indices:
                if requests[i].seed is not None:
                    request, solver = resolved[i]
                    futures[i] = self._submit_request(request, solver)
            if len(unseeded) == 1:
                request, solver = resolved[unseeded[0]]
                futures[unseeded[0]] = self._submit_request(request, solver)
            elif unseeded:
                _, solver = resolved[unseeded[0]]
                entries = [resolved[i][0] for i in unseeded]
                rng = self._spawn_rng()
                merged.append(
                    (unseeded, self._admit_submit(self._run_merged, entries, solver, rng))
                )

        results: List[Optional[SolveResult]] = [None] * len(requests)
        for index, future in futures.items():
            results[index] = future.result()
        for indices, future in merged:
            for index, result in zip(indices, future.result()):
                results[index] = result
        return results  # type: ignore[return-value]

    def _run_merged(
        self,
        entries: Sequence[SolveRequest],
        solver: QUBOSolver,
        rng: np.random.Generator,
    ) -> List[SolveResult]:
        """One engine call for a group of unseeded same-(model, solver) requests.

        The model is materialised here, once for the whole group.  The merged
        sample set is dealt back through a random permutation, so every
        request receives an exchangeable (unbiased) subset of the reads rather
        than a slice of the energy-sorted batch.

        An in-process backend consumes ``rng`` directly (byte-identical to the
        historical path: the engine advances the stream, then the permutation
        draws from it).  An out-of-process backend cannot return a stream's
        state, so the engine gets a child seed derived from ``rng`` instead —
        merged groups are unseeded by construction, so no determinism contract
        is affected.
        """
        started = time.perf_counter()
        model = entries[0].resolve_model()
        total = sum(request.num_reads for request in entries)
        with obs.span(
            "service.solve",
            path="merged",
            solver=solver.name,
            num_reads=total,
            group_size=len(entries),
        ):
            if self.backend.in_process:
                samples = self.backend.run_with_rng(model, solver, total, rng)
            else:
                samples = self.backend.run(model, solver, total, int(rng.integers(0, 2**63 - 1)))
        self._latency["merged"].observe(time.perf_counter() - started)
        permutation = rng.permutation(total)
        results: List[SolveResult] = []
        offset = 0
        for request in entries:
            take = permutation[offset : offset + request.num_reads]
            offset += request.num_reads
            info = dict(samples.info)
            info["batched_group_size"] = len(entries)
            info["batched_total_reads"] = total
            subset = SampleSet(
                samples.assignments[take],
                samples.energies[take],
                samples.num_occurrences[take],
                solver_name=samples.solver_name,
                info=info,
            )
            results.append(
                self._result(request, subset, solver, batched_group_size=len(entries))
            )
        return results

    # ------------------------------------------------------------ conveniences
    def solve(
        self,
        problem_or_model: Union[QUBOModel, ConstrainedProblem, None] = None,
        solver: SolverLike = "sa",
        num_reads: int = 1,
        relaxation_parameter: Optional[float] = None,
        seed: Optional[int] = None,
        label: str = "",
        model: Optional[QUBOModel] = None,
        problem: Optional[ConstrainedProblem] = None,
        **solver_options,
    ) -> SolveResult:
        """One-call solve: build the request, run it, return the result.

        The target may be passed positionally (a model or a problem) or by
        keyword: ``solve(problem=..., relaxation_parameter=...)`` /
        ``solve(model=...)``.  Problem-based calls materialise the relaxed
        QUBO lazily on the worker, through the problem's cached encoding.
        """
        if problem_or_model is not None:
            if model is not None or problem is not None:
                raise ValueError("pass the target either positionally or by keyword, not both")
            if isinstance(problem_or_model, QUBOModel):
                model = problem_or_model
            else:
                problem = problem_or_model
        if (model is None) == (problem is None):
            raise ValueError("provide exactly one of model= or problem=")
        resolved = self.registry.from_spec(solver, **solver_options)
        if model is not None:
            if relaxation_parameter is not None:
                raise ValueError(
                    "relaxation_parameter only applies when solving a problem; "
                    "a QUBOModel is already built"
                )
            request = SolveRequest(
                solver=resolved, model=model, num_reads=num_reads,
                seed=seed, label=label,
            )
        else:
            request = SolveRequest(
                solver=resolved,
                problem=problem,
                relaxation_parameter=relaxation_parameter,
                num_reads=num_reads,
                seed=seed,
                label=label,
            )
        return self.submit(request).result()

    def sample(
        self,
        model: QUBOModel,
        solver: SolverLike,
        num_reads: int = 1,
        rng: RngLike = None,
    ) -> SampleSet:
        """Raw passthrough: run one solver call on the pool with the caller's RNG.

        Unlike :meth:`submit` this accepts a live generator, which lets legacy
        sequential pipelines keep their exact seeded behaviour while still
        routing every engine call through the service.  On an in-process
        backend the engine consumes the caller's stream directly —
        byte-identical to a direct ``solver.sample`` call.  On an
        out-of-process backend a live stream's state cannot cross the
        boundary, so one child seed is drawn from ``rng`` (advancing it by
        exactly one ``integers`` draw) and the call routes through the
        configured backend like every other engine call — previously this
        path silently bypassed the backend and ran on a service thread.
        """
        resolved = self.resolve_solver(solver)
        rng = ensure_rng(rng)
        if self.backend.in_process:
            return self._admit_submit(
                self.backend.run_with_rng, model, resolved, num_reads, rng
            ).result()
        seed = int(rng.integers(0, 2**63 - 1))
        return self._admit_submit(
            self.backend.run, model, resolved, num_reads, seed
        ).result()

    def evaluate(
        self,
        problem: ConstrainedProblem,
        solver: SolverLike,
        parameter: float,
        num_reads: int,
        rng: RngLike = None,
        cache: Optional[SolverCallCache] = None,
    ) -> CachedEvaluation:
        """Aggregate-statistics evaluation used by the tuning loops.

        On an in-process backend this is byte-compatible with the legacy
        ``SolverCallCache.evaluate`` path: the same cache-key discipline, the
        same RNG consumption (a cache hit does not advance the stream), the
        same statistics — just executed on the service pool.  On an
        out-of-process backend the engine call runs in a worker with a child
        seed drawn from ``rng`` (one draw), the relaxed model is composed on a
        service thread and the statistics are computed here against the exact
        problem; results are still fully deterministic for a seeded ``rng``,
        but follow a different (per-backend documented) stream than the thread
        path — live generator state cannot cross a process boundary.

        ``cache=None`` uses a throwaway cache (no cross-call memory), matching
        the old behaviour of a fresh cache per tuning run.
        """
        resolved = self.resolve_solver(solver)
        cache = cache if cache is not None else SolverCallCache()
        key = cache.evaluation_key(problem, resolved, parameter, num_reads)
        entry = cache.lookup(key)
        if entry is not None:
            return entry
        rng = ensure_rng(rng)
        if self.backend.in_process:
            # Same decomposition as the legacy evaluate_parameter (build,
            # sample, summarise) with the engine call routed through the
            # backend — byte-identical on the thread backend, and a custom
            # in-process backend (e.g. GPU) sees the tuning traffic too.
            pf, energy_mean, energy_std, best_fitness = self._admit_submit(
                self._evaluate_with_rng, problem, resolved, parameter, num_reads, rng
            ).result()
        else:
            seed = int(rng.integers(0, 2**63 - 1))
            pf, energy_mean, energy_std, best_fitness = self._admit_submit(
                self._evaluate_on_backend, problem, resolved, parameter, num_reads, seed
            ).result()
        entry = CachedEvaluation(
            probability_of_feasibility=pf,
            energy_mean=energy_mean,
            energy_std=energy_std,
            best_fitness=best_fitness,
        )
        cache.store(key, entry)
        return entry

    def _evaluate_with_rng(
        self,
        problem: ConstrainedProblem,
        solver: QUBOSolver,
        parameter: float,
        num_reads: int,
        rng: np.random.Generator,
    ) -> Tuple[float, float, float, Optional[float]]:
        """One tuning evaluation on an in-process backend (live caller stream)."""
        model = problem.build_qubo(parameter)
        samples = self.backend.run_with_rng(model, solver, num_reads, rng)
        return summarise_samples(problem, samples)

    def _evaluate_on_backend(
        self,
        problem: ConstrainedProblem,
        solver: QUBOSolver,
        parameter: float,
        num_reads: int,
        seed: int,
    ) -> Tuple[float, float, float, Optional[float]]:
        """One tuning evaluation with the engine call on the execution backend."""
        model = problem.build_qubo(parameter)
        samples = self.backend.run(model, solver, num_reads, seed)
        return summarise_samples(problem, samples)


_default_service: Optional[SolveService] = None
_default_service_lock = threading.Lock()


def default_service() -> SolveService:
    """The process-wide service used by :func:`solve` and the experiment loops."""
    global _default_service
    with _default_service_lock:
        if _default_service is None:
            _default_service = SolveService()
        return _default_service


def solve(
    problem_or_model: Union[QUBOModel, ConstrainedProblem, None] = None,
    solver: SolverLike = "sa",
    num_reads: int = 1,
    relaxation_parameter: Optional[float] = None,
    seed: Optional[int] = None,
    label: str = "",
    model: Optional[QUBOModel] = None,
    problem: Optional[ConstrainedProblem] = None,
    **solver_options,
) -> SolveResult:
    """Solve a QUBO (or a problem at a relaxation parameter) in one call.

    >>> result = solve(problem=problem, solver="da", num_reads=64,
    ...                relaxation_parameter=12.5, seed=0)
    >>> result.best_energy

    The target may be positional or keyword (``model=`` / ``problem=``).
    Problem-based calls never densify a sparse encoding and materialise the
    relaxed QUBO lazily on a service worker.  Solver options pass through to
    the registry: ``solve(model, solver="sa", num_sweeps=2000)``.  Runs on the
    shared default :class:`SolveService` (seeded duplicates are served from
    its cache — they are deterministic, so the cached result is exact).
    """
    return default_service().solve(
        problem_or_model,
        solver=solver,
        num_reads=num_reads,
        relaxation_parameter=relaxation_parameter,
        seed=seed,
        label=label,
        model=model,
        problem=problem,
        **solver_options,
    )
