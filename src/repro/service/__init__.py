"""Public solve-service API: solver registry, request/response types, batching executor.

The canonical way to run solves:

>>> import repro
>>> result = repro.solve(problem, solver="da", num_reads=64,
...                      relaxation_parameter=12.5, seed=0)

or, for batched / asynchronous workloads:

>>> from repro.service import SolveRequest, SolveService
>>> with SolveService(max_workers=4) as service:
...     results = service.map_requests([
...         SolveRequest(model=m, solver="tabu?tenure=16", num_reads=32)
...         for m in models
...     ])
"""

from repro.service.admission import (
    MAX_PENDING_ENV,
    AdmissionGate,
    ServiceOverloaded,
)
from repro.service.cache import CachedEvaluation, SolverCallCache
from repro.service.distributed import (
    EXECUTION_BACKEND_ENV,
    ExecutionBackend,
    ProcessPoolBackend,
    ShardedResultCache,
    ThreadExecutionBackend,
    resolve_backend,
    shared_backend,
)
from repro.service.executor import (
    read_executor,
    read_worker_count,
    shutdown_read_executor,
)
from repro.service.registry import (
    RegisteredBackend,
    SolverRegistry,
    SpecSerializationError,
    make_solver,
    parse_spec,
)
from repro.service.requests import SolveRequest, SolveResult
from repro.service.service import SolveService, default_service, solve

__all__ = [
    "AdmissionGate",
    "MAX_PENDING_ENV",
    "ServiceOverloaded",
    "CachedEvaluation",
    "SolverCallCache",
    "SolverRegistry",
    "RegisteredBackend",
    "SpecSerializationError",
    "make_solver",
    "parse_spec",
    "SolveRequest",
    "SolveResult",
    "SolveService",
    "default_service",
    "solve",
    "read_executor",
    "read_worker_count",
    "shutdown_read_executor",
    "EXECUTION_BACKEND_ENV",
    "ExecutionBackend",
    "ThreadExecutionBackend",
    "ProcessPoolBackend",
    "ShardedResultCache",
    "resolve_backend",
    "shared_backend",
]
