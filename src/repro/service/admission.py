"""Admission control: bounded pending-work accounting with load-shed.

Production ingest is bursty; a queue with no depth limit converts a traffic
spike into unbounded memory growth and unbounded latency for everything behind
it.  The :class:`AdmissionGate` is the one shared primitive: a counter of
admitted-but-not-finished units of work with a hard bound, raising the typed
:class:`ServiceOverloaded` instead of queueing when the bound is hit.  Both
sides of the remote solve farm use it — the local
:class:`~repro.service.service.SolveService` bounds its request pool
(``max_pending`` / the ``QROSS_MAX_PENDING`` environment variable) and each
:class:`~repro.service.remote.worker.WorkerServer` bounds the engine calls it
accepts beyond its concurrency cap — so callers see one error type and one
counter vocabulary (admitted / pending / shed / completed) at every layer.

Shedding is deliberately an *error*, not a silent drop: the caller decides
whether to retry (the :class:`~repro.service.remote.backend.RemoteBackend`
client retries sheds on another worker with backoff), queue client-side, or
surface the overload.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from repro import obs

#: Environment variable bounding the default :class:`SolveService` queue depth
#: (unset = unbounded, preserving the historical behaviour).
MAX_PENDING_ENV = "QROSS_MAX_PENDING"


class ServiceOverloaded(RuntimeError):
    """The bounded admission queue is full; the work unit was shed, not queued.

    Raised by :meth:`SolveService.submit` (and everything built on it) when
    ``max_pending`` requests are already in flight, and by the remote client
    when the worker fleet answered ``overloaded`` beyond its retry budget.
    The request had no side effects — it is safe to retry later.
    """


class AdmissionGate:
    """Thread-safe bounded counter of in-flight work units.

    ``max_pending=None`` disables the bound (every acquire succeeds) but still
    counts traffic, so :meth:`stats` stays meaningful on unbounded services.
    """

    def __init__(self, max_pending: Optional[int] = None, name: str = "service") -> None:
        if max_pending is not None and max_pending <= 0:
            raise ValueError(f"max_pending must be positive or None, got {max_pending}")
        self.max_pending = max_pending
        self.name = name
        self._lock = threading.Lock()
        self._pending = 0
        self._peak_pending = 0
        self._admitted = 0
        self._shed = 0
        # Registry mirrors, labelled by the gate's component (the first word
        # of its name — "service", "worker", ... — so per-instance suffixes
        # like a worker's host:port never explode label cardinality).  The
        # exact per-gate numbers stay in the counters above.
        component = (name.split() or ["service"])[0]
        self._admitted_metric = obs.counter(
            "qross_admission_admitted_total",
            labels={"component": component},
            help="Work units admitted past an admission gate",
        )
        self._shed_metric = obs.counter(
            "qross_admission_shed_total",
            labels={"component": component},
            help="Work units shed at an admission gate bound",
        )
        self._pending_gauge = obs.gauge(
            "qross_admission_pending",
            labels={"component": component},
            help="Admitted-but-unfinished work units",
        )

    # ---------------------------------------------------------------- admission
    def try_acquire(self) -> bool:
        """Admit one unit of work; ``False`` (and a counted shed) when full."""
        with self._lock:
            if self.max_pending is not None and self._pending >= self.max_pending:
                self._shed += 1
                shed = True
            else:
                self._pending += 1
                self._admitted += 1
                if self._pending > self._peak_pending:
                    self._peak_pending = self._pending
                shed = False
        if shed:
            self._shed_metric.inc()
            return False
        self._admitted_metric.inc()
        self._pending_gauge.inc()
        return True

    def acquire(self) -> None:
        """Admit one unit of work or raise :class:`ServiceOverloaded`."""
        if not self.try_acquire():
            raise ServiceOverloaded(
                f"{self.name} is at its pending-work bound "
                f"(max_pending={self.max_pending}); request shed, not queued"
            )

    def release(self) -> None:
        """Mark one admitted unit finished (success or failure alike)."""
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError(f"{self.name}: release() without a matching acquire()")
            self._pending -= 1
        self._pending_gauge.dec()

    # ------------------------------------------------------------------ readouts
    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def stats(self) -> Dict[str, Optional[int]]:
        """Counter snapshot: admitted / completed / pending / peak / shed.

        Keys follow the unified :data:`repro.obs.STATS_SCHEMA` (canonical
        ``*_total`` names plus ``pending``/``peak_pending``); the historical
        bare names (``admitted``/``completed``/``shed``) remain as aliases
        for one release.
        """
        with self._lock:
            return {
                "schema": obs.STATS_SCHEMA,
                "max_pending": self.max_pending,
                "admitted": self._admitted,
                "completed": self._admitted - self._pending,
                "pending": self._pending,
                "peak_pending": self._peak_pending,
                "shed": self._shed,
                "admitted_total": self._admitted,
                "completed_total": self._admitted - self._pending,
                "shed_total": self._shed,
            }


def max_pending_from_env() -> Optional[int]:
    """The ``QROSS_MAX_PENDING`` bound, or ``None`` when unset/empty."""
    raw = os.environ.get(MAX_PENDING_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{MAX_PENDING_ENV} must be an integer, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{MAX_PENDING_ENV} must be positive, got {value}")
    return value
