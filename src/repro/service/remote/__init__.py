"""Remote solve farm: TCP workers plus the load-balancing client backend.

The subsystem has three layers, each usable on its own:

* :mod:`~repro.service.remote.protocol` — length-prefixed message framing
  over a socket, and the typed error taxonomy every failure maps to.
* :mod:`~repro.service.remote.worker` — :class:`WorkerServer`, the standalone
  solve worker (``python -m repro.service.remote.worker --bind ...``).
* :mod:`~repro.service.remote.backend` — :class:`RemoteBackend`, the
  :class:`~repro.service.distributed.backends.ExecutionBackend` client with
  load balancing, retries, deadlines and admission-aware backoff.

Typical use is indirect: ``QROSS_EXECUTION_BACKEND=remote`` plus
``QROSS_REMOTE_WORKERS=hostA:7070,hostB:7070`` routes every
:class:`~repro.service.service.SolveService` engine call to the fleet.
"""

from repro.service.remote.backend import (
    REMOTE_WORKERS_ENV,
    RemoteBackend,
    parse_worker_list,
)
from repro.service.remote.protocol import (
    MAX_MESSAGE_BYTES,
    DeadlineExceeded,
    NoHealthyWorkers,
    RemoteError,
    RemoteProtocolError,
    RemoteTransportError,
    RemoteWorkerError,
    recv_message,
    send_message,
)

def __getattr__(name: str):
    # WorkerServer is exported lazily (PEP 562): importing it eagerly here
    # would make ``python -m repro.service.remote.worker`` re-execute an
    # already-imported module (runpy's RuntimeWarning) and would pull server
    # machinery into every client-only import.
    if name == "WorkerServer":
        from repro.service.remote.worker import WorkerServer

        return WorkerServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MAX_MESSAGE_BYTES",
    "REMOTE_WORKERS_ENV",
    "DeadlineExceeded",
    "NoHealthyWorkers",
    "RemoteBackend",
    "RemoteError",
    "RemoteProtocolError",
    "RemoteTransportError",
    "RemoteWorkerError",
    "WorkerServer",
    "parse_worker_list",
    "recv_message",
    "send_message",
]
