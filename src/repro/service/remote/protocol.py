"""Length-prefixed TCP message framing and the typed remote-error taxonomy.

The :mod:`~repro.service.distributed.wire` format defines self-contained
*frames* (magic + version + JSON header + raw numpy buffers) but says nothing
about how frames travel.  Over a byte stream the missing piece is message
boundaries; this module supplies the simplest robust answer::

    u32 little-endian payload length | payload (one wire frame)

Every read is bounded (:data:`MAX_MESSAGE_BYTES` rejects absurd lengths
before allocating) and every failure mode maps to a *typed* exception, so the
client's retry logic can decide by type instead of string-matching:

* :class:`RemoteTransportError` — the connection failed (refused, reset, EOF
  mid-message, stale pooled socket).  Retryable on another worker or a fresh
  connection.
* :class:`RemoteProtocolError` — the peer spoke, but wrongly (bad frame,
  version mismatch, unexpected kind).  Not retryable: a protocol mismatch
  will not heal by retrying.
* :class:`RemoteWorkerError` — the worker executed the call and it raised.
  Deterministic, so not retryable.
* :class:`DeadlineExceeded` — the caller's per-request deadline expired.
* :class:`NoHealthyWorkers` — every configured worker is marked down.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional

#: Hard bound on a single message (1 GiB).  A length prefix beyond this is a
#: corrupt or hostile stream, rejected before any allocation.
MAX_MESSAGE_BYTES = 1 << 30

_LENGTH = struct.Struct("<I")


class RemoteError(RuntimeError):
    """Base class of every remote-solve-farm failure."""


class RemoteTransportError(RemoteError):
    """The TCP transport failed (connect, send, receive, or mid-message EOF).

    The request may not have reached (or left) the worker; the client retries
    these with backoff on the same or another worker.
    """


class RemoteProtocolError(RemoteError):
    """The peer violated the protocol (bad frame, version mismatch, wrong kind).

    Never retried: both ends must be upgraded/configured to agree first.
    """


class RemoteWorkerError(RemoteError):
    """The worker received the call and failed to execute it.

    The failure is deterministic (same call, same error), so it is surfaced
    instead of retried.
    """


class DeadlineExceeded(RemoteError, TimeoutError):
    """The per-request deadline expired before a worker answered."""


class NoHealthyWorkers(RemoteTransportError):
    """Every configured worker is unreachable or marked down."""


def send_message(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed message (raises on oversized payloads)."""
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ValueError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte transport bound"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed message.

    Returns ``None`` on a clean EOF at a message boundary (the peer closed an
    idle connection — normal teardown) and raises
    :class:`RemoteTransportError` for every other shortfall: EOF inside the
    length prefix or the payload (a mid-frame connection drop) and corrupt
    lengths beyond :data:`MAX_MESSAGE_BYTES`.  ``socket.timeout`` propagates
    to the caller, which owns the deadline policy.
    """
    prefix = _recv_exact(sock, _LENGTH.size, allow_clean_eof=True)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_MESSAGE_BYTES:
        raise RemoteTransportError(
            f"message length {length} exceeds the {MAX_MESSAGE_BYTES}-byte "
            f"transport bound (corrupt or hostile stream)"
        )
    payload = _recv_exact(sock, length, allow_clean_eof=False)
    assert payload is not None
    return payload


def _recv_exact(
    sock: socket.socket, count: int, allow_clean_eof: bool
) -> Optional[bytes]:
    """Read exactly ``count`` bytes; EOF handling depends on position."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_clean_eof and remaining == count:
                return None
            raise RemoteTransportError(
                f"connection dropped mid-message ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
