"""The remote execution backend: a TCP client load-balancing a worker fleet.

:class:`RemoteBackend` is the third :class:`ExecutionBackend` — the same
``run(model, solver, num_reads, seed)`` contract as the thread and process
backends, with the engine call shipped over TCP to a fleet of
:class:`~repro.service.remote.worker.WorkerServer` processes (other cores,
other machines).  The determinism contract is unchanged: workers run
``default_rng(seed)``, so a seeded solve is byte-identical no matter which
worker (or which backend) executes it — which is also why retrying on a
different worker is always safe.

Robustness model:

* **Load balancing** — requests rotate round-robin over the healthy workers;
  each worker keeps its own shipped-model LRU, so a sweep over one model pays
  the model transfer once per worker and by-reference frames afterwards
  (``model_miss`` re-ships in full on the same connection, exactly like the
  process pool).
* **Retries** — connect/transport failures are retried on the next worker
  with exponential backoff plus jitter, up to ``retries`` extra attempts; the
  failing worker is marked down with an escalating cooldown and is probed
  again (a ``heartbeat`` frame) once the cooldown lapses.  Worker sheds
  (``overloaded`` errors) retry the same way but *without* marking the worker
  down — it is alive, just full.
* **Deadlines** — every ``run`` call is bounded by ``request_timeout``
  seconds end to end (connects, retries, backoff sleeps and the solve
  itself); expiry raises the typed
  :class:`~repro.service.remote.protocol.DeadlineExceeded`, never a hang.
* **Reconnect-on-drop** — connections are pooled per worker; a stale or
  dropped socket surfaces as a transport failure and the retry path dials
  fresh.

Configuration mirrors the other backends: construct explicitly, or spec-style
(``SolveService(backend="remote?workers=10.0.0.5:7070,10.0.0.6:7070")``), or
globally with ``QROSS_EXECUTION_BACKEND=remote`` plus the
``QROSS_REMOTE_WORKERS`` address list.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.service.admission import ServiceOverloaded
from repro.service.distributed import wire
from repro.service.distributed.backends import (
    ExecutionBackend,
    SolverSpecCache,
    ThreadExecutionBackend,
    _WORKER_MODEL_LIMIT,
)
from repro.service.executor import default_worker_count
from repro.service.registry import SpecSerializationError
from repro.service.remote.protocol import (
    DeadlineExceeded,
    NoHealthyWorkers,
    RemoteProtocolError,
    RemoteTransportError,
    RemoteWorkerError,
    recv_message,
    send_message,
)
from repro.solvers.base import QUBOSolver

#: Environment variable listing the worker fleet for ``backend="remote"``
#: services: comma-separated ``host:port`` addresses.
REMOTE_WORKERS_ENV = "QROSS_REMOTE_WORKERS"

#: How many idle connections to keep pooled per worker.
_POOL_CONNECTIONS_PER_WORKER = 8

AddressLike = Union[str, Tuple[str, int]]


def parse_address(value: AddressLike) -> Tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> a validated ``(host, port)``."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    host, sep, port = str(value).strip().rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must be host:port, got {value!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"worker port must be an integer, got {port!r}") from exc


def parse_worker_list(
    workers: Union[None, str, Sequence[AddressLike]]
) -> List[Tuple[str, int]]:
    """Normalise a fleet description (string, sequence, or env var) to addresses."""
    if workers is None:
        workers = os.environ.get(REMOTE_WORKERS_ENV, "")
        if not workers.strip():
            raise ValueError(
                f"the remote backend needs a worker fleet: pass workers=... or "
                f"set {REMOTE_WORKERS_ENV} (comma-separated host:port list)"
            )
    if isinstance(workers, str):
        parts: Sequence[AddressLike] = [
            part for part in workers.replace(";", ",").split(",") if part.strip()
        ]
    else:
        parts = workers
    addresses = [parse_address(part) for part in parts]
    if not addresses:
        raise ValueError("the remote worker list is empty")
    return addresses


class _WorkerState:
    """Client-side view of one fleet member: health, connections, shipped models."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self.failures = 0
        self.down_until = 0.0
        self.served = 0
        self.idle: List[socket.socket] = []
        self.shipped: "OrderedDict[str, bool]" = OrderedDict()

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class _OverloadedSignal(Exception):
    """Internal: a worker answered a retryable ``overloaded`` shed."""


class RemoteBackend(ExecutionBackend):
    """Execute engine calls on a fleet of remote TCP workers.

    Parameters
    ----------
    workers:
        The fleet: a comma-separated ``host:port`` string, a sequence of
        addresses, or ``None`` to read :data:`REMOTE_WORKERS_ENV`.
    connect_timeout:
        Seconds allowed for one TCP connect + hello handshake.
    request_timeout:
        End-to-end deadline per ``run`` call in seconds (``None`` = no
        deadline).  The default is generous — solves can be long — but
        finite, so a dead-but-connected worker can never hang a caller.
    retries:
        Extra attempts after the first (transport failures and sheds only;
        protocol and solve errors are deterministic and surface immediately).
    backoff_base, backoff_max:
        Exponential-backoff envelope between attempts; the actual sleep is
        jittered uniformly in ``[0.5, 1.5) x`` the envelope value so a
        thundering herd of clients decorrelates.
    """

    name = "remote"
    in_process = False

    def __init__(
        self,
        workers: Union[None, str, Sequence[AddressLike]] = None,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 300.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
    ) -> None:
        if connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive or None")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = None if request_timeout is None else float(request_timeout)
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._workers = [_WorkerState(a) for a in parse_worker_list(workers)]
        #: Width hint for the service thread pool: enough submitters to keep
        #: every fleet member busy even when each runs several calls at once.
        self.max_workers = max(default_worker_count(), 2 * len(self._workers))
        self._fallback = ThreadExecutionBackend()
        self._specs = SolverSpecCache()
        # Jitter only — never touches the numpy streams that seed solves.
        self._jitter = random.Random()
        self._lock = threading.Lock()
        self._rr = 0
        self._closed = False
        self._counters = {
            "requests": 0,
            "served": 0,
            "fallback_in_process": 0,
            "transport_retries": 0,
            "overload_retries": 0,
            "model_reships": 0,
            "dials": 0,
        }
        # Per-instance exact counts stay in ``_counters`` (``stats()`` reads
        # them); the process-wide registry aggregates the same events across
        # every backend instance in the process.
        self._metrics = {
            key: obs.counter(
                "qross_remote_fallback_total"
                if key == "fallback_in_process"
                else f"qross_remote_{key}_total"
            )
            for key in self._counters
        }
        self._rpc_seconds = obs.histogram(
            "qross_remote_rpc_seconds",
            help="Single-attempt remote engine-call round-trip latency",
        )

    # ----------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            self._closed = True
            sockets = [s for w in self._workers for s in w.idle]
            for worker in self._workers:
                worker.idle.clear()
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ execution
    def run(
        self, model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int
    ) -> SampleSet:
        try:
            spec = self._specs.spec_for(solver)
        except SpecSerializationError:
            # Same graceful degradation as the process pool: a solver the
            # wire cannot express runs here, byte-identically (same seed
            # discipline on every backend).
            with self._lock:
                self._counters["fallback_in_process"] += 1
            self._metrics["fallback_in_process"].inc()
            return self._fallback.run(model, solver, num_reads, seed)
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteBackend is closed")
            self._counters["requests"] += 1
        self._metrics["requests"].inc()
        deadline = (
            None
            if self.request_timeout is None
            else time.monotonic() + self.request_timeout
        )
        last_error: Optional[Exception] = None
        with obs.span("remote.run", solver_spec=spec, num_reads=int(num_reads)) as sp:
            for attempt in range(self.retries + 1):
                self._check_deadline(deadline)
                worker = self._pick_worker()
                try:
                    samples = self._dispatch_once(
                        worker, model, spec, num_reads, seed, deadline
                    )
                except RemoteTransportError as exc:
                    self._mark_down(worker)
                    last_error = exc
                    counter = "transport_retries"
                except _OverloadedSignal as exc:
                    # The worker is alive, just saturated: do not cool it down,
                    # just back off and spread the next attempt over the fleet.
                    last_error = ServiceOverloaded(
                        f"worker {worker.label} shed the call: {exc}"
                    )
                    counter = "overload_retries"
                else:
                    self._mark_healthy(worker)
                    with self._lock:
                        self._counters["served"] += 1
                    self._metrics["served"].inc()
                    sp.set(worker=worker.label, attempts=attempt + 1)
                    return samples
                if attempt < self.retries:
                    with self._lock:
                        self._counters[counter] += 1
                    self._metrics[counter].inc()
                    self._backoff(attempt, deadline)
            assert last_error is not None
            raise last_error

    def _dispatch_once(
        self,
        worker: _WorkerState,
        model: QUBOModel,
        spec: str,
        num_reads: int,
        seed: int,
        deadline: Optional[float],
    ) -> SampleSet:
        """One attempt against one worker (ref-frame first, full on miss)."""
        fingerprint = model.fingerprint()
        with self._lock:
            try_ref = fingerprint in worker.shipped
            if try_ref:
                worker.shipped.move_to_end(fingerprint)
        started = time.perf_counter()
        # The rpc span opens *before* the trace context is captured for the
        # wire, so the worker's spans stitch under this attempt (not under
        # the whole retry loop).
        with obs.span("remote.rpc", worker=worker.label) as sp, self._connection(
            worker, deadline
        ) as conn:
            trace = obs.wire_context()
            if try_ref:
                payload = wire.encode_engine_call_ref(
                    fingerprint, spec, num_reads, int(seed), trace=trace
                )
            else:
                payload = wire.encode_engine_call(
                    model, spec, num_reads, int(seed), trace=trace
                )
            reply = self._roundtrip(conn, payload, deadline)
            kind, header, buffers = self._decode(worker, reply)
            if kind == "model_miss" and try_ref:
                # Evicted (or a restarted worker): re-ship in full on the
                # same connection.
                with self._lock:
                    worker.shipped.pop(fingerprint, None)
                    self._counters["model_reships"] += 1
                self._metrics["model_reships"].inc()
                sp.set(model_reshipped=True)
                reply = self._roundtrip(
                    conn,
                    wire.encode_engine_call(model, spec, num_reads, int(seed), trace=trace),
                    deadline,
                )
                kind, header, buffers = self._decode(worker, reply)
            if kind == "sample_set":
                with self._lock:
                    worker.shipped[fingerprint] = True
                    worker.shipped.move_to_end(fingerprint)
                    while len(worker.shipped) > _WORKER_MODEL_LIMIT:
                        worker.shipped.popitem(last=False)
                    worker.served += 1
                self._rpc_seconds.observe(time.perf_counter() - started)
                return SampleSet.from_wire(header, buffers)
            if kind == "error":
                self._raise_for_error(worker, header)
            raise RemoteProtocolError(
                f"worker {worker.label} answered an unexpected {kind!r} frame"
            )

    @staticmethod
    def _decode(worker: _WorkerState, reply: bytes):
        """Decode a reply frame, mapping garbage to the typed protocol error."""
        try:
            return wire.decode_frame(reply)
        except wire.WireFormatError as exc:
            raise RemoteProtocolError(
                f"worker {worker.label} sent an undecodable frame: {exc}"
            ) from exc

    @staticmethod
    def _raise_for_error(worker: _WorkerState, header: dict) -> None:
        code, message, retryable = wire.decode_error(header)
        detail = f"worker {worker.label} [{code}]: {message}"
        if code == "overloaded" or (retryable and code not in ("solve_error",)):
            raise _OverloadedSignal(detail)
        if code == "solve_error":
            raise RemoteWorkerError(detail)
        # version_mismatch, wire_format, unsupported, unknown codes: a
        # configuration/compatibility problem a retry cannot fix.
        raise RemoteProtocolError(detail)

    # ---------------------------------------------------------- fleet management
    def _pick_worker(self) -> _WorkerState:
        """Round-robin over healthy workers; degrade to least-recently-down."""
        with self._lock:
            now = time.monotonic()
            healthy = [w for w in self._workers if w.down_until <= now]
            pool = healthy or sorted(self._workers, key=lambda w: w.down_until)
            if not pool:  # pragma: no cover - construction guarantees >= 1
                raise NoHealthyWorkers("no workers configured")
            worker = pool[self._rr % len(pool)]
            self._rr += 1
            return worker

    def _mark_down(self, worker: _WorkerState) -> None:
        with self._lock:
            worker.failures += 1
            cooldown = min(
                self.backoff_max, self.backoff_base * (2 ** (worker.failures - 1))
            )
            worker.down_until = time.monotonic() + cooldown
            # A dropped worker's connections are stale; its model memo is
            # unknown (a restart lost it), so forget what we shipped.
            stale, worker.idle = worker.idle, []
            worker.shipped.clear()
        for sock in stale:
            try:
                sock.close()
            except OSError:
                pass

    def _mark_healthy(self, worker: _WorkerState) -> None:
        with self._lock:
            worker.failures = 0
            worker.down_until = 0.0

    def check_workers(self, timeout: Optional[float] = None) -> Dict[str, Optional[dict]]:
        """Probe every configured worker's runtime stats; update health marks.

        Sends the explicit ``stats`` control frame and returns
        ``{address: stats-dict-or-None}`` — the dict carries the worker's
        admission / served / shed counters, ``None`` marks a worker that did
        not answer (it is put on cooldown, to be re-probed later).  Workers
        predating the ``stats`` frame answer it with a non-retryable
        ``unsupported`` error; those are re-probed with a plain heartbeat on
        the same connection, so mixed fleets stay fully observable.
        """
        timeout = self.connect_timeout if timeout is None else timeout
        results: Dict[str, Optional[dict]] = {}
        for worker in list(self._workers):
            deadline = time.monotonic() + timeout
            try:
                with self._connection(worker, deadline) as conn:
                    reply = self._roundtrip(conn, wire.encode_stats_request(), deadline)
                    kind, header, _ = self._decode(worker, reply)
                    if kind == "error":
                        reply = self._roundtrip(conn, wire.encode_heartbeat(), deadline)
                        kind, header, _ = self._decode(worker, reply)
                        if kind != "heartbeat_ack":
                            raise RemoteProtocolError(
                                f"worker {worker.label} answered {kind!r} to a heartbeat"
                            )
                    elif kind != "stats_ack":
                        raise RemoteProtocolError(
                            f"worker {worker.label} answered {kind!r} to a stats probe"
                        )
            except (RemoteTransportError, DeadlineExceeded, RemoteProtocolError):
                self._mark_down(worker)
                results[worker.label] = None
            else:
                self._mark_healthy(worker)
                results[worker.label] = dict(header.get("stats", {}))
        return results

    # ------------------------------------------------------------------ transport
    @contextmanager
    def _connection(
        self, worker: _WorkerState, deadline: Optional[float]
    ) -> Iterator[socket.socket]:
        """Check a pooled connection out (dialling + handshaking if needed)."""
        with self._lock:
            conn = worker.idle.pop() if worker.idle else None
        if conn is None:
            conn = self._dial(worker, deadline)
        try:
            yield conn
        except BaseException:
            try:
                conn.close()
            except OSError:
                pass
            raise
        else:
            with self._lock:
                if not self._closed and len(worker.idle) < _POOL_CONNECTIONS_PER_WORKER:
                    worker.idle.append(conn)
                    conn = None
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    def _dial(self, worker: _WorkerState, deadline: Optional[float]) -> socket.socket:
        """Fresh TCP connection + hello handshake (version negotiation)."""
        timeout = self.connect_timeout
        if deadline is not None:
            timeout = min(timeout, self._remaining(deadline))
        with obs.span("remote.dial", worker=worker.label):
            try:
                conn = socket.create_connection(worker.address, timeout=timeout)
            except (OSError, socket.timeout) as exc:
                raise RemoteTransportError(
                    f"cannot connect to worker {worker.label}: {exc}"
                ) from exc
            with self._lock:
                self._counters["dials"] += 1
            self._metrics["dials"].inc()
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                reply = self._roundtrip(conn, wire.encode_hello(), deadline, io_timeout=timeout)
                kind, header, _ = self._decode(worker, reply)
                if kind == "error":
                    self._raise_for_error(worker, header)
                if kind != "hello_ack":
                    raise RemoteProtocolError(
                        f"worker {worker.label} answered {kind!r} to hello"
                    )
                version = int(header.get("protocol_version", -1))
                if version not in wire.SUPPORTED_PROTOCOL_VERSIONS:
                    raise RemoteProtocolError(
                        f"worker {worker.label} negotiated unsupported protocol "
                        f"version {version}"
                    )
                return conn
            except BaseException:
                try:
                    conn.close()
                except OSError:
                    pass
                raise

    def _roundtrip(
        self,
        sock: socket.socket,
        payload: bytes,
        deadline: Optional[float],
        io_timeout: Optional[float] = None,
    ) -> bytes:
        """Send one message and await the reply under the deadline."""
        timeout = io_timeout
        if deadline is not None:
            remaining = self._remaining(deadline)
            timeout = remaining if timeout is None else min(timeout, remaining)
        sock.settimeout(timeout)
        try:
            send_message(sock, payload)
            reply = recv_message(sock)
        except socket.timeout as exc:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    f"request deadline of {self.request_timeout}s expired "
                    f"awaiting a worker reply"
                ) from exc
            raise RemoteTransportError(f"worker I/O timed out: {exc}") from exc
        except OSError as exc:
            raise RemoteTransportError(f"worker connection failed: {exc}") from exc
        if reply is None:
            raise RemoteTransportError("worker closed the connection mid-request")
        return reply

    def _remaining(self, deadline: float) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"request deadline of {self.request_timeout}s expired"
            )
        return remaining

    def _check_deadline(self, deadline: Optional[float]) -> None:
        if deadline is not None:
            self._remaining(deadline)

    def _backoff(self, attempt: int, deadline: Optional[float]) -> None:
        envelope = min(self.backoff_max, self.backoff_base * (2**attempt))
        delay = envelope * (0.5 + self._jitter.random())
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        if delay > 0:
            with obs.span("remote.backoff", attempt=attempt + 1):
                time.sleep(delay)

    # ------------------------------------------------------------------ readouts
    def stats(self) -> dict:
        """Counter snapshot: traffic, retries and per-worker health.

        Keys follow the unified :data:`repro.obs.STATS_SCHEMA` (canonical
        ``*_total`` names); the historical bare names (``requests``,
        ``served``, ``fallback_in_process``, ...) remain as aliases for one
        release.
        """
        with self._lock:
            now = time.monotonic()
            data = dict(self._counters)
            data["name"] = self.name
            data["workers"] = {
                w.label: {
                    "healthy": w.down_until <= now,
                    "consecutive_failures": w.failures,
                    "served": w.served,
                    "pooled_connections": len(w.idle),
                }
                for w in self._workers
            }
        data["schema"] = obs.STATS_SCHEMA
        data["requests_total"] = data["requests"]
        data["served_total"] = data["served"]
        data["fallback_total"] = data["fallback_in_process"]
        data["transport_retries_total"] = data["transport_retries"]
        data["overload_retries_total"] = data["overload_retries"]
        data["model_reships_total"] = data["model_reships"]
        data["dials_total"] = data["dials"]
        return data

    def fleet_metrics(self, timeout: Optional[float] = None) -> Dict[str, float]:
        """Fleet-wide metric totals, summed over every answering worker.

        Probes the fleet via :meth:`check_workers` and folds the ``metrics``
        registry snapshot each protocol-≥2 worker ships in its ``stats_ack``
        into one ``{metric_name: total}`` dict.  Pre-telemetry workers (no
        ``metrics`` field) simply contribute nothing.
        """
        totals: Dict[str, float] = {}
        for stats in self.check_workers(timeout=timeout).values():
            if not stats:
                continue
            for key, value in (stats.get("metrics") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + value
        return totals
