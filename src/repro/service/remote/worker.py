"""Standalone solve worker: a TCP server executing engine-call frames.

Run one per core-group on every machine of the fleet::

    python -m repro.service.remote.worker --bind 0.0.0.0:7070 --max-concurrency 4

and point clients at it (``QROSS_REMOTE_WORKERS=host:7070,...`` with
``QROSS_EXECUTION_BACKEND=remote``, or an explicit
:class:`~repro.service.remote.backend.RemoteBackend`).

The server speaks the length-prefixed transport of
:mod:`~repro.service.remote.protocol`; each message is one
:mod:`~repro.service.distributed.wire` frame:

* ``hello`` — protocol-version negotiation; answered with ``hello_ack`` (the
  chosen version plus worker metadata) or a non-retryable
  ``version_mismatch`` error when the client offers no version this build
  speaks.
* ``heartbeat`` — liveness probe; answered with ``heartbeat_ack`` carrying
  the live load counters (served / shed / inflight / pending), which clients
  use to evict dead workers and rebalance.
* ``stats`` — explicit runtime-stats probe; answered with ``stats_ack``
  carrying the same admission / served / shed counters.  This is the
  control-plane read :meth:`RemoteBackend.check_workers` uses, kept separate
  from the liveness heartbeat.
* ``engine_call`` — one solver call, executed through the same
  :class:`~repro.service.distributed.backends.EngineCallRunner` the process
  pool uses (spec-resolved solvers, per-worker model memoisation with
  ``model_miss`` retry semantics, ``default_rng(seed)`` determinism).

Admission control mirrors the local service: ``max_concurrency`` engine calls
run at once, at most ``max_pending`` more may wait, and anything beyond that
is answered with a *retryable* ``overloaded`` error instead of queueing
unboundedly — the client's retry/backoff policy decides what to do with the
shed.  Solver failures travel back as non-retryable ``solve_error`` frames;
the worker never dies from a bad request.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.service.admission import AdmissionGate
from repro.service.distributed import wire
from repro.service.distributed.backends import EngineCallRunner
from repro.service.executor import default_worker_count
from repro.service.remote.protocol import (
    RemoteTransportError,
    recv_message,
    send_message,
)

#: Environment variable selecting the worker's stderr log level
#: (``DEBUG``/``INFO``/``WARNING``/``ERROR``; default ``WARNING``).  Logs go
#: to stderr — stdout stays reserved for the contractual "listening" banner.
LOG_LEVEL_ENV = "QROSS_LOG_LEVEL"

logger = logging.getLogger("qross.worker")


class StructuredFormatter(logging.Formatter):
    """Append the record's ``extra=`` fields as trailing ``key=value`` pairs.

    Keeps log lines grep-friendly without forcing call sites to interpolate
    context into the message text.
    """

    _STANDARD = frozenset(
        logging.LogRecord("", 0, "", 0, "", (), None).__dict__
    ) | {"message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        extras = {
            key: value
            for key, value in record.__dict__.items()
            if key not in self._STANDARD
        }
        if extras:
            base += " " + " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
        return base


def configure_logging(level: Optional[str] = None) -> None:
    """Install the structured stderr handler on the ``qross`` logger tree.

    ``level`` overrides :data:`LOG_LEVEL_ENV`; an unknown name degrades to
    ``WARNING`` rather than failing worker startup.
    """
    raw = (level or os.environ.get(LOG_LEVEL_ENV) or "WARNING").strip().upper()
    resolved = getattr(logging, raw, None)
    if not isinstance(resolved, int):
        resolved = logging.WARNING
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        StructuredFormatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    root = logging.getLogger("qross")
    root.handlers[:] = [handler]
    root.setLevel(resolved)
    root.propagate = False


class WorkerServer:
    """One remote solve worker bound to a TCP address.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` (the default) lets the OS pick a free port;
        the resolved address is available as :attr:`address` — handy for
        in-process fleets in tests and benchmarks.
    max_concurrency:
        Engine calls executing at once (default: CPU-count-capped, like the
        local pools).
    max_pending:
        Accepted calls allowed to *wait* for a slot on top of the running
        ones (default: ``2 * max_concurrency``).  Beyond the bound, calls are
        shed with a retryable ``overloaded`` error.
    runner:
        The :class:`EngineCallRunner` executing calls (a private one per
        server by default; tests may share or instrument one).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: Optional[int] = None,
        max_pending: Optional[int] = None,
        runner: Optional[EngineCallRunner] = None,
    ) -> None:
        if max_concurrency is not None and max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        self.max_concurrency = max_concurrency or default_worker_count()
        self.max_pending = (
            2 * self.max_concurrency if max_pending is None else max_pending
        )
        self._runner = runner or EngineCallRunner()
        # The gate bounds *everything admitted* (running + waiting); the
        # semaphore then meters how many of the admitted actually execute.
        self._gate = AdmissionGate(
            max_pending=self.max_concurrency + self.max_pending,
            name=f"worker {host}:{port}",
        )
        self._slots = threading.BoundedSemaphore(self.max_concurrency)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        # Poll-accept: a thread parked in a blocking accept() is not reliably
        # woken by close() on every platform, which would stall shutdown for
        # the full join timeout.  A short accept timeout bounds that to one
        # tick.
        self._listener.settimeout(0.25)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Dict[socket.socket, threading.Thread] = {}
        self._served = 0
        self._errors = 0
        # Exact per-server counts live above; the registry aggregates across
        # every server in the process and travels in ``stats_ack`` frames.
        self._served_metric = obs.counter(
            "qross_worker_served_total", help="Engine calls this worker executed"
        )
        self._errors_metric = obs.counter(
            "qross_worker_solve_errors_total", help="Engine calls that raised"
        )

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerServer":
        """Begin accepting connections on a background thread."""
        with self._lock:
            if self._accept_thread is not None:
                return self
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="qross-worker-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI entry point)."""
        self.start()
        self._closed.wait()

    def close(self) -> None:
        """Stop accepting, drop open connections, release the port (idempotent)."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            _close_socket(conn)
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._connections.values())
        for worker_thread in threads:
            worker_thread.join(timeout=5.0)

    def kill(self) -> None:
        """Abrupt stop: drop the listener and every connection, no draining.

        Simulates a worker crash for failure-injection tests — in-flight
        calls see their connection die mid-frame, exactly like a real
        process death.  Use :meth:`close` for orderly shutdown.
        """
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            _close_socket(conn)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ serving
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue  # poll tick: re-check the closed flag
            except OSError:
                break  # listener closed
            conn.settimeout(None)  # connection reads are blocking, not polled
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="qross-worker-conn",
                daemon=True,
            )
            with self._lock:
                self._connections[conn] = thread
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            peer = "%s:%s" % conn.getpeername()[:2]
        except OSError:
            peer = "?"
        logger.debug("connection opened", extra={"peer": peer})
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._closed.is_set():
                try:
                    payload = recv_message(conn)
                except (RemoteTransportError, OSError):
                    break  # dropped mid-message or socket torn down
                if payload is None:
                    break  # clean close
                try:
                    send_message(conn, self._respond(payload))
                except OSError:
                    break  # client went away while we were answering
        finally:
            _close_socket(conn)
            with self._lock:
                self._connections.pop(conn, None)
            logger.debug("connection closed", extra={"peer": peer})

    def _respond(self, payload: bytes) -> bytes:
        """One request frame -> one response frame (never raises)."""
        try:
            kind, header, _ = wire.decode_frame(payload)
        except wire.WireFormatError as exc:
            # The length prefix keeps the stream in sync, so a bad frame
            # poisons only itself — answer and keep the connection.
            return wire.encode_error("wire_format", str(exc), retryable=False)
        if kind == "hello":
            version = wire.negotiate_protocol(header.get("protocol_versions", ()))
            if version is None:
                return wire.encode_error(
                    "version_mismatch",
                    f"client speaks {header.get('protocol_versions')!r}, "
                    f"worker speaks {list(wire.SUPPORTED_PROTOCOL_VERSIONS)!r}",
                    retryable=False,
                )
            return wire.encode_hello_ack(version, info=self.stats())
        if kind == "heartbeat":
            return wire.encode_heartbeat_ack(self.stats())
        if kind == "stats":
            # The explicit stats probe additionally carries the process-wide
            # metrics registry snapshot (protocol ≥ 2 clients aggregate it
            # into fleet-wide metrics); heartbeats stay small.
            return wire.encode_stats_ack(self.stats(include_metrics=True))
        if kind == "engine_call":
            return self._respond_engine_call(payload, header)
        return wire.encode_error(
            "unsupported", f"worker cannot handle {kind!r} frames", retryable=False
        )

    def _respond_engine_call(self, payload: bytes, header: dict) -> bytes:
        if not self._gate.try_acquire():
            logger.warning(
                "call shed at admission bound",
                extra={
                    "max_concurrency": self.max_concurrency,
                    "max_pending": self.max_pending,
                },
            )
            return wire.encode_error(
                "overloaded",
                f"worker at its admission bound "
                f"({self.max_concurrency} running + {self.max_pending} pending)",
                retryable=True,
            )
        try:
            # The request span adopts the client's wire-propagated trace
            # context, so everything below (queue wait, the runner's
            # worker.solve, the engine) stitches into the caller's tree.
            with obs.adopt_wire_context(header.get("trace")):
                with obs.span("worker.request", worker=f"{self.address[0]}:{self.address[1]}"):
                    with obs.span("worker.queue_wait"):
                        self._slots.acquire()
                    try:
                        response = self._runner.execute(payload)
                    finally:
                        self._slots.release()
            with self._lock:
                self._served += 1
            self._served_metric.inc()
            return response
        except Exception as exc:  # noqa: BLE001 - worker must not die on bad calls
            with self._lock:
                self._errors += 1
            self._errors_metric.inc()
            logger.warning(
                "engine call failed",
                extra={"error_type": type(exc).__name__, "error": str(exc)},
            )
            return wire.encode_error(
                "solve_error", f"{type(exc).__name__}: {exc}", retryable=False
            )
        finally:
            self._gate.release()

    # ------------------------------------------------------------------ readouts
    def stats(self, include_metrics: bool = False) -> dict:
        """Live load/health counters (also shipped in heartbeat acks).

        Keys follow the unified :data:`repro.obs.STATS_SCHEMA` (canonical
        ``*_total`` / ``pending`` names); the historical names (``served``,
        ``solve_errors``, ``shed``, ``inflight``, ``peak_inflight``) remain as
        aliases for one release.  ``include_metrics=True`` attaches the
        process-wide metrics registry snapshot (used by ``stats_ack``).
        """
        gate = self._gate.stats()
        with self._lock:
            served, errors = self._served, self._errors
        data = {
            "pid": os.getpid(),
            "address": f"{self.address[0]}:{self.address[1]}",
            "max_concurrency": self.max_concurrency,
            "max_pending": self.max_pending,
            "served": served,
            "solve_errors": errors,
            "shed": gate["shed"],
            "inflight": gate["pending"],
            "peak_inflight": gate["peak_pending"],
            "schema": obs.STATS_SCHEMA,
            "served_total": served,
            "errors_total": errors,
            "shed_total": gate["shed"],
            "pending": gate["pending"],
            "peak_pending": gate["peak_pending"],
        }
        if include_metrics:
            data["metrics"] = obs.metrics_snapshot()
        return data


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# ------------------------------------------------------------------------- CLI
def parse_bind(raw: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (port may be 0 for OS-assigned)."""
    host, sep, port = raw.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--bind expects host:port, got {raw!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"--bind port must be an integer, got {port!r}") from exc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.remote.worker",
        description="QROSS remote solve worker (TCP engine-call server)",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to listen on (port 0 = OS-assigned; default %(default)s)",
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=None,
        help="engine calls executed at once (default: CPU-count-capped)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admitted calls allowed to wait beyond the running ones "
        "(default: 2x max-concurrency); excess is shed with a retryable error",
    )
    args = parser.parse_args(argv)
    host, port = parse_bind(args.bind)

    configure_logging()

    # Engine calls already run concurrently across connections; nested
    # per-read thread pools inside each call would oversubscribe the host
    # (same reasoning as the process pool's worker initialiser).
    os.environ.setdefault("QROSS_READ_WORKERS", "1")

    server = WorkerServer(
        host=host,
        port=port,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
    )
    logger.info(
        "worker starting",
        extra={
            "address": f"{server.address[0]}:{server.address[1]}",
            "max_concurrency": server.max_concurrency,
            "max_pending": server.max_pending,
            "trace": obs.trace_path() or "off",
        },
    )
    # The one contractual stdout line: scripts (CI, benchmarks) parse it to
    # learn the OS-assigned port and to know the worker is accepting.
    print(
        f"qross-worker listening on {server.address[0]}:{server.address[1]} "
        f"(pid {os.getpid()}, max_concurrency {server.max_concurrency}, "
        f"max_pending {server.max_pending})",
        flush=True,
    )

    import signal

    def _shutdown(_signum, _frame):  # pragma: no cover - signal path
        server.close()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    finally:
        server.close()
        logger.info("worker stopped", extra={"served": server.stats()["served"]})
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
