"""Execution backends: where a solver call actually runs.

The :class:`~repro.service.service.SolveService` orchestrates requests
(grouping, caching, RNG discipline) on its thread pool; the *engine call* —
``solver.sample(model, num_reads, rng)`` — is delegated to an
:class:`ExecutionBackend`:

* :class:`ThreadExecutionBackend` runs the call in the submitting thread.
  This is the historical behaviour: numpy kernels release the GIL, states
  never cross a process boundary, and live caller RNG streams are supported.
* :class:`ProcessPoolBackend` ships the call to a pool of worker processes
  over the :mod:`~repro.service.distributed.wire` format.  The Python-level
  portions of the annealing loops (schedule bookkeeping, tabu steps, qbsolv
  decomposition) then run on as many cores as there are workers instead of
  serialising on one GIL.

Determinism contract: every backend receives a *concrete integer seed* and
runs ``default_rng(seed)``, so a seeded request produces byte-identical
assignments and energies on every backend.  The worker re-resolves its solver
from the registry spec string (:meth:`SolverRegistry.spec_for` guarantees the
spec reproduces the parent solver's config fingerprint); solvers whose config
cannot be spec-serialised fall back to in-process execution — transparently,
because the seed discipline makes both paths produce the same samples.

A third backend lives in :mod:`repro.service.remote`:
:class:`~repro.service.remote.backend.RemoteBackend` ships the same frames
over TCP to a fleet of standalone worker servers on other machines (or other
containers), with load balancing, retries and admission control.

Backends are selected per service via ``SolveService(backend=...)`` or
globally via the ``QROSS_EXECUTION_BACKEND`` environment variable
(``thread`` — the default —, ``process`` or ``remote``, optionally with
options such as ``process?max_workers=4`` or
``remote?workers=10.0.0.5:7070,10.0.0.6:7070``).  Backends resolved from
specs are *shared* process-wide so that many short-lived services reuse one
worker pool.
"""

from __future__ import annotations

import abc
import atexit
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.service.executor import default_worker_count
from repro.service.registry import SpecSerializationError, parse_spec
from repro.solvers.base import QUBOSolver

#: Environment variable selecting the default execution backend for services
#: constructed without an explicit ``backend=``.
EXECUTION_BACKEND_ENV = "QROSS_EXECUTION_BACKEND"


class ExecutionBackend(abc.ABC):
    """Where one engine call (``solver.sample``) executes.

    ``run`` is blocking — the service calls it from its own worker threads, so
    a backend only needs to execute one call at a time per calling thread and
    may parallelise across calls however it likes.
    """

    #: Short name used in specs, logs and result metadata.
    name: str = "backend"
    #: Whether calls run inside the calling process.  In-process backends
    #: additionally support :meth:`run_with_rng` (live generator streams),
    #: which the service uses to keep legacy paths byte-identical.
    in_process: bool = False

    @abc.abstractmethod
    def run(
        self, model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int
    ) -> SampleSet:
        """Execute one engine call with the deterministic stream ``default_rng(seed)``."""

    def run_with_rng(
        self,
        model: QUBOModel,
        solver: QUBOSolver,
        num_reads: int,
        rng: np.random.Generator,
    ) -> SampleSet:
        """Execute one engine call consuming a live caller generator.

        Only in-process backends can honour the caller's stream state; the
        service consults :attr:`in_process` before using this entry point.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot consume a live RNG stream; "
            f"derive a seed and use run()"
        )

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has retired this backend (stateless: never)."""
        return False

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadExecutionBackend(ExecutionBackend):
    """Run engine calls in the submitting thread (the historical behaviour)."""

    name = "thread"
    in_process = True

    def run(
        self, model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int
    ) -> SampleSet:
        return solver.sample(model, num_reads=num_reads, rng=np.random.default_rng(int(seed)))

    def run_with_rng(
        self,
        model: QUBOModel,
        solver: QUBOSolver,
        num_reads: int,
        rng: np.random.Generator,
    ) -> SampleSet:
        return solver.sample(model, num_reads=num_reads, rng=rng)


# ------------------------------------------------------------ worker process side
#
# Everything below the pool boundary must be importable by a *spawned*
# interpreter: module-level functions only, no closures, no state captured at
# submission time.  The worker receives wire frames (bytes), never live
# objects.

#: Bound on solvers memoised per worker, keyed by spec — an LRU like the model
#: memo, just with a looser bound (config dataclasses are tiny; the bound
#: exists so a grid sweeping thousands of distinct specs cannot grow a
#: worker's memory without limit).
_WORKER_SOLVER_LIMIT = 64

_spawn_names: Optional[frozenset] = None


def _spawn_resolvable_names() -> frozenset:
    """Backend names a spawn-fresh default registry resolves (bundled only).

    The parent's default registry may have gained runtime registrations that
    a fresh worker interpreter will not have; building a pristine registry
    once gives the exact vocabulary workers share.
    """
    global _spawn_names
    if _spawn_names is None:
        from repro.service.registry import _build_default_registry

        _spawn_names = frozenset(_build_default_registry()._by_alias)
    return _spawn_names


def _process_worker_init(env_overrides: Optional[Dict[str, str]] = None) -> None:
    """Initialiser run once inside each worker process.

    Applies environment overrides before any solver touches the shared pools
    (the parent typically pins ``QROSS_READ_WORKERS`` so that nested per-read
    thread pools in the workers do not oversubscribe the machine).
    """
    if env_overrides:
        os.environ.update({str(k): str(v) for k, v in env_overrides.items()})


#: Bound on decoded models memoised per worker, keyed by fingerprint — an LRU,
#: so a working set cycling within the bound always hits.  The bound is small
#: because entries can be large (a dense n x n float64 each); a sweep
#: typically cycles over one or two models, and an evicted model is simply
#: re-shipped on its next by-reference miss.  The parent mirrors this bound
#: (:attr:`ProcessPoolBackend._shipped_models`), so working sets larger than
#: the memo fall back to always-full payloads instead of paying a guaranteed
#: ref-miss round trip per call.
_WORKER_MODEL_LIMIT = 8


class EngineCallRunner:
    """Worker-side execution of engine-call frames (frame in, frame out).

    This is the one piece of logic every kind of worker shares — pool
    processes and remote TCP workers alike: decode an engine-call frame,
    re-resolve the solver from its registry spec (memoised — config
    dataclasses are cheap, but the registry round-trip validation is not
    free), run it under ``default_rng(seed)`` so results match the thread
    backend bit for bit, and encode the sample set.  Calls may reference a
    previously-shipped model by fingerprint; a runner that does not hold it
    answers ``model_miss`` and the caller retries with the full payload.

    Memoisation is guarded by a lock (remote workers execute calls from
    several connection threads at once); the engine call itself runs outside
    the lock, so concurrent solves proceed in parallel.
    """

    def __init__(
        self,
        model_limit: int = _WORKER_MODEL_LIMIT,
        solver_limit: int = _WORKER_SOLVER_LIMIT,
    ) -> None:
        self._models: "OrderedDict[str, QUBOModel]" = OrderedDict()
        self._solvers: "OrderedDict[str, QUBOSolver]" = OrderedDict()
        self._model_limit = model_limit
        self._solver_limit = solver_limit
        self._lock = threading.Lock()
        self._solve_seconds = obs.histogram(
            "qross_worker_solve_seconds",
            help="Worker-side engine-call execution latency",
        )

    def _resolve_model(self, header: dict, buffers) -> Optional[QUBOModel]:
        ref = header.get("model_ref")
        with self._lock:
            if ref is not None:
                model = self._models.get(ref)
                if model is not None:
                    self._models.move_to_end(ref)
                return model
        model = QUBOModel.from_wire(header["model"], buffers)
        with self._lock:
            while len(self._models) >= self._model_limit:
                self._models.popitem(last=False)
            self._models[model.fingerprint()] = model
        return model

    def _resolve_solver(self, spec: str) -> QUBOSolver:
        from repro.service.registry import make_solver

        with self._lock:
            solver = self._solvers.get(spec)
            if solver is not None:
                self._solvers.move_to_end(spec)
                return solver
        solver = make_solver(spec)
        with self._lock:
            while len(self._solvers) >= self._solver_limit:
                self._solvers.popitem(last=False)
            self._solvers[spec] = solver
        return solver

    def execute(self, payload: bytes) -> bytes:
        """One engine-call frame -> a sample-set (or ``model_miss``) frame.

        When the frame carries a propagated ``trace`` context (protocol ≥ 2)
        the solve runs under it, so worker-side spans stitch into the calling
        client's trace tree.
        """
        from repro.service.distributed import wire

        _, header, buffers = wire.decode_frame(payload, expected_kind="engine_call")
        model = self._resolve_model(header, buffers)
        if model is None:
            return wire.encode_model_miss(str(header["model_ref"]))
        spec = str(header["solver_spec"])
        solver = self._resolve_solver(spec)
        started = time.perf_counter()
        with obs.adopt_wire_context(header.get("trace")):
            with obs.span("worker.solve", solver_spec=spec, num_reads=int(header["num_reads"])):
                samples = solver.sample(
                    model,
                    num_reads=int(header["num_reads"]),
                    rng=np.random.default_rng(int(header["seed"])),
                )
        self._solve_seconds.observe(time.perf_counter() - started)
        return wire.encode_sample_set(samples)


#: The per-process runner used by pool workers.  Module-level so the state
#: survives across calls inside one spawned worker (that persistence is the
#: whole point of the model memo).
_WORKER_RUNNER = EngineCallRunner()


def _execute_engine_call(payload: bytes) -> bytes:
    """Pool-worker entry point (must stay a module-level function: the
    parent submits it by reference and spawn pickles that reference)."""
    return _WORKER_RUNNER.execute(payload)


class SolverSpecCache:
    """Memoised solver -> registry-spec mapping for shipping solver identity.

    The fingerprint *is* the identity the spec must reproduce (``spec_for``
    validates exactly that), so it is a collision-safe memo key — unlike
    ``id()``, which the allocator reuses.  A spec is only accepted when a
    *spawn-fresh* registry can resolve it: backends registered at runtime in
    this process do not exist in a worker started elsewhere, so their solvers
    must take the caller's in-process fallback instead of crashing the worker.
    Failures memoise too (as ``""``), so a sweep over an unserialisable solver
    pays the spec round-trip once, not once per engine call.

    Shared by every backend that ships calls out of this process (the process
    pool and the remote TCP client).
    """

    def __init__(self) -> None:
        self._cache: Dict[str, str] = {}
        self._lock = threading.Lock()

    def spec_for(self, solver: QUBOSolver) -> str:
        """The spec shipping ``solver``, or :class:`SpecSerializationError`."""
        from repro.service.registry import SolverRegistry

        key = f"{type(solver).__qualname__}:{solver.config_fingerprint()}"
        spec = self._cache.get(key)
        if spec is None:
            try:
                spec = SolverRegistry.default().spec_for(solver)
                name, _ = parse_spec(spec)
                if name not in _spawn_resolvable_names():
                    raise SpecSerializationError(
                        f"backend {name!r} was registered at runtime; a spawned "
                        f"worker's registry cannot resolve it"
                    )
            except SpecSerializationError:
                spec = ""
            with self._lock:
                if len(self._cache) > 1024:
                    self._cache.clear()
                self._cache[key] = spec
        if not spec:
            raise SpecSerializationError(
                f"{type(solver).__qualname__} is not spec-serialisable "
                f"(memoised); running in-process"
            )
        return spec


class ProcessPoolBackend(ExecutionBackend):
    """Execute engine calls on a pool of spawn-safe worker processes.

    Parameters
    ----------
    max_workers:
        Number of worker processes (default: CPU-count-capped like the
        service's thread pool).
    mp_context:
        ``multiprocessing`` start-method name.  The default ``"spawn"`` gives
        every worker a fresh interpreter — no inherited locks, thread pools or
        solver state — which is the only start method that is safe under an
        actively multi-threaded parent on every platform.
    worker_env:
        Environment overrides applied inside each worker before it executes
        anything.  Defaults to pinning ``QROSS_READ_WORKERS=1`` so nested
        per-read thread pools don't oversubscribe the machine once several
        worker processes run engine calls concurrently.

    Solver instances whose configuration cannot be expressed as a registry
    spec (:class:`~repro.service.registry.SpecSerializationError`) are run
    in-process instead — byte-identically, since both paths use
    ``default_rng(seed)``.
    """

    name = "process"
    in_process = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mp_context: str = "spawn",
        worker_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or default_worker_count()
        self.mp_context = mp_context
        self.worker_env = (
            {"QROSS_READ_WORKERS": "1"} if worker_env is None else dict(worker_env)
        )
        self._fallback = ThreadExecutionBackend()
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._specs = SolverSpecCache()
        # LRU of recently-shipped model fingerprints: calls for these try the
        # compact by-reference frame first (workers memoise models, and a
        # miss — different worker, eviction, worker restart — just retries in
        # full, so this is an optimisation, not a contract).  Its capacity
        # mirrors the workers' model memo: a working set too large for the
        # workers to hold ships full payloads directly instead of paying a
        # guaranteed ref-miss round trip on every call.
        self._shipped_models: "OrderedDict[str, bool]" = OrderedDict()

    # ---------------------------------------------------------------- plumbing
    def _executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessPoolBackend is closed")
            if self._pool is None:
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                    initializer=_process_worker_init,
                    initargs=(self.worker_env,),
                )
            return self._pool

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    # -------------------------------------------------------------- execution
    def run(
        self, model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int
    ) -> SampleSet:
        from repro.service.distributed import wire

        try:
            spec = self._specs.spec_for(solver)
        except SpecSerializationError:
            # Not expressible on the wire (custom solver class / exotic
            # config): run it here.  Same seed discipline, same samples.
            return self._fallback.run(model, solver, num_reads, seed)
        fingerprint = model.fingerprint()
        with self._lock:
            try_ref = fingerprint in self._shipped_models
            if try_ref:
                self._shipped_models.move_to_end(fingerprint)
        trace = obs.wire_context()
        if try_ref:
            payload = wire.encode_engine_call_ref(
                fingerprint, spec, num_reads, int(seed), trace=trace
            )
            samples = self._dispatch(payload)
            if samples is not None:
                return samples
            # The serving worker did not hold the model (different worker,
            # eviction, restart): fall through and ship it in full.
        payload = wire.encode_engine_call(model, spec, num_reads, int(seed), trace=trace)
        samples = self._dispatch(payload)
        if samples is None:
            raise RuntimeError("worker answered model_miss to a full engine call")
        with self._lock:
            self._shipped_models[fingerprint] = True
            self._shipped_models.move_to_end(fingerprint)
            while len(self._shipped_models) > _WORKER_MODEL_LIMIT:
                self._shipped_models.popitem(last=False)
        return samples

    def _dispatch(self, payload: bytes) -> Optional[SampleSet]:
        """Ship one frame to a worker; ``None`` means it answered ``model_miss``."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.service.distributed import wire

        executor = self._executor()
        try:
            response = executor.submit(_execute_engine_call, payload).result()
        except BrokenProcessPool as exc:
            # Drop the poisoned executor so the next call respawns a fresh
            # pool instead of failing forever (a broken pool never recovers).
            # Only the pool *this* dispatch used is discarded: a concurrent
            # failure may already have installed a healthy replacement, which
            # must not be torn down.
            with self._lock:
                if self._pool is executor:
                    self._pool = None
            executor.shutdown(wait=False)
            raise RuntimeError(
                "a process-pool worker died (out-of-memory kills and native "
                "crashes land here too). If this happened on the first call "
                "of a *script*, the usual cause is a missing "
                "`if __name__ == '__main__':` guard around the entry point — "
                "the spawn start method re-imports __main__ in each worker, "
                "so an unguarded script re-executes itself and crashes at "
                "startup ('Safe importing of main module' in the "
                "multiprocessing docs)."
            ) from exc
        kind, header, buffers = wire.decode_frame(response)
        if kind == "model_miss":
            return None
        if kind != "sample_set":
            raise wire.WireFormatError(f"unexpected worker response kind {kind!r}")
        return SampleSet.from_wire(header, buffers)


# ----------------------------------------------------------- backend resolution
BackendLike = Union[None, str, ExecutionBackend]

_shared_backends: Dict[str, ExecutionBackend] = {}
_shared_lock = threading.Lock()


def shared_backend(spec: str) -> ExecutionBackend:
    """Process-wide backend instance for a spec string (``"process?max_workers=4"``).

    Specs resolve to *shared* instances so that short-lived services (tests,
    one-shot experiment runs) reuse a single warm worker pool instead of each
    paying process-spawn cost.  Shared backends are closed at interpreter
    exit, never by the services using them.
    """
    name, options = parse_spec(spec)
    key = f"{name}|{sorted(options.items())!r}"
    with _shared_lock:
        backend = _shared_backends.get(key)
        if backend is None or backend.closed:
            # A closed instance (someone called close() on the shared object)
            # would poison every later service resolving this spec; replace it.
            backend = _create_backend(name, options)
            _shared_backends[key] = backend
        return backend


def _create_backend(name: str, options: Dict[str, object]) -> ExecutionBackend:
    if name == ThreadExecutionBackend.name:
        if options:
            raise ValueError(f"the thread backend takes no options, got {sorted(options)}")
        return ThreadExecutionBackend()
    if name == ProcessPoolBackend.name:
        unknown = sorted(set(options) - {"max_workers", "mp_context"})
        if unknown:
            raise ValueError(
                f"unknown process-backend option(s) {unknown}; "
                f"valid options: ['max_workers', 'mp_context']"
            )
        return ProcessPoolBackend(**options)  # type: ignore[arg-type]
    if name == "remote":
        # Imported lazily: the remote subsystem is pure stdlib, but keeping it
        # out of this module's import graph avoids a cycle (remote's client
        # subclasses ExecutionBackend from here).
        from repro.service.remote.backend import RemoteBackend

        valid = {
            "workers",
            "connect_timeout",
            "request_timeout",
            "retries",
            "backoff_base",
            "backoff_max",
        }
        unknown = sorted(set(options) - valid)
        if unknown:
            raise ValueError(
                f"unknown remote-backend option(s) {unknown}; "
                f"valid options: {sorted(valid)}"
            )
        return RemoteBackend(**options)  # type: ignore[arg-type]
    raise ValueError(
        f"unknown execution backend {name!r}; known backends: "
        f"['thread', 'process', 'remote']"
    )


def resolve_backend(backend: BackendLike) -> Tuple[ExecutionBackend, bool]:
    """Resolve a ``backend=`` argument into ``(instance, service_owns_it)``.

    ``None`` reads :data:`EXECUTION_BACKEND_ENV` (default ``"thread"``);
    strings resolve through :func:`shared_backend`; instances pass through.
    The boolean is ``True`` only for instances the caller should close —
    shared and caller-provided backends outlive any one service, so it is
    currently always ``False``; the flag keeps the ownership contract explicit
    at the call sites.
    """
    if isinstance(backend, ExecutionBackend):
        return backend, False
    if backend is None:
        backend = os.environ.get(EXECUTION_BACKEND_ENV) or ThreadExecutionBackend.name
    if not isinstance(backend, str):
        raise ValueError(
            f"backend must be a spec string or an ExecutionBackend, got {backend!r}"
        )
    return shared_backend(backend), False


@atexit.register
def _close_shared_backends() -> None:  # pragma: no cover - interpreter teardown
    with _shared_lock:
        backends = list(_shared_backends.values())
        _shared_backends.clear()
    for backend in backends:
        try:
            backend.close()
        except Exception:
            pass
