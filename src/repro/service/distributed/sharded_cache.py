"""On-disk, fingerprint-sharded result store shared across processes and runs.

:class:`ShardedResultCache` persists the two kinds of entries
:class:`~repro.service.cache.SolverCallCache` holds:

* *sample sets* — full seeded solver calls, stored as wire frames
  (:mod:`~repro.service.distributed.wire`), keyed by the same
  ``(model fingerprint, solver fingerprint, reads, seed)`` key the in-memory
  dedup uses.  Seeded calls are deterministic, so a disk hit is exact — a
  repeated sweep re-run in a new process performs zero solver calls.
* *aggregate evaluations* — the tiny ``(Pf, Eavg, Estd, best_fitness)``
  records the tuning loops consume, stored as JSON.  Their keys carry no
  seed, so a cross-run hit returns statistics produced by another run's
  random stream — which is why :class:`SolverCallCache` only tiers them
  when explicitly asked (``persist_evaluations=True``).

Layout (versioned so future format changes cannot misread old trees)::

    <root>/v1/<shard>/<sha256(key)>.samples   (wire frame)
    <root>/v1/<shard>/<sha256(key)>.eval.json

where ``<shard>`` is the first two hex digits of the key hash — 256 buckets
keep directory listings short at millions of entries and give concurrent
writers (multiple runs, multiple service processes) naturally disjoint paths.

Every write goes through a temp file in the target directory followed by
``os.replace``: readers never observe a partial entry, a crash mid-write
leaves at most a stale temp file, and concurrent writers of the *same* key
(deterministic payloads) last-write-win with either side valid.  Corrupt or
truncated entries read as cache misses and are removed.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro import obs
from repro.qubo.sampleset import SampleSet
from repro.service.cache import CachedEvaluation
from repro.utils.io import atomic_write_bytes

#: Bump when the on-disk layout or entry encoding changes incompatibly; old
#: trees then simply stop matching (they live under their own ``v<N>/`` dir).
LAYOUT_VERSION = 1

_SAMPLES_SUFFIX = ".samples"
_EVAL_SUFFIX = ".eval.json"


class ShardedResultCache:
    """Filesystem-backed result store, safe under concurrent readers/writers.

    Parameters
    ----------
    root:
        Directory of the store (created on demand).  Multiple processes and
        multiple runs may point at the same root concurrently.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self._version_dir = self.root / f"v{LAYOUT_VERSION}"
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Process-wide registry mirrors of the per-instance counters above.
        self._hit_metric = obs.counter(
            "qross_cache_lookups_total",
            labels={"cache": "sharded", "result": "hit"},
            help="Sharded disk-cache lookups by outcome",
        )
        self._miss_metric = obs.counter(
            "qross_cache_lookups_total",
            labels={"cache": "sharded", "result": "miss"},
            help="Sharded disk-cache lookups by outcome",
        )
        self._corrupt_metric = obs.counter(
            "qross_cache_corrupt_removed_total",
            labels={"cache": "sharded"},
            help="Corrupt/truncated disk entries removed on read",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedResultCache(root={str(self.root)!r})"

    # ------------------------------------------------------------------ layout
    def _entry_path(self, key: str, suffix: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self._version_dir / digest[:2] / f"{digest}{suffix}"

    def _read(self, path: Path) -> Optional[bytes]:
        try:
            data = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            self._miss_metric.inc()
            return None
        with self._lock:
            self.hits += 1
        self._hit_metric.inc()
        return data

    def _drop_corrupt(self, path: Path) -> None:
        """A partial/corrupt entry is worth less than a miss: remove it."""
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            self.hits -= 1
            self.misses += 1
        # Registry counters are monotonic, so the premature hit inc cannot be
        # reversed; the corrupt-removed counter is the correction signal.
        self._miss_metric.inc()
        self._corrupt_metric.inc()

    # ------------------------------------------------------------- sample sets
    def lookup_samples(self, key: str) -> Optional[SampleSet]:
        """Fetch a stored seeded solver call, or ``None``."""
        from repro.service.distributed import wire

        path = self._entry_path(key, _SAMPLES_SUFFIX)
        data = self._read(path)
        if data is None:
            return None
        try:
            return wire.decode_sample_set(data)
        except (wire.WireFormatError, ValueError, KeyError, TypeError):
            # TypeError covers e.g. np.dtype() on a bit-flipped dtype string.
            self._drop_corrupt(path)
            return None

    def store_samples(self, key: str, samples: SampleSet) -> None:
        """Persist one seeded solver call atomically."""
        from repro.service.distributed import wire

        atomic_write_bytes(self._entry_path(key, _SAMPLES_SUFFIX), wire.encode_sample_set(samples))

    # ------------------------------------------------------------- evaluations
    def lookup_evaluation(self, key: str) -> Optional[CachedEvaluation]:
        """Fetch a stored aggregate evaluation, or ``None``."""
        path = self._entry_path(key, _EVAL_SUFFIX)
        data = self._read(path)
        if data is None:
            return None
        try:
            return CachedEvaluation.from_json_dict(json.loads(data.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._drop_corrupt(path)
            return None

    def store_evaluation(self, key: str, entry: CachedEvaluation) -> None:
        """Persist one aggregate evaluation atomically.

        The key is stored alongside the statistics — hashes are one-way, so
        without it a tree could not be audited or selectively invalidated.
        """
        payload = {"key": key, **entry.to_json_dict()}
        atomic_write_bytes(
            self._entry_path(key, _EVAL_SUFFIX),
            json.dumps(payload, separators=(",", ":")).encode("utf-8"),
        )

    # ------------------------------------------------------------------- misc
    def entry_counts(self) -> dict:
        """``{"samples": n, "evaluations": m}`` — a full-tree scan, for tooling."""
        samples = evaluations = 0
        if self._version_dir.is_dir():
            for shard in self._version_dir.iterdir():
                if not shard.is_dir():
                    continue
                for entry in shard.iterdir():
                    if entry.name.endswith(_EVAL_SUFFIX):
                        evaluations += 1
                    elif entry.name.endswith(_SAMPLES_SUFFIX):
                        samples += 1
        return {"samples": samples, "evaluations": evaluations}

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_tmp_age_s: float = 3600.0,
        max_total_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> dict:
        """Garbage-collect the store by count, byte budget and/or age TTL.

        At least one of ``max_entries`` / ``max_total_bytes`` / ``max_age_s``
        must be given; the criteria compose (an entry survives only if it
        passes all of them):

        * ``max_age_s`` — entries whose modification time is older than this
          many seconds are expired outright (TTL), regardless of the budgets.
        * ``max_entries`` / ``max_total_bytes`` — the surviving entries are
          ranked newest-first and kept while both the entry count and the
          cumulative byte size stay within budget; the cut is strict recency
          (once either budget is exhausted every older entry goes, so the kept
          set is always a newest-prefix — two pruners always agree on it).

        Entries (sample sets and evaluations together) compete in one pool;
        stale ``.tmp-*`` files left by crashed writers are removed once older
        than ``max_tmp_age_s`` (never younger — a live writer's temp file must
        survive until its ``os.replace``).  Deletion is safe under concurrent
        readers and writers: a reader that loses the race simply records a
        miss (and re-runs the deterministic call), a concurrent writer
        re-creates its entry with a fresh mtime.  Files that vanish mid-scan
        (another pruner, a concurrent ``_drop_corrupt``) are skipped.

        Returns ``{"kept": n, "kept_bytes": b, "removed": m,
        "removed_expired": e, "removed_tmp": t}`` (``removed`` includes the
        expired entries).
        """
        if max_entries is None and max_total_bytes is None and max_age_s is None:
            raise ValueError(
                "prune() needs at least one criterion: max_entries, "
                "max_total_bytes or max_age_s"
            )
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_total_bytes is not None and max_total_bytes < 0:
            raise ValueError("max_total_bytes must be non-negative")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError("max_age_s must be non-negative")
        now = time.time()
        entries: List[Tuple[float, int, Path]] = []
        removed_tmp = 0
        if self._version_dir.is_dir():
            for shard in self._version_dir.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.iterdir():
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    mtime = stat.st_mtime
                    if path.name.endswith((_SAMPLES_SUFFIX, _EVAL_SUFFIX)):
                        entries.append((mtime, int(stat.st_size), path))
                    elif ".tmp-" in path.name and now - mtime > max_tmp_age_s:
                        try:
                            path.unlink()
                            removed_tmp += 1
                        except OSError:
                            pass
        # Newest first; ties broken by name so concurrent pruners agree.
        entries.sort(key=lambda item: (-item[0], item[2].name))
        doomed: List[Path] = []
        survivors: List[Tuple[float, int, Path]] = []
        removed_expired = 0
        for mtime, size, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                doomed.append(path)
                removed_expired += 1
            else:
                survivors.append((mtime, size, path))
        kept = 0
        kept_bytes = 0
        over_budget = False
        for _, size, path in survivors:
            if not over_budget and (
                (max_entries is not None and kept + 1 > max_entries)
                or (max_total_bytes is not None and kept_bytes + size > max_total_bytes)
            ):
                over_budget = True
            if over_budget:
                doomed.append(path)
            else:
                kept += 1
                kept_bytes += size
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return {
            "kept": kept,
            "kept_bytes": kept_bytes,
            "removed": removed,
            "removed_expired": removed_expired,
            "removed_tmp": removed_tmp,
        }
