"""Versioned, pickle-free wire format for cross-process solve traffic.

Every payload is one *frame*::

    b"QRWF" | format_version (u8) | header_length (u32 LE) | header JSON | buffers

The JSON header carries all scalar fields plus a manifest of the numpy
buffers that follow (dtype string and shape); the buffers themselves are the
raw little-endian bytes, concatenated in manifest order.  Nothing is pickled:
a frame produced by one Python/numpy version decodes under any other, and a
hostile payload can at worst fail validation — it cannot execute code.

What travels on the wire is decided by the objects themselves
(:meth:`QUBOModel.to_wire` / :meth:`SampleSet.to_wire` — the serialization
hooks in :mod:`repro.qubo`); this module owns the framing and the composite
payloads (engine calls, requests, results).  Sparse models ship their CSR
triplet and are rebuilt as CSR — crossing a process boundary never densifies
a model.  Solvers travel as registry spec strings and are re-resolved inside
the receiving process.
"""

from __future__ import annotations

import json
import math
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.service.requests import SolveRequest, SolveResult

MAGIC = b"QRWF"
FORMAT_VERSION = 1

#: Version of the *conversation* protocol spoken over a transport (hello /
#: heartbeat / engine-call exchange), negotiated per connection via the hello
#: frames below.  Distinct from :data:`FORMAT_VERSION`, which versions the
#: byte layout of a single frame.
#:
#: Version history:
#:   1 — initial remote-farm protocol (hello / heartbeat / stats / engine call).
#:   2 — engine-call frames may carry an optional ``trace`` header field
#:       (propagated telemetry context) and stats-acks may carry a
#:       ``metrics`` snapshot.  Both are additive JSON keys that version-1
#:       peers never read, so 1 and 2 interoperate freely; the bump exists so
#:       fleets can *detect* telemetry-capable peers.
PROTOCOL_VERSION = 2
#: Protocol versions this build can speak (negotiation picks the highest
#: version both peers support).
SUPPORTED_PROTOCOL_VERSIONS = (1, PROTOCOL_VERSION)

_PREFIX = struct.Struct("<4sBI")  # magic, format version, header length


class WireFormatError(ValueError):
    """A payload is not a valid frame of the supported format version."""


# --------------------------------------------------------------------- helpers
def _jsonify(value):
    """Coerce numpy scalars/arrays inside free-form metadata to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return _jsonify(value.tolist())
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Free-form info values that are none of the above (e.g. a Path) degrade
    # to their string form rather than failing the whole frame.
    return str(value)


def _wire_buffer(buffer: np.ndarray) -> np.ndarray:
    """Contiguous little-endian view/copy of a buffer, ready to ship."""
    arr = np.ascontiguousarray(buffer)
    if arr.shape != np.shape(buffer):
        # np.ascontiguousarray promotes 0-d arrays to shape (1,); undo it so
        # the manifest records the true shape and round-trips are exact.
        arr = arr.reshape(np.shape(buffer))
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


# --------------------------------------------------------------------- framing
def encode_frame(kind: str, header: dict, buffers: Sequence[np.ndarray] = ()) -> bytes:
    """Assemble one frame from a header dict and its numpy buffers."""
    shipped = [_wire_buffer(buffer) for buffer in buffers]
    manifest = [{"dtype": arr.dtype.str, "shape": list(arr.shape)} for arr in shipped]
    payload = dict(header)
    payload["kind"] = kind
    payload["buffers"] = manifest
    header_bytes = json.dumps(_jsonify(payload), separators=(",", ":")).encode("utf-8")
    parts = [_PREFIX.pack(MAGIC, FORMAT_VERSION, len(header_bytes)), header_bytes]
    parts.extend(arr.tobytes() for arr in shipped)
    return b"".join(parts)


def decode_frame(
    data: bytes, expected_kind: Optional[str] = None
) -> Tuple[str, dict, List[np.ndarray]]:
    """Split a frame back into ``(kind, header, buffers)``, validating layout."""
    if len(data) < _PREFIX.size:
        raise WireFormatError(f"frame truncated: {len(data)} bytes")
    magic, version, header_length = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}; not a wire frame")
    if version != FORMAT_VERSION:
        raise WireFormatError(
            f"unsupported wire format version {version} (supported: {FORMAT_VERSION})"
        )
    offset = _PREFIX.size
    if len(data) < offset + header_length:
        raise WireFormatError("frame truncated inside the header")
    try:
        header = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"invalid frame header: {exc}") from exc
    offset += header_length
    kind = header.pop("kind", None)
    if expected_kind is not None and kind != expected_kind:
        raise WireFormatError(f"expected a {expected_kind!r} frame, got {kind!r}")
    buffers: List[np.ndarray] = []
    view = memoryview(data)
    for entry in header.pop("buffers", []):
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(axis) for axis in entry["shape"])
        if any(axis < 0 for axis in shape):
            # A negative axis would make nbytes negative and rewind `offset`,
            # aliasing buffers over each other — never a valid frame.
            raise WireFormatError(f"invalid buffer shape {shape} in frame manifest")
        # Python ints cannot wrap, so an absurd crafted shape fails the
        # truncation check below instead of slipping past it via overflow.
        nbytes = dtype.itemsize * math.prod(shape)
        if len(data) < offset + nbytes:
            raise WireFormatError("frame truncated inside a buffer")
        buffers.append(np.frombuffer(view[offset : offset + nbytes], dtype=dtype).reshape(shape))
        offset += nbytes
    if offset != len(data):
        raise WireFormatError(f"{len(data) - offset} trailing bytes after the last buffer")
    return str(kind), header, buffers


# ----------------------------------------------------------- concrete payloads
def encode_model(model: QUBOModel) -> bytes:
    """One QUBO model as a frame (dense array or CSR triplet + metadata)."""
    header, buffers = model.to_wire()
    return encode_frame("qubo_model", header, buffers)


def decode_model(data: bytes) -> QUBOModel:
    _, header, buffers = decode_frame(data, expected_kind="qubo_model")
    return QUBOModel.from_wire(header, buffers)


def encode_sample_set(samples: SampleSet) -> bytes:
    """One sample set as a frame (assignments/energies/occurrences + info)."""
    header, buffers = samples.to_wire()
    return encode_frame("sample_set", header, buffers)


def decode_sample_set(data: bytes) -> SampleSet:
    _, header, buffers = decode_frame(data, expected_kind="sample_set")
    return SampleSet.from_wire(header, buffers)


def encode_engine_call(
    model: QUBOModel,
    solver_spec: str,
    num_reads: int,
    seed: int,
    trace: Optional[dict] = None,
) -> bytes:
    """One engine call: the resolved model, a solver spec, reads and a seed.

    This is the unit of work the process pool ships to a worker.  The seed is
    always concrete by the time a call is encoded — the service derives child
    seeds for unseeded requests before dispatch, so the worker simply runs
    ``solver.sample(model, num_reads, rng=default_rng(seed))``.

    ``trace`` is the caller's telemetry context (``repro.obs.wire_context()``;
    protocol ≥ 2): an optional ``{"trace_id", "span_id"}`` dict the receiving
    worker re-activates so its spans stitch under the caller's.  ``None``
    omits the field entirely; version-1 decoders never read it.
    """
    model_header, buffers = model.to_wire()
    header = {
        "solver_spec": str(solver_spec),
        "num_reads": int(num_reads),
        "seed": int(seed),
        "model": model_header,
    }
    if trace is not None:
        header["trace"] = dict(trace)
    return encode_frame("engine_call", header, buffers)


def encode_engine_call_ref(
    fingerprint: str,
    solver_spec: str,
    num_reads: int,
    seed: int,
    trace: Optional[dict] = None,
) -> bytes:
    """An engine call referencing a model by fingerprint instead of shipping it.

    Workers memoise decoded models, so a sweep of many calls against one
    model only pays the model transfer once per worker; a worker that does
    not hold the fingerprint answers with a ``model_miss`` frame
    (:func:`encode_model_miss`) and the caller retries with the full payload.
    ``trace`` propagates the telemetry context exactly as in
    :func:`encode_engine_call`.
    """
    header = {
        "solver_spec": str(solver_spec),
        "num_reads": int(num_reads),
        "seed": int(seed),
        "model_ref": str(fingerprint),
    }
    if trace is not None:
        header["trace"] = dict(trace)
    return encode_frame("engine_call", header)


def encode_model_miss(fingerprint: str) -> bytes:
    """A worker's "I do not hold this model" answer to a by-reference call."""
    return encode_frame("model_miss", {"model_ref": str(fingerprint)})


def decode_engine_call(data: bytes) -> Tuple[QUBOModel, str, int, int]:
    """Decode a full engine call into ``(model, solver_spec, num_reads, seed)``.

    By-reference frames (``model_ref``) have no model payload and are handled
    by the worker loop directly; decoding one here is an error.
    """
    _, header, buffers = decode_frame(data, expected_kind="engine_call")
    if header.get("model_ref") is not None:
        raise WireFormatError("engine call is by-reference; it carries no model")
    model = QUBOModel.from_wire(header["model"], buffers)
    return model, str(header["solver_spec"]), int(header["num_reads"]), int(header["seed"])


# ------------------------------------------------------- control-plane frames
#
# Small header-only frames spoken over a long-lived transport (the remote
# solve farm's TCP connections): connection setup with protocol-version
# negotiation, liveness/heartbeat probes, and typed error replies.  They ride
# the same frame layout as the data-plane payloads, so one decoder handles
# everything a peer can say.


def encode_hello(
    protocol_versions: Sequence[int] = SUPPORTED_PROTOCOL_VERSIONS,
    info: Optional[dict] = None,
) -> bytes:
    """A client's connection opener: the protocol versions it can speak."""
    return encode_frame(
        "hello",
        {
            "protocol_versions": [int(v) for v in protocol_versions],
            "info": dict(info or {}),
        },
    )


def encode_hello_ack(protocol_version: int, info: Optional[dict] = None) -> bytes:
    """A server's hello reply: the negotiated version plus server metadata."""
    return encode_frame(
        "hello_ack",
        {"protocol_version": int(protocol_version), "info": dict(info or {})},
    )


def negotiate_protocol(offered: Sequence[int]) -> Optional[int]:
    """The highest protocol version both peers speak, or ``None`` if disjoint."""
    common = set(int(v) for v in offered) & set(SUPPORTED_PROTOCOL_VERSIONS)
    return max(common) if common else None


def encode_heartbeat(info: Optional[dict] = None) -> bytes:
    """A liveness probe; the peer answers with a heartbeat-ack frame."""
    return encode_frame("heartbeat", {"info": dict(info or {})})


def encode_heartbeat_ack(stats: Optional[dict] = None) -> bytes:
    """The heartbeat answer, carrying the worker's load/health counters."""
    return encode_frame("heartbeat_ack", {"stats": dict(stats or {})})


def encode_stats_request(info: Optional[dict] = None) -> bytes:
    """An explicit runtime-stats probe; the peer answers with a stats-ack.

    Distinct from the heartbeat so control-plane clients can ask "how loaded
    are you" without the liveness semantics (heartbeats reset health marks
    and are answered even by peers that do not track counters).
    """
    return encode_frame("stats", {"info": dict(info or {})})


def encode_stats_ack(stats: Optional[dict] = None) -> bytes:
    """The stats answer: admission / served / shed counters of the worker."""
    return encode_frame("stats_ack", {"stats": dict(stats or {})})


def encode_error(code: str, message: str, retryable: bool = False) -> bytes:
    """A typed error reply (``overloaded``, ``version_mismatch``, ``solve_error``...).

    ``retryable`` tells the client whether the same request may succeed
    elsewhere or later (a shed is retryable, a version mismatch is not).
    """
    return encode_frame(
        "error",
        {"code": str(code), "message": str(message), "retryable": bool(retryable)},
    )


def decode_error(header: dict) -> Tuple[str, str, bool]:
    """Split a decoded error-frame header into ``(code, message, retryable)``."""
    return (
        str(header.get("code", "unknown")),
        str(header.get("message", "")),
        bool(header.get("retryable", False)),
    )


def encode_request(request: SolveRequest, registry=None) -> bytes:
    """One :class:`SolveRequest` as a frame.

    The solver is reduced to its registry spec (via
    :meth:`~repro.service.registry.SolverRegistry.spec_for` when an instance
    was given) and problem-based requests materialise their relaxed model
    through the problem's encoding cache — what travels is always
    ``(model, spec, reads, seed, label)``, the reproducible core of the call.
    The ``from_problem``/``relaxation_parameter`` header fields are audit
    provenance only: problems are not serialisable, so :func:`decode_request`
    reconstructs a model-based request and leaves them unread.
    """
    from repro.service.registry import SolverRegistry

    registry = registry or SolverRegistry.default()
    spec = registry.spec_for(request.solver)
    model_header, buffers = request.resolve_model().to_wire()
    header = {
        "solver_spec": spec,
        "num_reads": int(request.num_reads),
        "seed": None if request.seed is None else int(request.seed),
        "label": request.label,
        "from_problem": request.problem is not None,
        "relaxation_parameter": (
            None
            if request.relaxation_parameter is None
            else float(request.relaxation_parameter)
        ),
        "model": model_header,
    }
    return encode_frame("solve_request", header, buffers)


def decode_request(data: bytes) -> SolveRequest:
    """Decode a request frame into a model-based :class:`SolveRequest`."""
    _, header, buffers = decode_frame(data, expected_kind="solve_request")
    return _request_from_header(header, buffers)


def _request_from_header(header: dict, buffers: Sequence[np.ndarray]) -> SolveRequest:
    model = QUBOModel.from_wire(header["model"], buffers)
    seed = header.get("seed")
    return SolveRequest(
        solver=str(header["solver_spec"]),
        model=model,
        num_reads=int(header["num_reads"]),
        seed=None if seed is None else int(seed),
        label=str(header.get("label", "")),
    )


def encode_result(result: SolveResult, registry=None) -> bytes:
    """One :class:`SolveResult` as a frame: request + samples + provenance."""
    from repro.service.registry import SolverRegistry

    registry = registry or SolverRegistry.default()
    request = result.request
    request_header = {
        "solver_spec": registry.spec_for(request.solver),
        "num_reads": int(request.num_reads),
        "seed": None if request.seed is None else int(request.seed),
        "label": request.label,
        "model": None,
    }
    model_header, model_buffers = request.resolve_model().to_wire()
    request_header["model"] = model_header
    samples_header, samples_buffers = result.samples.to_wire()
    header = {
        "request": request_header,
        "samples": samples_header,
        "solver_name": result.solver_name,
        "solver_fingerprint": result.solver_fingerprint,
        "from_cache": bool(result.from_cache),
        "batched_group_size": int(result.batched_group_size),
        "num_model_buffers": len(model_buffers),
    }
    return encode_frame("solve_result", header, tuple(model_buffers) + samples_buffers)


def decode_result(data: bytes) -> SolveResult:
    _, header, buffers = decode_frame(data, expected_kind="solve_result")
    split = int(header["num_model_buffers"])
    request = _request_from_header(header["request"], buffers[:split])
    samples = SampleSet.from_wire(header["samples"], buffers[split:])
    return SolveResult(
        request=request,
        samples=samples,
        solver_name=str(header["solver_name"]),
        solver_fingerprint=str(header["solver_fingerprint"]),
        from_cache=bool(header["from_cache"]),
        batched_group_size=int(header["batched_group_size"]),
    )
