"""Distributed execution subsystem of the solve service.

Three pieces, layered so each is useful on its own:

* :mod:`~repro.service.distributed.wire` — a compact, versioned, pickle-free
  wire format (JSON header + raw numpy buffers) for QUBO models (dense *and*
  CSR, never densifying), sample sets, solve requests/results and engine
  calls, so work can cross process boundaries;
* :mod:`~repro.service.distributed.backends` — the :class:`ExecutionBackend`
  seam behind :class:`~repro.service.service.SolveService`: the in-thread
  backend (today's behaviour, byte-identical) and
  :class:`ProcessPoolBackend`, which ships engine calls to spawn-safe worker
  processes that re-resolve the solver from its registry spec; and
* :mod:`~repro.service.distributed.sharded_cache` — an on-disk,
  fingerprint-sharded result store :class:`~repro.service.cache.SolverCallCache`
  tiers onto, giving repeated ``(model, solver, seed)`` calls cache hits
  across processes and across runs.

The TCP solve farm in :mod:`repro.service.remote` builds on the first two
layers: its workers execute the same engine-call frames through
:class:`~repro.service.distributed.backends.EngineCallRunner`, and its client
is a third :class:`ExecutionBackend` (``"remote"``).
"""

from repro.service.distributed.backends import (
    EXECUTION_BACKEND_ENV,
    EngineCallRunner,
    ExecutionBackend,
    ProcessPoolBackend,
    SolverSpecCache,
    ThreadExecutionBackend,
    resolve_backend,
    shared_backend,
)
from repro.service.distributed.sharded_cache import ShardedResultCache
from repro.service.distributed.wire import (
    WireFormatError,
    decode_engine_call,
    decode_model,
    decode_request,
    decode_result,
    decode_sample_set,
    encode_engine_call,
    encode_model,
    encode_request,
    encode_result,
    encode_sample_set,
)

__all__ = [
    "EXECUTION_BACKEND_ENV",
    "EngineCallRunner",
    "ExecutionBackend",
    "SolverSpecCache",
    "ThreadExecutionBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "shared_backend",
    "ShardedResultCache",
    "WireFormatError",
    "encode_model",
    "decode_model",
    "encode_sample_set",
    "decode_sample_set",
    "encode_engine_call",
    "decode_engine_call",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
]
