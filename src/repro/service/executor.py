"""Shared thread pools backing the solve service.

Two pools with distinct roles:

* the *request pool* (owned by each :class:`~repro.service.service.SolveService`
  instance) runs whole solver calls submitted through the service, and
* the module-level *read pool* runs the per-read inner loops of solvers whose
  reads are embarrassingly parallel (currently the qbsolv decomposer).

Keeping them separate means a solver running inside a request-pool worker can
fan its reads out without risking the classic nested-thread-pool deadlock
(parents occupying every worker while waiting for their own children).

Numpy releases the GIL inside BLAS/CSR kernels, so threads — not processes —
are the right level of parallelism here; states never need pickling and the
QUBO matrix is shared read-only.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

#: Environment variable overriding the read-pool width; ``0`` or ``1`` disables
#: the pool entirely (reads then run serially in the calling thread).
READ_WORKERS_ENV = "QROSS_READ_WORKERS"

_read_executor: Optional[ThreadPoolExecutor] = None
_read_workers: int = 0
#: Pools replaced by a mid-run width change.  They are *not* shut down at
#: replacement time: a solver that fetched the old pool reference may still be
#: fanning reads out to it, and ``ThreadPoolExecutor.shutdown`` immediately
#: rejects new submissions.  Retired pools idle (their threads park on an
#: empty queue) until :func:`shutdown_read_executor` drains them — except that
#: the list is bounded: beyond :data:`_MAX_RETIRED_READ_EXECUTORS` generations
#: the oldest pool is shut down without waiting (its in-flight reads still
#: finish; only a caller clinging to a reference across that many width
#: changes could see a rejected submission).
_retired_read_executors: list = []
_MAX_RETIRED_READ_EXECUTORS = 4
_lock = threading.Lock()


def default_worker_count() -> int:
    """Pool width used when nothing is configured: modest, laptop-friendly."""
    return min(8, os.cpu_count() or 1)


def read_executor() -> Optional[ThreadPoolExecutor]:
    """The process-wide pool for per-read solver parallelism.

    Returns ``None`` when the configured width is <= 1, in which case callers
    should fall back to a serial loop.  The pool is created lazily on first
    use and shared by every solver in the process.
    """
    global _read_executor, _read_workers
    workers = _configured_read_workers()
    if workers <= 1:
        return None
    with _lock:
        if _read_executor is None or _read_workers != workers:
            if _read_executor is not None:
                # Defer teardown: callers holding the old reference must be
                # able to finish (and even submit) their in-flight fan-outs.
                _retired_read_executors.append(_read_executor)
                while len(_retired_read_executors) > _MAX_RETIRED_READ_EXECUTORS:
                    _retired_read_executors.pop(0).shutdown(wait=False)
            _read_executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="qross-read"
            )
            _read_workers = workers
        return _read_executor


def read_worker_count() -> int:
    """Number of workers per-read parallel solvers will use (1 = serial)."""
    return max(1, _configured_read_workers())


def shutdown_read_executor() -> None:
    """Tear down the shared read pool and drain any pools retired by rebuilds
    (used by tests and interpreter exit)."""
    global _read_executor, _read_workers
    with _lock:
        executors = list(_retired_read_executors)
        _retired_read_executors.clear()
        if _read_executor is not None:
            executors.append(_read_executor)
            _read_executor = None
            _read_workers = 0
    for executor in executors:
        executor.shutdown(wait=True)


def _configured_read_workers() -> int:
    raw = os.environ.get(READ_WORKERS_ENV)
    if raw is None:
        return default_worker_count()
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{READ_WORKERS_ENV} must be an integer, got {raw!r}"
        ) from exc
