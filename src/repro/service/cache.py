"""Cache of solver calls: aggregate statistics and seeded sample-set dedup.

Aggregate entries are keyed by (instance, solver, parameter, reads).
Both the surrogate training data collection and the tuning comparison evaluate
many ``(instance, A)`` pairs; repeated evaluations (e.g. two methods proposing
the same parameter, or re-running a figure) can reuse the cached statistics.
The cache stores only aggregate statistics — never raw assignments — so it
stays small and can be persisted to JSON.

The :class:`~repro.service.service.SolveService` additionally dedupes whole
*seeded* solver calls through this class: identical requests (same QUBO
fingerprint, solver fingerprint, reads and seed) execute the engine exactly
once and every duplicate is served the stored :class:`SampleSet`.  Sample-set
entries are deterministic by construction (the seed pins the stream), live
only in memory, and are never part of the JSON persistence.

All mutating paths are lock-protected so the cache can sit behind a
thread-pooled service.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.dataset import evaluate_parameter
from repro.problems.base import ConstrainedProblem
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CachedEvaluation:
    """Aggregate outcome of one solver call."""

    probability_of_feasibility: float
    energy_mean: float
    energy_std: float
    best_fitness: Optional[float]


class SolverCallCache:
    """In-memory (optionally JSON-persisted) cache of solver-call statistics.

    ``max_sample_entries`` bounds the sample-set dedup store: unlike the tiny
    aggregate entries, each sample set holds a full ``(reads, n)`` assignment
    matrix, so the store is an LRU — least-recently-used sets are evicted once
    the bound is hit (an evicted seeded request simply re-runs, bitwise
    identically, on its next appearance).
    """

    def __init__(self, max_sample_entries: int = 256) -> None:
        if max_sample_entries <= 0:
            raise ValueError("max_sample_entries must be positive")
        self._entries: Dict[str, CachedEvaluation] = {}
        self._samples: "OrderedDict[str, SampleSet]" = OrderedDict()
        self.max_sample_entries = max_sample_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------------- keying
    @staticmethod
    def evaluation_key(
        problem: ConstrainedProblem, solver: QUBOSolver, parameter: float, num_reads: int
    ) -> str:
        """Cache key of an aggregate (instance, solver, parameter, reads) evaluation."""
        fingerprint = getattr(problem, "instance", problem)
        fingerprint = getattr(fingerprint, "fingerprint", lambda: problem.name)()
        # The solver name alone is ambiguous: two instances of the same backend
        # with different configs (e.g. SA with 100 vs 1000 sweeps) produce very
        # different statistics, so the config fingerprint is part of the key.
        solver_id = f"{solver.name}:{solver.config_fingerprint()}"
        return f"{fingerprint}|{solver_id}|{parameter:.9g}|{num_reads}"

    # Backwards-compatible private alias (pre-service callers used _key).
    _key = evaluation_key

    @staticmethod
    def sample_key(model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int) -> str:
        """Cache key of one full seeded solver call (sample-set dedup)."""
        solver_id = f"{solver.name}:{solver.config_fingerprint()}"
        return f"samples|{model.fingerprint()}|{solver_id}|{num_reads}|{seed}"

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_sample_entries(self) -> int:
        return len(self._samples)

    # ----------------------------------------------------------- entry access
    def lookup(self, key: str) -> Optional[CachedEvaluation]:
        """Fetch an aggregate entry, counting the hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def store(self, key: str, entry: CachedEvaluation) -> None:
        with self._lock:
            self._entries[key] = entry

    def lookup_samples(self, key: str) -> Optional[SampleSet]:
        """Fetch a deduped sample set, counting the hit or miss."""
        with self._lock:
            samples = self._samples.get(key)
            if samples is None:
                self.misses += 1
            else:
                self.hits += 1
                self._samples.move_to_end(key)
            return samples

    def store_samples(self, key: str, samples: SampleSet) -> None:
        with self._lock:
            self._samples[key] = samples
            self._samples.move_to_end(key)
            while len(self._samples) > self.max_sample_entries:
                self._samples.popitem(last=False)

    def evaluate(
        self,
        problem: ConstrainedProblem,
        solver: QUBOSolver,
        parameter: float,
        num_reads: int,
        rng: RngLike = None,
    ) -> CachedEvaluation:
        """Evaluate a parameter through the cache."""
        key = self.evaluation_key(problem, solver, parameter, num_reads)
        entry = self.lookup(key)
        if entry is not None:
            return entry
        rng = ensure_rng(rng)
        pf, energy_mean, energy_std, best_fitness = evaluate_parameter(
            problem, solver, parameter, num_reads, rng=rng
        )
        entry = CachedEvaluation(
            probability_of_feasibility=pf,
            energy_mean=energy_mean,
            energy_std=energy_std,
            best_fitness=best_fitness,
        )
        self.store(key, entry)
        return entry

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Write the aggregate entries to a JSON file (sample sets stay in memory)."""
        payload = {
            key: {
                "pf": entry.probability_of_feasibility,
                "energy_mean": entry.energy_mean,
                "energy_std": entry.energy_std,
                "best_fitness": entry.best_fitness,
            }
            for key, entry in self._entries.items()
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SolverCallCache":
        """Restore a cache written by :meth:`save`."""
        cache = cls()
        payload = json.loads(Path(path).read_text())
        for key, entry in payload.items():
            cache._entries[key] = CachedEvaluation(
                probability_of_feasibility=float(entry["pf"]),
                energy_mean=float(entry["energy_mean"]),
                energy_std=float(entry["energy_std"]),
                best_fitness=None if entry["best_fitness"] is None else float(entry["best_fitness"]),
            )
        return cache
