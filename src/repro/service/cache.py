"""Cache of solver calls: aggregate statistics and seeded sample-set dedup.

Aggregate entries are keyed by (instance, solver, parameter, reads).
Both the surrogate training data collection and the tuning comparison evaluate
many ``(instance, A)`` pairs; repeated evaluations (e.g. two methods proposing
the same parameter, or re-running a figure) can reuse the cached statistics.
The cache stores only aggregate statistics — never raw assignments — so it
stays small and can be persisted to JSON.

The :class:`~repro.service.service.SolveService` additionally dedupes whole
*seeded* solver calls through this class: identical requests (same QUBO
fingerprint, solver fingerprint, reads and seed) execute the engine exactly
once and every duplicate is served the stored :class:`SampleSet`.  Sample-set
entries are deterministic by construction (the seed pins the stream) and live
in memory; they are never part of the JSON persistence — to keep them across
processes and runs, tier the cache onto a
:class:`~repro.service.distributed.sharded_cache.ShardedResultCache` via the
``persistent=`` parameter, which write-throughs sample sets to a
fingerprint-sharded on-disk store and falls back to it on memory misses
(aggregate evaluation entries additionally require the
``persist_evaluations=True`` opt-in — their keys carry no seed).

All mutating paths are lock-protected so the cache can sit behind a
thread-pooled service.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro import obs
from repro.utils.io import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (distributed imports us)
    from repro.service.distributed.sharded_cache import ShardedResultCache

from repro.core.dataset import evaluate_parameter
from repro.problems.base import ConstrainedProblem
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CachedEvaluation:
    """Aggregate outcome of one solver call."""

    probability_of_feasibility: float
    energy_mean: float
    energy_std: float
    best_fitness: Optional[float]

    def to_json_dict(self) -> dict:
        """The JSON shape shared by every persistence path (save files, disk tiers)."""
        return {
            "pf": self.probability_of_feasibility,
            "energy_mean": self.energy_mean,
            "energy_std": self.energy_std,
            "best_fitness": self.best_fitness,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "CachedEvaluation":
        return cls(
            probability_of_feasibility=float(payload["pf"]),
            energy_mean=float(payload["energy_mean"]),
            energy_std=float(payload["energy_std"]),
            best_fitness=(
                None if payload["best_fitness"] is None else float(payload["best_fitness"])
            ),
        )


class SolverCallCache:
    """In-memory (optionally JSON-persisted) cache of solver-call statistics.

    ``max_sample_entries`` bounds the sample-set dedup store: unlike the tiny
    aggregate entries, each sample set holds a full ``(reads, n)`` assignment
    matrix, so the store is an LRU — least-recently-used sets are evicted once
    the bound is hit (an evicted seeded request simply re-runs, bitwise
    identically, on its next appearance — or is re-read from the persistent
    tier, which the LRU bound does not apply to).

    ``persistent`` tiers the cache onto an on-disk
    :class:`~repro.service.distributed.sharded_cache.ShardedResultCache`:
    every sample-set store is written through, every memory miss falls back to
    disk (and re-populates memory on a hit), so identical seeded calls hit
    across processes and across runs.  Sample keys include the seed, so a disk
    hit is *exact* — the entry is bit-identical to re-running the call.

    Aggregate evaluation entries are keyed **without** a seed (the historical
    within-run dedup semantics), so persisting them would let one run serve
    statistics produced by another run's random stream.  That is only sound
    when callers treat the statistics as interchangeable estimates, so it is
    opt-in: ``persist_evaluations=True``.
    """

    def __init__(
        self,
        max_sample_entries: int = 256,
        persistent: "Optional[ShardedResultCache]" = None,
        persist_evaluations: bool = False,
    ) -> None:
        if max_sample_entries <= 0:
            raise ValueError("max_sample_entries must be positive")
        if persist_evaluations and persistent is None:
            raise ValueError("persist_evaluations=True requires persistent=")
        self._entries: Dict[str, CachedEvaluation] = {}
        self._samples: "OrderedDict[str, SampleSet]" = OrderedDict()
        self.max_sample_entries = max_sample_entries
        self.persistent = persistent
        self.persist_evaluations = persist_evaluations
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Process-wide registry mirrors of the per-instance counters above.
        self._hit_metric = obs.counter(
            "qross_cache_lookups_total",
            labels={"cache": "call", "result": "hit"},
            help="Solver-call cache lookups by outcome",
        )
        self._miss_metric = obs.counter(
            "qross_cache_lookups_total",
            labels={"cache": "call", "result": "miss"},
            help="Solver-call cache lookups by outcome",
        )
        self._evict_metric = obs.counter(
            "qross_cache_evictions_total",
            labels={"cache": "call"},
            help="Sample-set entries evicted at the LRU bound",
        )

    # ----------------------------------------------------------------- keying
    @staticmethod
    def evaluation_key(
        problem: ConstrainedProblem, solver: QUBOSolver, parameter: float, num_reads: int
    ) -> str:
        """Cache key of an aggregate (instance, solver, parameter, reads) evaluation.

        Deliberately seed-free (the historical within-run dedup semantics):
        two evaluations of the same tuple are treated as interchangeable
        estimates.  That also means the key does not distinguish *execution
        backends* — the in-process path consumes the caller's live stream
        while out-of-process backends derive a child seed, so a cache shared
        across differently-backed services serves whichever stream's
        statistics landed first.  Callers that need stream-exact results
        should key on the sample path (:meth:`sample_key`, which includes the
        seed) or use per-run caches.
        """
        fingerprint = getattr(problem, "instance", problem)
        fingerprint = getattr(fingerprint, "fingerprint", lambda: problem.name)()
        # The solver name alone is ambiguous: two instances of the same backend
        # with different configs (e.g. SA with 100 vs 1000 sweeps) produce very
        # different statistics, so the config fingerprint is part of the key.
        solver_id = f"{solver.name}:{solver.config_fingerprint()}"
        return f"{fingerprint}|{solver_id}|{parameter:.9g}|{num_reads}"

    # Backwards-compatible private alias (pre-service callers used _key).
    _key = evaluation_key

    @staticmethod
    def sample_key(model: QUBOModel, solver: QUBOSolver, num_reads: int, seed: int) -> str:
        """Cache key of one full seeded solver call (sample-set dedup)."""
        solver_id = f"{solver.name}:{solver.config_fingerprint()}"
        return f"samples|{model.fingerprint()}|{solver_id}|{num_reads}|{seed}"

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_sample_entries(self) -> int:
        return len(self._samples)

    # ----------------------------------------------------------- entry access
    def lookup(self, key: str) -> Optional[CachedEvaluation]:
        """Fetch an aggregate entry (memory, then the opt-in persistent tier)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._hit_metric.inc()
                return entry
            if not self.persist_evaluations:
                self.misses += 1
                self._miss_metric.inc()
                return None
        # Disk I/O happens outside the lock; a hit re-populates memory.
        entry = self.persistent.lookup_evaluation(key)
        with self._lock:
            if entry is None:
                self.misses += 1
                self._miss_metric.inc()
            else:
                self.hits += 1
                self._hit_metric.inc()
                self._entries[key] = entry
        return entry

    def store(self, key: str, entry: CachedEvaluation) -> None:
        with self._lock:
            self._entries[key] = entry
        if self.persist_evaluations:
            self.persistent.store_evaluation(key, entry)

    def lookup_samples(self, key: str) -> Optional[SampleSet]:
        """Fetch a deduped sample set (memory LRU, then the persistent tier)."""
        with self._lock:
            samples = self._samples.get(key)
            if samples is not None:
                self.hits += 1
                self._hit_metric.inc()
                self._samples.move_to_end(key)
                return samples
            if self.persistent is None:
                self.misses += 1
                self._miss_metric.inc()
                return None
        samples = self.persistent.lookup_samples(key)
        with self._lock:
            if samples is None:
                self.misses += 1
                self._miss_metric.inc()
            else:
                self.hits += 1
                self._hit_metric.inc()
                self._store_samples_locked(key, samples)
        return samples

    def store_samples(self, key: str, samples: SampleSet) -> None:
        with self._lock:
            self._store_samples_locked(key, samples)
        if self.persistent is not None:
            self.persistent.store_samples(key, samples)

    def _store_samples_locked(self, key: str, samples: SampleSet) -> None:
        self._samples[key] = samples
        self._samples.move_to_end(key)
        while len(self._samples) > self.max_sample_entries:
            self._samples.popitem(last=False)
            self._evict_metric.inc()

    def evaluate(
        self,
        problem: ConstrainedProblem,
        solver: QUBOSolver,
        parameter: float,
        num_reads: int,
        rng: RngLike = None,
    ) -> CachedEvaluation:
        """Evaluate a parameter through the cache."""
        key = self.evaluation_key(problem, solver, parameter, num_reads)
        entry = self.lookup(key)
        if entry is not None:
            return entry
        rng = ensure_rng(rng)
        pf, energy_mean, energy_std, best_fitness = evaluate_parameter(
            problem, solver, parameter, num_reads, rng=rng
        )
        entry = CachedEvaluation(
            probability_of_feasibility=pf,
            energy_mean=energy_mean,
            energy_std=energy_std,
            best_fitness=best_fitness,
        )
        self.store(key, entry)
        return entry

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Write the aggregate entries to a JSON file, atomically.

        The payload is written to a temp file in the destination directory and
        moved into place with ``os.replace``, so a *process* crash mid-save
        (or two processes saving concurrently) can never leave a
        truncated/interleaved file behind — a reader sees either the old
        complete file or the new one.  (Power-loss durability is out of
        scope: the write is not fsynced before the rename.)

        Only the aggregate statistics are persisted.  **Sample sets are
        deliberately not included**: each one holds a full ``(reads, n)``
        assignment matrix, which does not belong in a JSON summary file.  To
        persist them — and the aggregate entries — across processes and runs,
        construct the cache with
        ``persistent=ShardedResultCache(directory)``; every entry is then
        write-through to disk as it is created, which supersedes ``save`` for
        everything except producing a single shareable summary file.
        """
        with self._lock:
            payload = {key: entry.to_json_dict() for key, entry in self._entries.items()}
        atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))

    @classmethod
    def load(cls, path: str | Path) -> "SolverCallCache":
        """Restore a cache written by :meth:`save`."""
        cache = cls()
        payload = json.loads(Path(path).read_text())
        for key, entry in payload.items():
            cache._entries[key] = CachedEvaluation.from_json_dict(entry)
        return cache
