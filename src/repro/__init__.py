"""QROSS reproduction: QUBO relaxation-parameter optimisation via learning solver surrogates.

The package is organised bottom-up:

* :mod:`repro.qubo` — QUBO models, penalty construction, sample batches;
* :mod:`repro.solvers` — simulated annealing, a Digital-Annealer-style solver,
  tabu search, a qbsolv-style decomposer and a noisy "quantum" annealer;
* :mod:`repro.problems` — TSP and MVC substrates with their QUBO relaxations;
* :mod:`repro.nn` — a small numpy neural-network library;
* :mod:`repro.core` — the QROSS contribution: solver surrogate, MFS/PBS/OFS
  strategies and the composed tuner;
* :mod:`repro.tuning` — the generic baselines (Random Search, TPE, Bayesian
  Optimisation);
* :mod:`repro.experiments` — profiles, runners and generators for every figure
  and table in the paper.

Solving a QUBO is one call through the solve service::

    import repro

    result = repro.solve(problem=problem, solver="da", num_reads=64,
                         relaxation_parameter=12.5, seed=0)
    print(result.best_energy)

Problems encode sparse-first: ``problem.encode()`` caches a frozen
:class:`repro.RelaxedEncoding` (``H_B``, ``H_A``) built through
:class:`repro.QUBOAccumulator`, and the relaxed ``H_B + A * H_A`` is composed
lazily — large sparse instances (e.g. MVC on a 5000-vertex graph) never touch
a dense ``n x n`` array.

Solvers are constructed from registry specs (``"sa"``, ``"tabu?tenure=16"``,
``repro.make_solver("sa", num_sweeps=2000)``); batched and asynchronous
workloads go through :class:`repro.service.SolveService`.

Reproducing the paper end to end::

    from repro.experiments import resolve_profile, build_problems, train_surrogate_for_solver
    from repro.experiments import qross_tuner_factory, baseline_tuner_factories, run_comparison

    profile = resolve_profile("smoke")
    datasets = build_problems(profile)
    surrogate, solver, _ = train_surrogate_for_solver(profile, "da", datasets.train_problems)
    factories = {"QROSS": qross_tuner_factory(surrogate), **baseline_tuner_factories()}
    result = run_comparison(datasets.test_problems, solver, factories,
                            num_trials=profile.num_trials, num_reads=profile.num_reads, rng=0)
    print({m: s.at_trial(3) for m, s in result.summaries().items()})
"""

from repro.core.surrogate import SolverSurrogate, SurrogateConfig
from repro.core.tuner import QROSSTuner
from repro.portfolio import (
    OutcomeLog,
    PortfolioConfig,
    PortfolioSolver,
    harvest_outcomes,
)
from repro.problems.mvc import MVCInstance, MVCProblem
from repro.problems.tsp import TSPInstance, TSPProblem
from repro.qubo import QUBOAccumulator, QUBOModel, RelaxedEncoding
from repro.service import (
    SolveRequest,
    SolveResult,
    SolverRegistry,
    SolveService,
    make_solver,
    solve,
)
from repro.solvers import (
    DigitalAnnealerSolver,
    ParallelTemperingSolver,
    QbsolvSolver,
    QuantumAnnealerSolver,
    SimulatedAnnealingSolver,
    TabuSearchSolver,
)
from repro.tuning import (
    BayesianOptimisationTuner,
    ParameterBounds,
    RandomSearchTuner,
    TPETuner,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "QUBOModel",
    "QUBOAccumulator",
    "RelaxedEncoding",
    "solve",
    "make_solver",
    "SolverRegistry",
    "SolveRequest",
    "SolveResult",
    "SolveService",
    "SimulatedAnnealingSolver",
    "DigitalAnnealerSolver",
    "ParallelTemperingSolver",
    "TabuSearchSolver",
    "QbsolvSolver",
    "QuantumAnnealerSolver",
    "PortfolioSolver",
    "PortfolioConfig",
    "OutcomeLog",
    "harvest_outcomes",
    "TSPInstance",
    "TSPProblem",
    "MVCInstance",
    "MVCProblem",
    "SolverSurrogate",
    "SurrogateConfig",
    "QROSSTuner",
    "ParameterBounds",
    "RandomSearchTuner",
    "TPETuner",
    "BayesianOptimisationTuner",
]
