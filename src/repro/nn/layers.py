"""Neural-network modules: base class, dense layers, activations and regularisers.

A module maps a batch ``(batch, features)`` to another batch and supports
reverse-mode differentiation via :meth:`Module.backward`.  Everything is plain
numpy; the surrogate network in this project is small enough (a few thousand
parameters) that this is faster than the overhead of a heavyweight framework.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.nn.initializers import glorot_uniform, he_normal, zeros
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, ensure_rng


class Module(abc.ABC):
    """Base class of every differentiable building block."""

    training: bool = True

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the module output and cache whatever backward needs."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the gradient w.r.t. the input."""

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this module (empty by default)."""
        return []

    def train(self) -> None:
        """Switch to training mode (enables dropout etc.)."""
        self.training = True

    def eval(self) -> None:
        """Switch to inference mode."""
        self.training = False

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)


class Dense(Module):
    """Fully-connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: RngLike = None,
        initializer: str = "he",
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = ensure_rng(rng)
        if initializer == "he":
            weights = he_normal(in_features, out_features, rng)
        elif initializer == "glorot":
            weights = glorot_uniform(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown initializer: {initializer!r}")
        self.weight = Parameter(weights, name=f"{name}.weight")
        self.bias = Parameter(zeros(out_features), name=f"{name}.bias")
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._inputs = inputs
        return inputs @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = sigmoid(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Softplus(Module):
    """Softplus activation ``log(1 + exp(x))`` — used for strictly-positive outputs."""

    def __init__(self) -> None:
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        return np.logaddexp(0.0, inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        return grad_output * sigmoid(self._inputs)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.1, rng: RngLike = None) -> None:
        if not (0.0 <= rate < 1.0):
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class LayerNorm(Module):
    """Layer normalisation over the feature dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5, name: str = "layernorm") -> None:
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        mean = inputs.mean(axis=1, keepdims=True)
        var = inputs.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (inputs - mean) * inv_std
        self._cache = (normalised, inv_std, inputs)
        return normalised * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalised, inv_std, inputs = self._cache
        num_features = inputs.shape[1]
        self.gamma.grad += (grad_output * normalised).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_norm = grad_output * self.gamma.value
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=1, keepdims=True)
            - normalised * (grad_norm * normalised).mean(axis=1, keepdims=True)
        ) * inv_std
        return grad_input

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
