"""Gradient-descent optimisers for the numpy neural-network substrate."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer(abc.ABC):
    """Updates a fixed set of parameters from their accumulated gradients."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.value += velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
