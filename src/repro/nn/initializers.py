"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def glorot_uniform(fan_in: int, fan_out: int, rng: RngLike = None) -> np.ndarray:
    """Glorot / Xavier uniform initialisation, appropriate for tanh / sigmoid units."""
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: RngLike = None) -> np.ndarray:
    """He normal initialisation, appropriate for ReLU units."""
    rng = ensure_rng(rng)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
