"""Loss functions: mean squared error, Huber and binary cross-entropy.

The paper trains the feasibility head with binary cross-entropy and the energy
heads with Huber loss ("as we are expecting many outliers in the dataset, due
to the stochastic nature of a QUBO solver").
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn.layers import sigmoid


class Loss(abc.ABC):
    """Scalar loss over a batch with an analytic gradient w.r.t. the predictions."""

    @abc.abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss w.r.t. ``predictions``."""

    @staticmethod
    def _validate(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
        return predictions, targets


class MSELoss(Loss):
    """Mean squared error."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear in the tails (robust to outliers)."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        error = predictions - targets
        abs_error = np.abs(error)
        quadratic = 0.5 * error**2
        linear = self.delta * (abs_error - 0.5 * self.delta)
        return float(np.mean(np.where(abs_error <= self.delta, quadratic, linear)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        error = predictions - targets
        grad = np.clip(error, -self.delta, self.delta)
        return grad / predictions.size


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on raw logits (numerically stable).

    Targets may be soft probabilities (the empirical ``Pf`` of a batch of reads
    is a fraction, not a hard label).
    """

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits, targets = self._validate(predictions, targets)
        # log(1 + exp(-|x|)) + max(x, 0) - x * t  is the stable form.
        loss = np.logaddexp(0.0, -np.abs(logits)) + np.maximum(logits, 0.0) - logits * targets
        return float(np.mean(loss))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        logits, targets = self._validate(predictions, targets)
        return (sigmoid(logits) - targets) / logits.size
