"""Graph-convolutional encoder producing fixed-size graph-level embeddings.

Appendix C/G of the paper uses a pre-trained graph convolutional network (Joshi
et al. 2019) as the TSP feature extractor and aggregates its edge-level features
into graph-level ones.  Without that pre-trained PyTorch model we provide a
small numpy GCN with the same *role*: it consumes the (normalised) distance
matrix as a dense graph, runs a few rounds of neighbourhood aggregation over
per-node features and mean/max-pools the node embeddings into a fixed-size
vector.  It is an optional alternative to the hand-crafted statistics in
:mod:`repro.core.features`; the surrogate accepts either.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers import Dense, Module, ReLU
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, ensure_rng


class GraphConvEncoder(Module):
    """Mean-aggregation GCN over dense weighted graphs.

    The encoder is *not* trained jointly with the surrogate by default (the
    paper likewise freezes its pre-trained extractor); it acts as a fixed random
    projection of the graph structure, which is sufficient for the surrogate's
    fully-connected head to pick up instance-level structure.

    Parameters
    ----------
    node_feature_dim:
        Number of per-node input features (see :meth:`node_features`).
    hidden_dim:
        Width of each graph-convolution layer.
    num_layers:
        Number of aggregation rounds.
    """

    def __init__(
        self,
        node_feature_dim: int = 4,
        hidden_dim: int = 16,
        num_layers: int = 2,
        rng: RngLike = None,
    ) -> None:
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = ensure_rng(rng)
        self.node_feature_dim = node_feature_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self._self_layers: List[Dense] = []
        self._neighbour_layers: List[Dense] = []
        in_dim = node_feature_dim
        for index in range(num_layers):
            self._self_layers.append(Dense(in_dim, hidden_dim, rng=rng, name=f"gcn{index}.self"))
            self._neighbour_layers.append(
                Dense(in_dim, hidden_dim, rng=rng, name=f"gcn{index}.neigh")
            )
            in_dim = hidden_dim
        self._activation = ReLU()

    # ------------------------------------------------------------------ sizes
    @property
    def embedding_dim(self) -> int:
        """Size of the graph-level embedding (mean-pool + max-pool concatenation)."""
        return 2 * self.hidden_dim

    # ---------------------------------------------------------------- forward
    @staticmethod
    def node_features(distance_matrix: np.ndarray) -> np.ndarray:
        """Per-node features derived from a normalised distance matrix.

        Features: mean, min (excluding self), max distance to other nodes and
        the node's share of the total distance mass.
        """
        D = np.asarray(distance_matrix, dtype=np.float64)
        n = D.shape[0]
        off_diag = D + np.eye(n) * D.max(initial=1.0)
        total = D.sum() if D.sum() > 0 else 1.0
        return np.column_stack(
            [
                D.mean(axis=1),
                off_diag.min(axis=1),
                D.max(axis=1),
                D.sum(axis=1) / total,
            ]
        )

    def encode(self, distance_matrix: np.ndarray) -> np.ndarray:
        """Graph-level embedding of one instance's (normalised) distance matrix."""
        D = np.asarray(distance_matrix, dtype=np.float64)
        if D.ndim != 2 or D.shape[0] != D.shape[1]:
            raise ValueError("distance_matrix must be square")
        scale = D.max(initial=0.0)
        if scale > 0:
            D = D / scale
        n = D.shape[0]
        # Row-normalised affinity (closer nodes contribute more).
        affinity = np.exp(-D)
        np.fill_diagonal(affinity, 0.0)
        row_sums = affinity.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        affinity = affinity / row_sums

        h = self.node_features(D)
        for self_layer, neighbour_layer in zip(self._self_layers, self._neighbour_layers):
            aggregated = affinity @ h
            h = self._activation.forward(self_layer.forward(h) + neighbour_layer.forward(aggregated))
        return np.concatenate([h.mean(axis=0), h.max(axis=0)])

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Alias of :meth:`encode` for the :class:`Module` interface."""
        return self.encode(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - frozen encoder
        raise NotImplementedError("GraphConvEncoder is used as a frozen feature extractor")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in [*self._self_layers, *self._neighbour_layers]:
            params.extend(layer.parameters())
        return params
