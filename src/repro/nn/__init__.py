"""Minimal numpy neural-network substrate used by the solver surrogate."""

from repro.nn.graph import GraphConvEncoder
from repro.nn.initializers import glorot_uniform, he_normal, zeros
from repro.nn.layers import (
    Dense,
    Dropout,
    LayerNorm,
    Module,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    sigmoid,
)
from repro.nn.losses import BCEWithLogitsLoss, HuberLoss, Loss, MSELoss
from repro.nn.network import Sequential, TrainingHistory, fit, iterate_minibatches, mlp
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.parameter import Parameter
from repro.nn.serialization import load_parameters, load_state_dict, save_parameters, state_dict

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Dropout",
    "LayerNorm",
    "sigmoid",
    "Loss",
    "MSELoss",
    "HuberLoss",
    "BCEWithLogitsLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "mlp",
    "fit",
    "iterate_minibatches",
    "TrainingHistory",
    "GraphConvEncoder",
    "glorot_uniform",
    "he_normal",
    "zeros",
    "state_dict",
    "load_state_dict",
    "load_parameters",
    "save_parameters",
]
