"""Trainable parameter container for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array plus its accumulated gradient.

    The optimisers update ``value`` in place from ``grad``; modules are
    responsible for zeroing and accumulating gradients during backpropagation.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape})"
