"""Saving and restoring network parameters.

Parameters are stored as a flat ``name -> array`` mapping in ``.npz`` format.
Loading requires a network with an identical architecture (same parameter
names and shapes), which is checked explicitly so silent shape mismatches
cannot corrupt a trained surrogate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.layers import Module


def state_dict(module: Module) -> Dict[str, np.ndarray]:
    """Copy all parameter values into a ``name -> array`` mapping."""
    state: Dict[str, np.ndarray] = {}
    for index, param in enumerate(module.parameters()):
        key = f"{index:03d}:{param.name}"
        state[key] = param.value.copy()
    return state


def load_state_dict(module: Module, state: Dict[str, np.ndarray]) -> None:
    """Load parameter values produced by :func:`state_dict` into ``module``."""
    params = module.parameters()
    if len(params) != len(state):
        raise ValueError(f"expected {len(params)} parameters, state has {len(state)}")
    for index, param in enumerate(params):
        key = f"{index:03d}:{param.name}"
        if key not in state:
            raise KeyError(f"missing parameter {key!r} in state")
        value = np.asarray(state[key], dtype=np.float64)
        if value.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {key!r}: expected {param.value.shape}, got {value.shape}"
            )
        param.value[...] = value


def save_parameters(module: Module, path: str | Path) -> None:
    """Write a module's parameters to an ``.npz`` file."""
    np.savez(Path(path), **state_dict(module))


def load_parameters(module: Module, path: str | Path) -> None:
    """Restore a module's parameters from an ``.npz`` file written by :func:`save_parameters`."""
    with np.load(Path(path)) as data:
        load_state_dict(module, {key: data[key] for key in data.files})
