"""Sequential network container and a generic minibatch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Dense, Module, ReLU
from repro.nn.losses import Loss, MSELoss
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, ensure_rng


class Sequential(Module):
    """Composes modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module) -> None:
        if not modules:
            raise ValueError("a Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for module in self.modules:
            output = module.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def train(self) -> None:
        self.training = True
        for module in self.modules:
            module.train()

    def eval(self) -> None:
        self.training = False
        for module in self.modules:
            module.eval()


def mlp(
    layer_sizes: Sequence[int],
    activation: Callable[[], Module] = ReLU,
    output_activation: Optional[Callable[[], Module]] = None,
    rng: RngLike = None,
) -> Sequential:
    """Build a multi-layer perceptron with the given layer sizes.

    ``layer_sizes`` includes the input and output dimensions, e.g.
    ``mlp([16, 64, 64, 1])``.
    """
    if len(layer_sizes) < 2:
        raise ValueError("layer_sizes needs at least an input and an output size")
    rng = ensure_rng(rng)
    modules: List[Module] = []
    for index, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
        last = index == len(layer_sizes) - 2
        initializer = "glorot" if last else "he"
        modules.append(Dense(fan_in, fan_out, rng=rng, initializer=initializer, name=f"dense{index}"))
        if not last:
            modules.append(activation())
        elif output_activation is not None:
            modules.append(output_activation())
    return Sequential(*modules)


@dataclass
class TrainingHistory:
    """Per-epoch loss trace returned by :func:`fit`."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)

    @property
    def final_train_loss(self) -> float:
        if not self.train_losses:
            raise ValueError("no epochs recorded")
        return self.train_losses[-1]


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
):
    """Yield ``(inputs, targets)`` minibatches covering the whole dataset once."""
    num_samples = inputs.shape[0]
    order = rng.permutation(num_samples) if shuffle else np.arange(num_samples)
    for start in range(0, num_samples, batch_size):
        batch = order[start : start + batch_size]
        yield inputs[batch], targets[batch]


def fit(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss: Loss | None = None,
    optimizer: Optimizer | None = None,
    num_epochs: int = 100,
    batch_size: int = 32,
    validation_data: Optional[tuple[np.ndarray, np.ndarray]] = None,
    rng: RngLike = None,
    patience: Optional[int] = None,
) -> TrainingHistory:
    """Generic minibatch training loop used by the surrogate trainer and tests.

    Parameters
    ----------
    patience:
        Optional early stopping: stop when the monitored loss (validation loss
        when ``validation_data`` is given, training loss otherwise) has not
        improved for ``patience`` consecutive epochs.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    if num_epochs <= 0 or batch_size <= 0:
        raise ValueError("num_epochs and batch_size must be positive")
    loss = loss or MSELoss()
    optimizer = optimizer or Adam(network.parameters(), learning_rate=1e-3)
    rng = ensure_rng(rng)

    history = TrainingHistory()
    best_monitor = np.inf
    epochs_since_improvement = 0

    for _ in range(num_epochs):
        network.train()
        epoch_losses = []
        for batch_inputs, batch_targets in iterate_minibatches(inputs, targets, batch_size, rng):
            optimizer.zero_grad()
            predictions = network.forward(batch_inputs)
            epoch_losses.append(loss.value(predictions, batch_targets))
            network.backward(loss.gradient(predictions, batch_targets))
            optimizer.step()
        train_loss = float(np.mean(epoch_losses))
        history.train_losses.append(train_loss)

        monitor = train_loss
        if validation_data is not None:
            network.eval()
            val_inputs, val_targets = validation_data
            val_loss = loss.value(network.forward(np.asarray(val_inputs, dtype=np.float64)), val_targets)
            history.validation_losses.append(float(val_loss))
            monitor = float(val_loss)

        if patience is not None:
            if monitor < best_monitor - 1e-12:
                best_monitor = monitor
                epochs_since_improvement = 0
            else:
                epochs_since_improvement += 1
                if epochs_since_improvement >= patience:
                    break

    network.eval()
    return history
