"""QUBO solver backends: simulated annealing, Digital-Annealer-style, tabu, qbsolv-style, noisy QA."""

from repro.solvers.base import QUBOSolver
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.engine import AnnealingState, default_block_size, metropolis_accept
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.schedules import (
    GeometricSchedule,
    LinearSchedule,
    TemperatureSchedule,
    default_temperature_range,
)
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver

__all__ = [
    "QUBOSolver",
    "AnnealingState",
    "default_block_size",
    "metropolis_accept",
    "SimulatedAnnealingSolver",
    "SimulatedAnnealingConfig",
    "DigitalAnnealerSolver",
    "DigitalAnnealerConfig",
    "TabuSearchSolver",
    "TabuSearchConfig",
    "QbsolvSolver",
    "QbsolvConfig",
    "QuantumAnnealerSolver",
    "QuantumAnnealerConfig",
    "RandomSolver",
    "TemperatureSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "default_temperature_range",
]
