"""QUBO solver backends: simulated annealing, Digital-Annealer-style, parallel tempering, tabu, qbsolv-style, noisy QA."""

from repro.solvers.base import QUBOSolver
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.engine import (
    AdaptiveBlockSizer,
    AnnealingState,
    default_block_size,
    metropolis_accept,
    propose_ladder_swaps,
)
from repro.solvers.parallel_tempering import (
    ParallelTemperingConfig,
    ParallelTemperingSolver,
)
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.quantum_annealer import QuantumAnnealerConfig, QuantumAnnealerSolver
from repro.solvers.random_solver import RandomSolver
from repro.solvers.schedules import (
    GeometricSchedule,
    LinearSchedule,
    TemperatureSchedule,
    default_temperature_range,
)
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver

__all__ = [
    "QUBOSolver",
    "AdaptiveBlockSizer",
    "AnnealingState",
    "default_block_size",
    "metropolis_accept",
    "propose_ladder_swaps",
    "SimulatedAnnealingSolver",
    "SimulatedAnnealingConfig",
    "DigitalAnnealerSolver",
    "DigitalAnnealerConfig",
    "ParallelTemperingSolver",
    "ParallelTemperingConfig",
    "TabuSearchSolver",
    "TabuSearchConfig",
    "QbsolvSolver",
    "QbsolvConfig",
    "QuantumAnnealerSolver",
    "QuantumAnnealerConfig",
    "RandomSolver",
    "TemperatureSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "default_temperature_range",
]
