"""Single-flip tabu search over QUBO models, vectorised across replicas.

Tabu search is the classical sub-solver used by D-Wave's qbsolv decomposer and
is also useful as a deterministic-ish local-search baseline.  The implementation
keeps the matrix of single-flip energy changes up to date incrementally through
the shared :class:`~repro.solvers.engine.AnnealingState`, picks the best
non-tabu move per replica (with aspiration: a tabu move is allowed when it
improves the incumbent), and restarts a replica from its perturbed incumbent
when that replica stalls.

All ``num_reads`` searches propagate together: each step computes the full
``(num_reads, n)`` delta matrix, one argmin per replica, and one batched
local-field update — so the wall time of a batch grows far slower than
``num_reads`` serial searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compute.backend import resolve_array_backend, validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.engine import AnnealingState
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TabuSearchConfig:
    """Configuration of :class:`TabuSearchSolver`.

    Parameters
    ----------
    num_steps:
        Total number of single-flip moves per read.
    tenure:
        Number of steps a just-flipped variable stays tabu.  ``None`` selects
        ``min(20, n // 4 + 1)``.
    restart_after:
        Steps without incumbent improvement before a perturbation restart.
    array_backend:
        Array backend the batched search runs on (``None`` = environment /
        numpy reference).  The scalar fast path (``num_reads == 1``) is used
        only on numpy-family backends; other backends take the batch kernel.
    dtype:
        Engine float precision (``"float64"`` / ``"float32"``; ``None`` =
        environment / float64).
    """

    num_steps: int = 500
    tenure: int | None = None
    restart_after: int = 100
    array_backend: str | None = None
    dtype: str | None = None

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.tenure is not None and self.tenure < 0:
            raise ValueError("tenure must be non-negative")
        if self.restart_after <= 0:
            raise ValueError("restart_after must be positive")
        validate_engine_dtype(self.dtype)


class TabuSearchSolver(QUBOSolver):
    """Best-improvement single-flip tabu search, batched over replicas."""

    name = "tabu-search"

    def __init__(self, config: TabuSearchConfig | None = None) -> None:
        self.config = config or TabuSearchConfig()

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        ab = resolve_array_backend(self.config.array_backend, self.config.dtype)
        state = AnnealingState(model, num_reads, rng=rng, array_backend=ab)
        self._search(state, rng)
        return state.best_states_host(), None

    # ------------------------------------------------------------------ internals
    def _search(self, state: AnnealingState, rng: np.random.Generator) -> None:
        if state.num_reads == 1 and state.ab.kind == "numpy":
            # The qbsolv decomposer refines thousands of tiny single-replica
            # sub-problems; the scalar kernel avoids the 2-D indexing overhead
            # that dominates batched steps at num_reads == 1.  (Device backends
            # take the batch kernel — the scalar path mutates host views.)
            self._search_single(state, rng)
        else:
            self._search_batch(state, rng)

    def _search_single(self, state: AnnealingState, rng: np.random.Generator) -> None:
        n = state.num_variables
        tenure = self.config.tenure if self.config.tenure is not None else min(20, n // 4 + 1)
        op = state.op
        diag = state.diag
        # 1-D views: in-place updates keep the engine state consistent.
        x = state.X[0]
        h = state.H[0]
        energy = float(state.current_energies[0])
        best_energy = float(state.best_energies[0])
        tabu_until = np.full(n, -1, dtype=np.int64)
        stall = 0

        for step in range(self.config.num_steps):
            delta = (1.0 - 2.0 * x) * (diag + 2.0 * h - 2.0 * diag * x)
            allowed = tabu_until < step
            # Aspiration: a tabu move that beats the incumbent is always allowed.
            allowed |= (energy + delta) < best_energy
            if not allowed.any():
                allowed = np.ones(n, dtype=bool)
            candidate_delta = np.where(allowed, delta, np.inf)
            i = int(candidate_delta.argmin())

            dx = 1.0 - 2.0 * x[i]
            x[i] += dx
            energy += delta[i]
            h += dx * op.row(i)
            tabu_until[i] = step + tenure

            if energy < best_energy - 1e-12:
                best_energy = energy
                state.best_X[0] = x
                state.best_energies[0] = energy
                stall = 0
            else:
                stall += 1
                if stall >= self.config.restart_after:
                    x[:] = state.best_X[0]
                    flips = rng.choice(n, size=max(1, n // 10), replace=False)
                    x[flips] = 1.0 - x[flips]
                    h[:] = op.right_multiply(x[None, :])[0]
                    energy = float((x * h).sum() + state.offset)
                    tabu_until[:] = -1
                    stall = 0
        state.current_energies[0] = energy

    def _search_batch(self, state: AnnealingState, rng: np.random.Generator) -> None:
        n = state.num_variables
        num_reads = state.num_reads
        tenure = self.config.tenure if self.config.tenure is not None else min(20, n // 4 + 1)
        ab = state.ab
        xp = state.xp

        tabu_until = xp.full((num_reads, n), -1, dtype=xp.int64)
        stall = xp.zeros(num_reads, dtype=xp.int64)
        replica_rows = np.arange(num_reads)

        for step in range(self.config.num_steps):
            delta = state.flip_deltas()
            allowed = tabu_until < step
            # Aspiration: a tabu move that beats the incumbent is always allowed.
            allowed |= (state.current_energies[:, None] + delta) < state.best_energies[:, None]
            blocked = ~xp.any(allowed, axis=1)
            if blocked.any():
                allowed[blocked] = True
            candidate_delta = xp.where(allowed, delta, xp.asarray(xp.inf, dtype=ab.dtype))
            cols = ab.to_numpy(xp.argmin(candidate_delta, axis=1))

            state.apply_single_flips(replica_rows, cols, delta[replica_rows, cols])
            tabu_until[replica_rows, cols] = step + tenure

            improved = state.current_energies < state.best_energies - 1e-12
            state.update_best()
            stall = xp.where(improved, 0, stall + 1)

            restart = stall >= self.config.restart_after
            if restart.any():
                restart_host = ab.to_numpy(restart)
                num_restarts = int(restart_host.sum())
                perturbed = np.array(
                    ab.to_numpy(state.best_X[restart]), dtype=np.float64
                )
                num_flips = max(1, n // 10)
                flip_cols = rng.random((num_restarts, n)).argsort(axis=1)[:, :num_flips]
                flip_rows = np.arange(num_restarts)[:, None]
                perturbed[flip_rows, flip_cols] = 1.0 - perturbed[flip_rows, flip_cols]
                state.reset_replicas(restart, ab.from_numpy(perturbed))
                tabu_until[restart] = -1
                stall[restart] = 0

    def refine(self, model: QUBOModel, x0: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Run tabu search starting from an existing assignment (used by qbsolv)."""
        rng = ensure_rng(rng)
        x0 = np.asarray(x0, dtype=np.float64)
        ab = resolve_array_backend(self.config.array_backend, self.config.dtype)
        state = AnnealingState(model, 1, initial_states=x0[None, :], array_backend=ab)
        self._search(state, rng)
        return state.best_states_host()[0].astype(np.int8)
