"""Single-flip tabu search over QUBO models.

Tabu search is the classical sub-solver used by D-Wave's qbsolv decomposer and
is also useful as a deterministic-ish local-search baseline.  The implementation
keeps the vector of single-flip energy changes up to date incrementally, picks
the best non-tabu move (with aspiration: a tabu move is allowed when it improves
the incumbent), and restarts from a perturbed incumbent when the search stalls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver, validate_reads
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TabuSearchConfig:
    """Configuration of :class:`TabuSearchSolver`.

    Parameters
    ----------
    num_steps:
        Total number of single-flip moves per read.
    tenure:
        Number of steps a just-flipped variable stays tabu.  ``None`` selects
        ``min(20, n // 4 + 1)``.
    restart_after:
        Steps without incumbent improvement before a perturbation restart.
    """

    num_steps: int = 500
    tenure: int | None = None
    restart_after: int = 100

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.tenure is not None and self.tenure < 0:
            raise ValueError("tenure must be non-negative")
        if self.restart_after <= 0:
            raise ValueError("restart_after must be positive")


class TabuSearchSolver(QUBOSolver):
    """Best-improvement single-flip tabu search."""

    name = "tabu-search"

    def __init__(self, config: TabuSearchConfig | None = None) -> None:
        self.config = config or TabuSearchConfig()

    def sample(self, model: QUBOModel, num_reads: int = 1, rng: RngLike = None) -> SampleSet:
        started_at = time.perf_counter()
        num_reads = validate_reads(num_reads)
        rng = ensure_rng(rng)
        assignments = [self._search(model, rng) for _ in range(num_reads)]
        return self._finalize(model, np.array(assignments), started_at)

    # ------------------------------------------------------------------ internals
    def _search(self, model: QUBOModel, rng: np.random.Generator, x0: np.ndarray | None = None) -> np.ndarray:
        n = model.num_variables
        Q = np.asarray(model.Q)
        diag = np.diag(Q).copy()
        tenure = self.config.tenure if self.config.tenure is not None else min(20, n // 4 + 1)

        x = (
            x0.astype(np.float64).copy()
            if x0 is not None
            else rng.integers(0, 2, size=n).astype(np.float64)
        )
        h = Q @ x
        energy = model.energy(x)
        best_x = x.copy()
        best_energy = energy
        tabu_until = np.full(n, -1, dtype=np.int64)
        stall = 0

        for step in range(self.config.num_steps):
            delta = (1.0 - 2.0 * x) * (diag + 2.0 * h - 2.0 * diag * x)
            allowed = tabu_until < step
            # Aspiration: a tabu move that beats the incumbent is always allowed.
            allowed |= (energy + delta) < best_energy
            if not allowed.any():
                allowed = np.ones(n, dtype=bool)
            candidate_delta = np.where(allowed, delta, np.inf)
            i = int(candidate_delta.argmin())

            dx = 1.0 - 2.0 * x[i]
            x[i] += dx
            energy += delta[i]
            h += dx * Q[i]
            tabu_until[i] = step + tenure

            if energy < best_energy - 1e-12:
                best_energy = energy
                best_x = x.copy()
                stall = 0
            else:
                stall += 1
                if stall >= self.config.restart_after:
                    x = best_x.copy()
                    flips = rng.choice(n, size=max(1, n // 10), replace=False)
                    x[flips] = 1.0 - x[flips]
                    h = Q @ x
                    energy = model.energy(x)
                    tabu_until[:] = -1
                    stall = 0

        return best_x.astype(np.int8)

    def refine(self, model: QUBOModel, x0: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Run tabu search starting from an existing assignment (used by qbsolv)."""
        rng = ensure_rng(rng)
        return self._search(model, rng, x0=np.asarray(x0, dtype=np.float64))
