"""Digital-Annealer-style parallel-trial annealer (simulated Fujitsu DA).

The Fujitsu Digital Annealer is proprietary hardware; this module implements
the published algorithm it runs (Aramon et al., *Physics-inspired optimization
for QUBO problems using a digital annealer*, Frontiers in Physics 2019) so the
paper's DA experiments can be reproduced on a CPU:

* at every Monte-Carlo step **all** variables are evaluated in parallel and
  each flip is accepted with Metropolis probability;
* exactly one accepted flip (chosen uniformly at random) is applied per step;
* a *dynamic offset* is added to the acceptance threshold whenever no flip is
  accepted, which lets the solver escape local minima much faster than plain
  simulated annealing — this is why the energy-vs-A "dipper" in Fig. 1 is much
  sharper for DA than for SA.

All replicas (reads) are propagated together with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.engine import AnnealingState, metropolis_accept
from repro.solvers.schedules import TemperatureSchedule, resolve_schedule


@dataclass(frozen=True)
class DigitalAnnealerConfig:
    """Configuration of :class:`DigitalAnnealerSolver`.

    Parameters
    ----------
    num_steps:
        Number of Monte-Carlo steps.  ``None`` selects ``steps_per_variable * n``.
    steps_per_variable:
        Steps per variable used when ``num_steps`` is ``None``.
    offset_increase_rate:
        Amount (as a fraction of the typical coefficient scale) added to the
        dynamic offset each time a step accepts no flip.
    schedule:
        Temperature schedule; ``None`` selects an automatic geometric schedule.
    """

    num_steps: Optional[int] = None
    steps_per_variable: int = 25
    offset_increase_rate: float = 0.3
    schedule: Optional[TemperatureSchedule] = None

    def __post_init__(self) -> None:
        if self.num_steps is not None and self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.steps_per_variable <= 0:
            raise ValueError("steps_per_variable must be positive")
        if self.offset_increase_rate < 0:
            raise ValueError("offset_increase_rate must be non-negative")


class DigitalAnnealerSolver(QUBOSolver):
    """Parallel-trial single-flip annealer with dynamic offset escape."""

    name = "digital-annealer"

    def __init__(self, config: DigitalAnnealerConfig | None = None) -> None:
        self.config = config or DigitalAnnealerConfig()

    def _num_steps(self, num_variables: int) -> int:
        if self.config.num_steps is not None:
            return self.config.num_steps
        return self.config.steps_per_variable * num_variables

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        n = model.num_variables
        num_steps = self._num_steps(n)
        schedule = resolve_schedule(model, self.config.schedule)
        temperatures = schedule(num_steps)

        offset_step = self.config.offset_increase_rate * max(model.max_abs_coefficient(), 1e-12)

        state = AnnealingState(model, num_reads, rng=rng)
        offsets = np.zeros(num_reads)
        replica_rows = np.arange(num_reads)

        for step in range(num_steps):
            temperature = temperatures[step]
            # Energy change of flipping each variable of each replica.
            delta = state.flip_deltas()
            effective = delta - offsets[:, None]
            accept = metropolis_accept(effective, temperature, rng.random((num_reads, n)))

            any_accepted = accept.any(axis=1)
            # Replicas with no accepted candidate raise their dynamic offset.
            offsets = np.where(any_accepted, 0.0, offsets + offset_step)
            if not any_accepted.any():
                continue

            # Pick one accepted flip per replica uniformly at random.
            scores = np.where(accept, rng.random((num_reads, n)), -1.0)
            chosen = scores.argmax(axis=1)
            rows = replica_rows[any_accepted]
            cols = chosen[any_accepted]
            state.apply_single_flips(rows, cols, delta[rows, cols])
            state.update_best()

        return state.best_X, {"num_steps": num_steps}
