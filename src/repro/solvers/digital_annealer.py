"""Digital-Annealer-style parallel-trial annealer (simulated Fujitsu DA).

The Fujitsu Digital Annealer is proprietary hardware; this module implements
the published algorithm it runs (Aramon et al., *Physics-inspired optimization
for QUBO problems using a digital annealer*, Frontiers in Physics 2019) so the
paper's DA experiments can be reproduced on a CPU:

* at every Monte-Carlo step **all** variables are evaluated in parallel and
  each flip is accepted with Metropolis probability;
* exactly one accepted flip (chosen uniformly at random) is applied per step;
* a *dynamic offset* is added to the acceptance threshold whenever no flip is
  accepted, which lets the solver escape local minima much faster than plain
  simulated annealing — this is why the energy-vs-A "dipper" in Fig. 1 is much
  sharper for DA than for SA.

All replicas (reads) are propagated together with numpy.

``max_parallel_flips`` enables the *multi-flip* DA variant: instead of one
accepted flip per step, up to that many accepted flips (chosen by the same
uniform scoring that picks the single flip) are applied simultaneously through
:meth:`~repro.solvers.engine.AnnealingState.apply_block_flips`.  Flips applied
together do not see each other's move — the standard blocked-update
approximation — which trades a little acceptance fidelity for covering the
hardware's parallel-update behaviour and much faster descent on large
instances.  ``max_parallel_flips=1`` (the default) is exactly the published
single-flip algorithm, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compute.backend import resolve_array_backend, validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.engine import AnnealingState, metropolis_accept
from repro.solvers.schedules import TemperatureSchedule, resolve_schedule


@dataclass(frozen=True)
class DigitalAnnealerConfig:
    """Configuration of :class:`DigitalAnnealerSolver`.

    Parameters
    ----------
    num_steps:
        Number of Monte-Carlo steps.  ``None`` selects ``steps_per_variable * n``.
    steps_per_variable:
        Steps per variable used when ``num_steps`` is ``None``.
    offset_increase_rate:
        Amount (as a fraction of the typical coefficient scale) added to the
        dynamic offset each time a step accepts no flip.
    schedule:
        Temperature schedule; ``None`` selects an automatic geometric schedule.
    max_parallel_flips:
        Accepted flips applied per step.  ``1`` (default) reproduces the
        published single-flip algorithm exactly; larger values apply the
        top-scoring accepted flips as one simultaneous block update.
    array_backend:
        Array backend the trial kernels run on (``None`` = environment /
        numpy reference).
    dtype:
        Engine float precision (``"float64"`` / ``"float32"``; ``None`` =
        environment / float64).
    """

    num_steps: Optional[int] = None
    steps_per_variable: int = 25
    offset_increase_rate: float = 0.3
    schedule: Optional[TemperatureSchedule] = None
    max_parallel_flips: int = 1
    array_backend: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_steps is not None and self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.steps_per_variable <= 0:
            raise ValueError("steps_per_variable must be positive")
        if self.offset_increase_rate < 0:
            raise ValueError("offset_increase_rate must be non-negative")
        if self.max_parallel_flips < 1:
            raise ValueError("max_parallel_flips must be at least 1")
        validate_engine_dtype(self.dtype)


class DigitalAnnealerSolver(QUBOSolver):
    """Parallel-trial single-flip annealer with dynamic offset escape."""

    name = "digital-annealer"

    def __init__(self, config: DigitalAnnealerConfig | None = None) -> None:
        self.config = config or DigitalAnnealerConfig()

    def _num_steps(self, num_variables: int) -> int:
        if self.config.num_steps is not None:
            return self.config.num_steps
        return self.config.steps_per_variable * num_variables

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        n = model.num_variables
        num_steps = self._num_steps(n)
        schedule = resolve_schedule(model, self.config.schedule)
        temperatures = schedule(num_steps)

        offset_step = self.config.offset_increase_rate * max(model.max_abs_coefficient(), 1e-12)

        ab = resolve_array_backend(self.config.array_backend, self.config.dtype)
        xp = ab.xp
        state = AnnealingState(model, num_reads, rng=rng, array_backend=ab)
        offsets = xp.zeros(num_reads, dtype=ab.dtype)
        replica_rows = np.arange(num_reads)
        max_flips = min(self.config.max_parallel_flips, n)
        all_cols = np.arange(n)

        for step in range(num_steps):
            temperature = temperatures[step]
            # Energy change of flipping each variable of each replica.
            delta = state.flip_deltas()
            effective = delta - offsets[:, None]
            accept = metropolis_accept(
                effective, temperature, ab.from_numpy(rng.random((num_reads, n))), ab=ab
            )

            any_accepted = xp.any(accept, axis=1)
            # Replicas with no accepted candidate raise their dynamic offset.
            offsets = xp.where(any_accepted, xp.asarray(0.0, dtype=ab.dtype), offsets + offset_step)
            if not xp.any(any_accepted):
                continue

            if max_flips == 1:
                # Pick one accepted flip per replica uniformly at random.
                scores = xp.where(
                    accept,
                    ab.from_numpy(rng.random((num_reads, n))),
                    xp.asarray(-1.0, dtype=ab.dtype),
                )
                chosen = xp.argmax(scores, axis=1)
                mask = ab.to_numpy(any_accepted)
                rows = replica_rows[mask]
                cols = ab.to_numpy(chosen)[mask]
                state.apply_single_flips(rows, cols, delta[rows, cols])
            else:
                # Multi-flip variant: the same uniform scoring, but the top
                # ``max_flips`` accepted candidates of each replica are
                # applied together as one block update.
                scores = xp.where(
                    accept,
                    ab.from_numpy(rng.random((num_reads, n))),
                    xp.asarray(-1.0, dtype=ab.dtype),
                )
                chosen = accept
                if max_flips < n:
                    top = xp.argpartition(-scores, max_flips - 1, axis=1)[:, :max_flips]
                    chosen = xp.zeros_like(accept)
                    xp.put_along_axis(chosen, top, True, axis=1)
                    chosen = chosen & accept
                state.apply_block_flips(all_cols, chosen)
                state.refresh_energies()
            state.update_best()

        info = {"num_steps": num_steps}
        if max_flips > 1:
            info["max_parallel_flips"] = max_flips
        return state.best_states_host(), info
