"""Shared batched single-flip annealing engine.

Every local-search solver in this package (simulated annealing, the
Digital-Annealer-style parallel-trial annealer, tabu search and, through tabu,
qbsolv) explores QUBO energy landscapes with the same primitive: flip one
binary variable and pay the energy change

.. math:: \\Delta E_i = (1 - 2 x_i)\\,(Q_{ii} + 2 H_i - 2 Q_{ii} x_i),
          \\qquad H_i = \\sum_j Q_{ij} x_j,

where ``Q`` is the symmetrised coefficient matrix and ``H`` the *local field*.
This module owns that kernel once, batched over ``num_reads`` independent
replicas, so the solvers only express their acceptance policies.

Kernel contract
---------------
:class:`AnnealingState` maintains, for a batch of ``R`` replicas over ``n``
variables:

* ``X`` — the binary states, float matrix of shape ``(R, n)``;
* ``H`` — the local fields ``X @ Q``, kept incrementally consistent with ``X``
  after every flip (``H_i`` *includes* the diagonal term ``Q_ii x_i``);
* ``current_energies`` — QUBO energies of ``X`` (offset included), updated
  incrementally from the accepted deltas;
* ``best_X`` / ``best_energies`` — the lowest-energy state each replica has
  visited at the instants :meth:`update_best` was called.

State transitions go through exactly two mutators:

* :meth:`apply_single_flips` — one flip per listed replica, *exact*: the
  supplied deltas are the true energy changes, so ``current_energies`` stays
  exact up to float accumulation.
* :meth:`apply_block_flips` — simultaneous flips of a variable block with a
  per-replica accept mask.  Deltas of variables flipped together in one block
  interact, so after a block application ``current_energies`` is recomputed
  from the (always exact) local fields via ``E = sum_i x_i H_i + offset``
  rather than summed from the proposed deltas.

Coefficient access is routed through the backend returned by
:meth:`repro.qubo.model.QUBOModel.operator` — dense float64 or CSR float32
chosen automatically by density — so sparse instances (e.g. MVC) avoid dense
``n × n`` row traffic without any solver-side changes.

Array backends
--------------
All kernels are written against an :class:`repro.compute.ArrayBackend` handle
(``state.ab``) and its numpy-compatible namespace (``state.xp``) instead of
the numpy module, so the same source runs on numpy, torch or CuPy arrays in
float64 or float32.  On the reference backend (numpy/float64, the default)
``xp`` *is* the numpy module and every conversion is a no-copy ``asarray``,
so seeded trajectories are byte-for-byte what they were before the backend
layer existed.  Random numbers are always drawn from the host numpy
``Generator`` and shipped to the backend afterwards, which keeps the draw
order — and therefore the trajectory, up to floating point — identical across
backends.  Host setup code (state construction, block-size heuristics) stays
plain numpy; only the kernel sections below are backend-polymorphic, and a
lint test (``tests/test_compute_backend.py``) pins them free of bare ``np.``
calls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compute.backend import ArrayBackend, resolve_array_backend
from repro.qubo.model import QUBOModel
from repro.utils.rng import ensure_rng


def metropolis_accept(
    delta,
    temperature,
    uniforms,
    ab: Optional[ArrayBackend] = None,
):
    """Metropolis acceptance mask for proposed energy changes ``delta``.

    Downhill (``delta <= 0``) moves are always accepted; uphill moves are
    accepted when ``uniforms < exp(-delta / temperature)``.  ``uniforms`` must
    have the same shape as ``delta``.

    ``temperature`` is either one scalar for the whole batch (the annealing
    solvers) or a per-replica array of length ``delta.shape[0]`` (the
    parallel-tempering ladder, where every replica row owns its own fixed
    temperature).  Rows at temperature zero accept downhill moves only.

    ``delta`` and ``uniforms`` live on ``ab`` (default: the ambient backend
    from the environment knobs, which is plain numpy/float64 unless
    overridden).
    """
    ab = resolve_array_backend(ab)
    xp = ab.xp
    accept = delta <= 0.0
    temps = xp.asarray(temperature, dtype=ab.dtype)
    if temps.ndim == 0:
        if temps > 0:
            accept = accept | (uniforms < xp.exp(-xp.clip(delta, 0.0, None) / temps))
        return accept
    if tuple(temps.shape) != (delta.shape[0],):
        raise ValueError(
            f"temperature array must have one entry per replica row "
            f"({delta.shape[0]}), got shape {tuple(temps.shape)}"
        )
    cols = temps.reshape(-1, *([1] * (delta.ndim - 1)))
    positive = cols > 0
    safe = xp.where(positive, cols, xp.asarray(1.0, dtype=ab.dtype))
    boltzmann = uniforms < xp.exp(-xp.clip(delta, 0.0, None) / safe)
    return accept | (boltzmann & positive)


def default_block_size(num_variables: int) -> int:
    """Sweep block size used by blocked simulated annealing.

    Chosen so a sweep needs ``O(n / block)`` Python iterations while keeping
    blocks small relative to ``n`` (simultaneous flips within a block
    approximate sequential Metropolis updates; see :class:`AnnealingState`).
    """
    return int(np.clip(num_variables // 8, 1, 64))


class AdaptiveBlockSizer:
    """Acceptance-rate feedback controller for the blocked-sweep block size.

    Flips proposed together in one block do not see each other's move, so a
    block sweep is only a faithful approximation of sequential Metropolis when
    few of its proposals are accepted.  The fixed :func:`default_block_size`
    heuristic ignores that: early hot sweeps (acceptance near one) get the
    same block as late cold sweeps (acceptance near zero).  This controller
    doubles the block while the sweep acceptance rate stays below ``low``
    (almost nothing flips together — bigger blocks are free speed) and halves
    it back toward the baseline when the rate exceeds ``high`` (many
    simultaneous flips).  The baseline is also the floor: hot sweeps run
    exactly the block the fixed heuristic would have used (no fidelity
    regression), cold sweeps run up to ``max_block`` (pure Python-overhead
    savings).  Pass ``min_block`` explicitly to allow shrinking further, down
    to the exact sequential sweep at ``1``.

    The update consumes only the accepted-flip count of the previous sweep —
    no random draws — so enabling adaptivity never perturbs a solver's RNG
    stream; trajectories change only through the block partition itself.
    """

    def __init__(
        self,
        num_variables: int,
        initial: Optional[int] = None,
        low: float = 0.02,
        high: float = 0.2,
        min_block: Optional[int] = None,
        max_block: Optional[int] = None,
    ) -> None:
        if not 0.0 <= low < high:
            raise ValueError("thresholds must satisfy 0 <= low < high")
        self.block = int(initial if initial is not None else default_block_size(num_variables))
        if self.block < 1:
            raise ValueError("initial block size must be positive")
        self.min_block = int(min_block if min_block is not None else self.block)
        self.max_block = int(
            max_block
            if max_block is not None
            else max(self.block, int(np.clip(num_variables // 4, 1, 256)))
        )
        if not 1 <= self.min_block <= self.max_block:
            raise ValueError("must satisfy 1 <= min_block <= max_block")
        self.low = float(low)
        self.high = float(high)

    def update(self, acceptance_rate: float) -> int:
        """Fold one sweep's acceptance rate in; return the next block size."""
        if acceptance_rate > self.high:
            self.block = max(self.min_block, self.block // 2)
        elif acceptance_rate < self.low:
            self.block = min(self.max_block, self.block * 2)
        return self.block


def propose_ladder_swaps(
    energies,
    betas,
    offset: int,
    uniforms,
    ab: Optional[ArrayBackend] = None,
):
    """Metropolis accept mask for neighbour swaps on a temperature ladder.

    ``energies`` has shape ``(num_reads, num_replicas)`` — each read owns an
    independent ladder whose rung ``j`` runs at inverse temperature
    ``betas[j]``.  Rungs are paired ``(offset, offset+1), (offset+2, ...)``
    (callers alternate ``offset`` 0/1 between rounds so every neighbour pair
    is eventually proposed); a swap of pair ``(i, j)`` is accepted with
    probability ``min(1, exp((beta_i - beta_j) (E_i - E_j)))`` — the detailed-
    balance criterion of replica exchange.  ``uniforms`` must have shape
    ``(num_reads, num_pairs)``; the comparison runs in log space so large
    positive arguments cannot overflow.  Returns the accept mask, shape
    ``(num_reads, num_pairs)``.

    ``energies``/``betas``/``uniforms`` live on ``ab`` (default: the ambient
    backend from the environment knobs).
    """
    ab = resolve_array_backend(ab)
    xp = ab.xp
    i = xp.arange(offset, betas.shape[0] - 1, 2)
    if i.shape[0] == 0:
        return xp.zeros((energies.shape[0], 0), dtype=xp.bool)
    j = i + 1
    log_ratio = (betas[i] - betas[j])[None, :] * (energies[:, i] - energies[:, j])
    if tuple(uniforms.shape) != tuple(log_ratio.shape):
        raise ValueError(
            f"uniforms must have shape {tuple(log_ratio.shape)}, "
            f"got {tuple(uniforms.shape)}"
        )
    return ab.log_guarded(uniforms) < log_ratio


class AnnealingState:
    """Batched single-flip search state shared by the annealing solvers.

    ``array_backend`` selects where ``X``/``H``/energies live and which
    namespace the kernels run on; ``None`` resolves the ambient backend
    (environment knobs, defaulting to the numpy/float64 reference).  Initial
    states are always drawn/validated on the host so the random stream is
    backend-independent, then shipped once via ``ab.from_numpy``.
    """

    def __init__(
        self,
        model: QUBOModel,
        num_reads: int,
        rng: Optional[np.random.Generator] = None,
        initial_states: Optional[np.ndarray] = None,
        operator=None,
        array_backend: Optional[ArrayBackend] = None,
    ) -> None:
        self.model = model
        self.ab = resolve_array_backend(array_backend)
        self.xp = self.ab.xp
        base_op = operator if operator is not None else model.operator()
        self.op = self.ab.adapt_operator(base_op)
        n = model.num_variables
        if initial_states is not None:
            X = np.array(self.ab.to_numpy(initial_states), dtype=np.float64)
            if X.ndim == 1:
                X = X[None, :]
            if X.shape != (num_reads, n):
                raise ValueError(
                    f"initial_states must have shape ({num_reads}, {n}), got {X.shape}"
                )
        else:
            rng = ensure_rng(rng)
            X = rng.integers(0, 2, size=(num_reads, n), dtype=np.int8).astype(np.float64)
        self.X = self.ab.from_numpy(X)
        self.H = self.op.right_multiply(self.X)
        self.diag = self.ab.asarray(base_op.diag)
        self.offset = model.offset
        self.current_energies = self.energies_from_fields()
        self.best_X = self.ab.copy(self.X)
        self.best_energies = self.ab.copy(self.current_energies)
        #: Optional :class:`repro.obs.SweepProfiler`; solvers attach one when
        #: ``QROSS_ENGINE_PROFILE`` is on.  ``None`` keeps the mutators on a
        #: single-attribute-test fast path.
        self.profiler = None

    # ----------------------------------------------------------------- shapes
    @property
    def num_reads(self) -> int:
        return int(self.X.shape[0])

    @property
    def num_variables(self) -> int:
        return int(self.X.shape[1])

    # ------------------------------------------------------------------ reads
    def energies_from_fields(self):
        """Exact batch energies ``sum_i x_i H_i + offset`` in ``O(R n)``."""
        return (self.X * self.H).sum(axis=1) + self.offset

    def flip_deltas(self, cols=None):
        """Single-flip energy changes, all variables or just ``cols``.

        Shape ``(R, n)`` without ``cols``, ``(R, len(cols))`` with.
        """
        if cols is None:
            x = self.X
            h = self.H
            d = self.diag[None, :]
        else:
            x = self.X[:, cols]
            h = self.H[:, cols]
            d = self.diag[cols][None, :]
        return (1.0 - 2.0 * x) * (d + 2.0 * h - 2.0 * d * x)

    # --------------------------------------------------------------- mutators
    def apply_single_flips(self, rows, cols, deltas) -> None:
        """Flip variable ``cols[k]`` of replica ``rows[k]`` for every ``k``.

        ``deltas`` must be the matching single-flip energy changes (as returned
        by :meth:`flip_deltas`); ``current_energies`` is advanced exactly.
        """
        dx = 1.0 - 2.0 * self.X[rows, cols]
        self.X[rows, cols] += dx
        self.current_energies[rows] += deltas
        self.H[rows] += dx[:, None] * self.op.rows(cols)

    def apply_block_flips(self, block, accept) -> None:
        """Apply the accepted flips of a variable block simultaneously.

        ``block`` holds host variable indices, ``accept`` a boolean mask of
        shape ``(R, len(block))``.  All accepted flips are applied at once; the
        local fields are updated exactly for the new states, but because
        interactions *within* the block are not re-evaluated between flips this
        is an approximation of sequential Metropolis — callers should refresh
        ``current_energies`` via :meth:`refresh_energies` before reading them.
        """
        if self.profiler is not None:
            # Count before the no-accepts early return so proposals are never
            # dropped from the acceptance-rate denominator.
            proposed = int(accept.shape[0]) * int(accept.shape[1])
            accepted = int(self.ab.to_numpy(self.xp.count_nonzero(accept)))
            self.profiler.count_flips(proposed, accepted)
        if not self.xp.any(accept):
            return
        active = self.ab.to_numpy(self.xp.any(accept, axis=0))
        cols = block[active]
        dX = self.xp.where(
            accept[:, active], 1.0 - 2.0 * self.X[:, cols], self.xp.asarray(0.0, dtype=self.ab.dtype)
        )
        self.X[:, cols] += dX
        self.H += self.op.block_product(dX, cols)

    def refresh_energies(self) -> None:
        """Recompute ``current_energies`` from the local fields."""
        self.current_energies = self.energies_from_fields()

    def reset_replicas(self, mask, new_states) -> None:
        """Replace the states of the replicas selected by boolean ``mask``.

        ``new_states`` must already live on this state's backend.
        """
        self.X[mask] = new_states
        self.H[mask] = self.op.right_multiply(new_states)
        self.current_energies[mask] = (new_states * self.H[mask]).sum(axis=1) + self.offset

    def swap_rows(self, rows_i, rows_j) -> None:
        """Exchange replica rows ``rows_i`` and ``rows_j`` of the live state.

        Used by parallel tempering to realise accepted ladder swaps; ``best``
        tracking is deliberately untouched (each replica slot keeps its own
        best-visited record).
        """
        for arr in (self.X, self.H, self.current_energies):
            tmp = self.ab.copy(arr[rows_i])
            arr[rows_i] = arr[rows_j]
            arr[rows_j] = tmp

    def update_best(self):
        """Fold the current states into the per-replica best tracking.

        Returns the boolean mask of replicas that strictly improved.
        """
        improved = self.current_energies < self.best_energies
        if improved.any():
            self.best_energies[improved] = self.current_energies[improved]
            self.best_X[improved] = self.X[improved]
        return improved

    # ---------------------------------------------------------------- readout
    def best_states_host(self) -> np.ndarray:
        """``best_X`` as a host numpy array (the solver read-out transfer)."""
        return self.ab.to_numpy(self.best_X)

    def best_energies_host(self) -> np.ndarray:
        """``best_energies`` as a host numpy array."""
        return self.ab.to_numpy(self.best_energies)
