"""Simulated quantum annealer with analog control errors.

The paper's Appendix B runs weighted Minimum Vertex Cover on a D-Wave DW_2000Q
to show that over-sized penalty weights degrade solution quality because the
hardware implements the Hamiltonian coefficients only approximately (analog
control error).  Without access to a QPU we reproduce the *mechanism*: the
wrapped solver optimises a noise-perturbed / precision-limited copy of the
QUBO, while the returned energies are evaluated against the exact model.  When
the penalty term dominates the coefficient range, the objective part of the
problem falls below the error floor and the solutions drift away from optimal
— exactly the Fig. 6 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.compute.backend import validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.qubo.precision import AnalogNoiseModel, QuantizationModel
from repro.solvers.base import QUBOSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver


@dataclass(frozen=True)
class QuantumAnnealerConfig:
    """Configuration of :class:`QuantumAnnealerSolver`.

    Parameters
    ----------
    noise:
        Analog control-error model applied to the coefficients before solving.
    quantization:
        Optional coefficient-precision model (DAC resolution of the device).
    base_config:
        Configuration of the underlying annealing dynamics.
    array_backend / dtype:
        Array backend and float precision forwarded to the wrapped annealer
        (unless the ``base_config`` pins its own).
    """

    noise: AnalogNoiseModel = field(default_factory=lambda: AnalogNoiseModel(relative_error=0.02, absolute_error=0.005))
    quantization: Optional[QuantizationModel] = field(default_factory=lambda: QuantizationModel(num_bits=8))
    base_config: SimulatedAnnealingConfig = field(default_factory=SimulatedAnnealingConfig)
    array_backend: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        validate_engine_dtype(self.dtype)


class QuantumAnnealerSolver(QUBOSolver):
    """Annealer that sees a perturbed Hamiltonian but is scored on the exact one."""

    name = "quantum-annealer"

    def __init__(self, config: QuantumAnnealerConfig | None = None) -> None:
        self.config = config or QuantumAnnealerConfig()
        base = self.config.base_config
        if (self.config.array_backend is not None and base.array_backend is None) or (
            self.config.dtype is not None and base.dtype is None
        ):
            base = replace(
                base,
                array_backend=base.array_backend or self.config.array_backend,
                dtype=base.dtype or self.config.dtype,
            )
        self._base = SimulatedAnnealingSolver(base)

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        perturbed = self.config.noise.perturb(model, rng=rng)
        if self.config.quantization is not None:
            perturbed = self.config.quantization.quantize(perturbed)
        raw = self._base.sample(perturbed, num_reads=num_reads, rng=rng)
        # The template re-scores the assignments against the exact model.
        return raw.assignments, {
            "relative_error": self.config.noise.relative_error,
            "absolute_error": self.config.noise.absolute_error,
        }
