"""Simulated annealing on CPU, vectorised over a batch of replicas.

This is the "Simulated Annealing on CPU" solver used throughout the paper
(lower rows of Fig. 1, QAPLIB experiments).  Each read is an independent
replica; one *sweep* visits every variable once in a shuffled order and applies
Metropolis single-flip updates at the sweep's temperature.  All replicas are
updated together with numpy, which keeps pure-Python overhead per sweep small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver, validate_reads
from repro.solvers.schedules import TemperatureSchedule, resolve_schedule
from repro.utils.rng import RngLike, ensure_rng

import time


@dataclass(frozen=True)
class SimulatedAnnealingConfig:
    """Configuration of :class:`SimulatedAnnealingSolver`.

    Parameters
    ----------
    num_sweeps:
        Number of full passes over the variables per read.
    schedule:
        Temperature schedule; ``None`` selects a geometric schedule whose range
        is derived from the QUBO coefficients.
    """

    num_sweeps: int = 100
    schedule: Optional[TemperatureSchedule] = None

    def __post_init__(self) -> None:
        if self.num_sweeps <= 0:
            raise ValueError("num_sweeps must be positive")


class SimulatedAnnealingSolver(QUBOSolver):
    """Batched single-flip Metropolis simulated annealing."""

    name = "simulated-annealing"

    def __init__(self, config: SimulatedAnnealingConfig | None = None) -> None:
        self.config = config or SimulatedAnnealingConfig()

    def sample(self, model: QUBOModel, num_reads: int = 1, rng: RngLike = None) -> SampleSet:
        started_at = time.perf_counter()
        num_reads = validate_reads(num_reads)
        rng = ensure_rng(rng)
        n = model.num_variables
        schedule = resolve_schedule(model, self.config.schedule)
        temperatures = schedule(self.config.num_sweeps)

        Q = np.asarray(model.Q)
        diag = np.diag(Q).copy()
        X = self._random_states(num_reads, n, rng).astype(np.float64)
        # Local field H[b, i] = sum_j Q[i, j] * X[b, j]; maintained incrementally.
        H = X @ Q

        for temperature in temperatures:
            order = rng.permutation(n)
            uniforms = rng.random((num_reads, n))
            for step, i in enumerate(order):
                x_i = X[:, i]
                delta = (1.0 - 2.0 * x_i) * (diag[i] + 2.0 * H[:, i] - 2.0 * diag[i] * x_i)
                accept = delta <= 0.0
                if temperature > 0:
                    accept |= uniforms[:, step] < np.exp(
                        -np.clip(delta, 0.0, None) / temperature
                    )
                if not accept.any():
                    continue
                dx = np.where(accept, 1.0 - 2.0 * x_i, 0.0)
                X[:, i] = x_i + dx
                H += dx[:, None] * Q[i][None, :]

        return self._finalize(
            model,
            X,
            started_at,
            extra_info={"num_sweeps": self.config.num_sweeps},
        )
