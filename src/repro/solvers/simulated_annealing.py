"""Simulated annealing on CPU, vectorised over replicas *and* variable blocks.

This is the "Simulated Annealing on CPU" solver used throughout the paper
(lower rows of Fig. 1, QAPLIB experiments).  Each read is an independent
replica; one *sweep* visits every variable once in a shuffled order and applies
Metropolis single-flip updates at the sweep's temperature.

The sweep is *blocked*: the shuffled variable order is chunked into blocks and
each block's flips are proposed against the state at the start of the block,
then applied together through the shared
:class:`~repro.solvers.engine.AnnealingState`.  This cuts the pure-Python work
per sweep from ``O(n)`` iterations to ``O(n / block)`` while the heavy
local-field updates run as batched BLAS/CSR products.  Within-block flips are
an approximation of sequential Metropolis (interacting variables flipped in
the same block do not see each other's move), which blocked Gibbs/Metropolis
samplers routinely accept; the solver additionally tracks the best state seen
at every sweep boundary, so the returned assignment is never worse than the
final state of the walk.

The block size is *adaptive* by default: an
:class:`~repro.solvers.engine.AdaptiveBlockSizer` grows the block while the
measured acceptance rate says simultaneous flips are rare (cold sweeps — pure
speed) and shrinks it toward the exact sequential sweep while acceptance is
high (hot sweeps — fidelity).  The controller reads only accepted-flip
counts, so it never consumes random draws; pass an explicit ``block_size``
to pin the historical fixed-block behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.compute.backend import resolve_array_backend, validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.engine import AdaptiveBlockSizer, AnnealingState, metropolis_accept
from repro.solvers.schedules import TemperatureSchedule, resolve_schedule


@dataclass(frozen=True)
class SimulatedAnnealingConfig:
    """Configuration of :class:`SimulatedAnnealingSolver`.

    Parameters
    ----------
    num_sweeps:
        Number of full passes over the variables per read.
    schedule:
        Temperature schedule; ``None`` selects a geometric schedule whose range
        is derived from the QUBO coefficients.
    block_size:
        Number of variables proposed together within a sweep.  ``None`` (the
        default) adapts the block to the measured acceptance rate via
        :class:`~repro.solvers.engine.AdaptiveBlockSizer`; an integer pins a
        fixed block, with ``1`` recovering the exact sequential single-flip
        sweep.
    track_trajectory:
        Record the batch-best energy after every sweep in the sample-set info
        (``best_energy_trajectory``) — time-to-target instrumentation for the
        benchmarks.  Never changes the random stream.
    array_backend:
        Array backend the sweep kernels run on (``"numpy"``, ``"torch"``,
        ``"cupy"`` or any :func:`repro.compute.register_array_backend` name).
        ``None`` defers to ``QROSS_ARRAY_BACKEND`` / the numpy reference.
    dtype:
        Engine float precision, ``"float64"`` or ``"float32"``.  ``None``
        defers to ``QROSS_ENGINE_DTYPE`` / float64.  Returned energies are
        always re-scored against the exact float64 model regardless.
    """

    num_sweeps: int = 100
    schedule: Optional[TemperatureSchedule] = None
    block_size: Optional[int] = None
    track_trajectory: bool = False
    array_backend: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_sweeps <= 0:
            raise ValueError("num_sweeps must be positive")
        if self.block_size is not None and self.block_size <= 0:
            raise ValueError("block_size must be positive")
        validate_engine_dtype(self.dtype)


class SimulatedAnnealingSolver(QUBOSolver):
    """Batched blocked single-flip Metropolis simulated annealing."""

    name = "simulated-annealing"

    def __init__(self, config: SimulatedAnnealingConfig | None = None) -> None:
        self.config = config or SimulatedAnnealingConfig()

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        n = model.num_variables
        schedule = resolve_schedule(model, self.config.schedule)
        temperatures = schedule(self.config.num_sweeps)
        sizer = None
        if self.config.block_size is not None:
            block = self.config.block_size
        else:
            sizer = AdaptiveBlockSizer(n)
            block = sizer.block

        ab = resolve_array_backend(self.config.array_backend, self.config.dtype)
        state = AnnealingState(model, num_reads, rng=rng, array_backend=ab)
        state.profiler = obs.engine_profiler(self.name)
        trajectory = [] if self.config.track_trajectory else None
        ran_block = block
        for temperature in temperatures:
            ran_block = block
            order = rng.permutation(n)
            uniforms = ab.from_numpy(rng.random((num_reads, n)))
            accepted = 0
            for start in range(0, n, block):
                cols = order[start : start + block]
                delta = state.flip_deltas(cols)
                accept = metropolis_accept(
                    delta, temperature, uniforms[:, start : start + cols.size], ab=ab
                )
                accepted += int(ab.xp.count_nonzero(accept))
                state.apply_block_flips(cols, accept)
            state.refresh_energies()
            state.update_best()
            if state.profiler is not None:
                state.profiler.end_sweep()
            if trajectory is not None:
                trajectory.append(float(state.best_energies.min()))
            if sizer is not None:
                block = sizer.update(accepted / (num_reads * n))

        info = {
            "num_sweeps": self.config.num_sweeps,
            "block_size": self.config.block_size if sizer is None else "adaptive",
            # The block the final sweep actually ran with (the sizer's
            # post-final update proposes a block no sweep ever uses).
            "final_block_size": ran_block,
        }
        if trajectory is not None:
            info["best_energy_trajectory"] = trajectory
        if state.profiler is not None:
            info["engine_profile"] = state.profiler.finish()
        return state.best_states_host(), info
